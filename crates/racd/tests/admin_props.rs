//! Property tests for the admin line-protocol parser: it must be total
//! over arbitrary input — any byte soup yields either a command or a
//! typed error, never a panic — and known commands must round-trip
//! regardless of case and surrounding whitespace.

use proptest::prelude::*;
use racd::admin::{parse_command, AdminCmd, AdminError};

/// The vocabulary the fuzz mixes: valid command words, near-misses,
/// separators, and junk.
const TOKENS: &[&str] = &[
    "status",
    "checkpoint",
    "pause",
    "resume",
    "shutdown",
    "inject",
    "upgrade",
    "STATUS",
    "Inject",
    "statusx",
    "in ject",
    "/tmp/a b.scn",
    "--flag",
    "..",
    "",
    " ",
    "\t",
    "🦀",
    "\u{0}",
    "err",
    "ok",
];

proptest! {
    #[test]
    fn parser_is_total_over_raw_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..80),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        // Must not panic; errors must carry a stable non-empty code.
        if let Err(e) = parse_command(&line) {
            prop_assert!(!e.code().is_empty());
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn parser_is_total_over_token_soup(
        picks in proptest::collection::vec(0usize..21, 0..8),
    ) {
        let line = picks
            .iter()
            .map(|&i| TOKENS[i])
            .collect::<Vec<_>>()
            .join(" ");
        match parse_command(&line) {
            // Any accepted argument-taking command must preserve its
            // argument text exactly (paths may contain spaces).
            Ok(AdminCmd::Inject(arg)) | Ok(AdminCmd::Upgrade(arg)) => {
                prop_assert!(!arg.is_empty());
                prop_assert!(line.contains(&arg));
            }
            Ok(_) => {}
            Err(e) => prop_assert!(matches!(
                e,
                AdminError::Empty
                    | AdminError::Unknown(_)
                    | AdminError::MissingArg(_)
                    | AdminError::ExtraArgs(_)
            )),
        }
    }

    #[test]
    fn bare_commands_round_trip_any_case_and_padding(
        which in 0usize..5,
        upper: bool,
        pad_left in 0usize..4,
        pad_right in 0usize..4,
    ) {
        let words = ["status", "checkpoint", "pause", "resume", "shutdown"];
        let expect = [
            AdminCmd::Status,
            AdminCmd::Checkpoint,
            AdminCmd::Pause,
            AdminCmd::Resume,
            AdminCmd::Shutdown,
        ];
        let word = if upper {
            words[which].to_ascii_uppercase()
        } else {
            words[which].to_string()
        };
        let line = format!("{}{}{}", " ".repeat(pad_left), word, "\t".repeat(pad_right));
        prop_assert_eq!(parse_command(&line), Ok(expect[which].clone()));
    }
}
