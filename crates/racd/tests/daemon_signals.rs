//! The signal contract, exercised against the real `racd` binary:
//! SIGTERM lands mid-run, the daemon checkpoints at the next boundary
//! and exits clean (marker disarmed, job still queued), and a relaunch
//! finishes the job with CSV bytes identical to an uninterrupted run.
//! SIGHUP reloads the config file without disturbing the run.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SCN: &str = "name tiny\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 5\n\
                   at 60s intensity 1.4\nfault at 200s drop\n";

fn racd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_racd"))
}

/// One admin round-trip against the daemon's resolved address.
fn admin(state: &std::path::Path, line: &str) -> Option<String> {
    let addr = std::fs::read_to_string(state.join("admin.addr")).ok()?;
    let mut s = TcpStream::connect(addr.trim()).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    s.write_all(line.as_bytes()).ok()?;
    s.write_all(b"\n").ok()?;
    let mut reply = String::new();
    BufReader::new(s).read_line(&mut reply).ok()?;
    Some(reply.trim_end().to_string())
}

fn wait_for<F: FnMut() -> bool>(what: &str, timeout: Duration, mut ready: F) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if ready() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

fn signal_pid(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .arg(format!("-{sig}"))
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill(1)");
    assert!(status.success(), "kill -{sig} failed");
}

#[test]
#[cfg(unix)]
fn sigterm_checkpoints_then_resumes_byte_identically() {
    let root = std::env::temp_dir().join(format!("racd-sig-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let cache = root.join("cache");
    let scn_path = root.join("tiny.scn");
    std::fs::write(&scn_path, SCN).unwrap();
    let conf_path = root.join("racd.conf");
    std::fs::write(&conf_path, "max_restarts = 5\n").unwrap();

    // Reference: a clean uninterrupted run.
    let clean = root.join("clean");
    let status = racd()
        .args(["--state", &clean.display().to_string()])
        .args(["--cache", &cache.display().to_string()])
        .args(["--every", "2", "--once"])
        .arg(&scn_path)
        .status()
        .expect("spawn racd");
    assert_eq!(status.code(), Some(0), "clean reference run must exit 0");
    let reference = std::fs::read(clean.join("results/scenario-tiny.csv")).unwrap();

    // Interrupted run: pause the worker at a boundary (so SIGTERM lands
    // deterministically mid-job), reload config via SIGHUP, then TERM.
    let state = root.join("term");
    let mut child = racd()
        .args(["--state", &state.display().to_string()])
        .args(["--cache", &cache.display().to_string()])
        .args(["--config", &conf_path.display().to_string()])
        .args(["--every", "2"])
        .arg(&scn_path)
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn racd");
    wait_for("admin listener", Duration::from_secs(30), || {
        admin(&state, "status").is_some()
    });
    assert_eq!(admin(&state, "pause").as_deref(), Some("ok paused"));
    wait_for(
        "worker parked at a boundary",
        Duration::from_secs(30),
        || admin(&state, "status").is_some_and(|s| s.contains("state=paused")),
    );

    // SIGHUP mid-pause: tunable changes are picked up, run undisturbed.
    std::fs::write(&conf_path, "max_restarts = 7\n").unwrap();
    signal_pid(&child, "HUP");

    signal_pid(&child, "TERM");
    let status = child.wait().expect("wait racd");
    assert_eq!(status.code(), Some(0), "SIGTERM must be a clean shutdown");
    assert!(
        !state.join("racd.dirty").exists(),
        "graceful shutdown must disarm the dirty marker"
    );
    assert!(
        state.join("ckpt/tiny.ckpt").exists(),
        "graceful shutdown must leave a committed checkpoint"
    );
    let queued = std::fs::read_dir(state.join("queue"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "scn"))
        .count();
    assert_eq!(queued, 1, "the interrupted job must stay queued");

    // Relaunch: the job resumes from the checkpoint and finishes with
    // bytes identical to the uninterrupted reference.
    let status = racd()
        .args(["--state", &state.display().to_string()])
        .args(["--cache", &cache.display().to_string()])
        .args(["--every", "2", "--once"])
        .status()
        .expect("spawn racd");
    assert_eq!(status.code(), Some(0));
    let resumed = std::fs::read(state.join("results/scenario-tiny.csv")).unwrap();
    assert_eq!(
        resumed, reference,
        "SIGTERM + resume must converge to the uninterrupted bytes"
    );

    let _ = std::fs::remove_dir_all(&root);
}
