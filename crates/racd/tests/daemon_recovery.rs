//! Crash-recovery paths, in-process: a panicking attempt restarts from
//! the last committed checkpoint and converges to byte-identical
//! output; a hung attempt is detected by heartbeat staleness and
//! superseded; an always-failing job trips the restart-storm breaker
//! with its typed exit code and leaves the dirty marker armed.
//!
//! One test function: the fault hooks are environment variables, so
//! phases must not run concurrently.

use std::path::Path;
use std::time::Duration;

use racd::{DaemonConfig, DirtyMarker, EXIT_CLEAN, EXIT_RESTART_STORM};

const SCN: &str = "name tiny\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 5\n\
                   at 60s intensity 1.4\nfault at 200s drop\n";

fn daemon_config(state: &Path, cache: &Path) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(state.to_path_buf());
    cfg.cache_dir = cache.to_path_buf();
    cfg.checkpoint_every = 2;
    cfg.once = true;
    // Keep restart pacing test-friendly.
    cfg.backoff.base = Duration::from_millis(10);
    cfg.backoff.cap = Duration::from_millis(40);
    cfg.max_restarts = 3;
    cfg
}

#[test]
fn crashes_hangs_and_storms() {
    let root = std::env::temp_dir().join(format!("racd-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let cache = root.join("cache");
    let scn_path = root.join("tiny.scn");
    std::fs::write(&scn_path, SCN).unwrap();
    let operands = [scn_path.display().to_string()];

    // Reference: an uninterrupted run.
    let clean = root.join("clean");
    assert_eq!(
        racd::run(daemon_config(&clean, &cache), &operands),
        EXIT_CLEAN
    );
    let reference = std::fs::read(clean.join("results/scenario-tiny.csv")).unwrap();

    // Phase 1 — a panic mid-lineup restarts from the checkpoint and
    // converges to the same bytes. The hook fires only while no restart
    // has happened yet, so exactly one crash is injected.
    std::env::set_var("RACD_TEST_PANIC_AT", "3");
    let crashed = root.join("crashed");
    let code = racd::run(daemon_config(&crashed, &cache), &operands);
    std::env::remove_var("RACD_TEST_PANIC_AT");
    assert_eq!(code, EXIT_CLEAN, "one injected panic must be survivable");
    let recovered = std::fs::read(crashed.join("results/scenario-tiny.csv")).unwrap();
    assert_eq!(
        recovered, reference,
        "output after a crash + restart must be byte-identical to a clean run"
    );
    assert!(!DirtyMarker::in_dir(&crashed).present());

    // Phase 2 — a hang (no heartbeats) is detected and superseded; the
    // relaunched attempt converges to the same bytes.
    std::env::set_var("RACD_TEST_HANG_AT", "2");
    let hung = root.join("hung");
    let mut cfg = daemon_config(&hung, &cache);
    cfg.heartbeat_timeout = Duration::from_millis(400);
    let code = racd::run(cfg, &operands);
    std::env::remove_var("RACD_TEST_HANG_AT");
    assert_eq!(
        code, EXIT_CLEAN,
        "a hung attempt must be superseded, not fatal"
    );
    let recovered = std::fs::read(hung.join("results/scenario-tiny.csv")).unwrap();
    assert_eq!(
        recovered, reference,
        "output after a hang + supersede must be byte-identical to a clean run"
    );

    // Phase 3 — every attempt failing trips the breaker after
    // `max_restarts` consecutive failures, with the typed exit code and
    // the dirty marker still armed.
    std::env::set_var("RACD_TEST_ALWAYS_PANIC", "1");
    let storm = root.join("storm");
    let code = racd::run(daemon_config(&storm, &cache), &operands);
    std::env::remove_var("RACD_TEST_ALWAYS_PANIC");
    assert_eq!(
        code, EXIT_RESTART_STORM,
        "storm must exit with the typed code"
    );
    assert!(
        DirtyMarker::in_dir(&storm).present(),
        "a storm exit must leave the dirty marker armed"
    );
    // The job is still queued for the next (fixed) daemon.
    let queued = std::fs::read_dir(storm.join("queue"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "scn"))
        .count();
    assert_eq!(queued, 1, "a stormed job must stay queued");

    // Phase 4 — with the fault gone, restarting the stormed daemon
    // finishes the queued job and converges to the reference bytes.
    let code = racd::run(daemon_config(&storm, &cache), &operands[..0]);
    assert_eq!(code, EXIT_CLEAN);
    let recovered = std::fs::read(storm.join("results/scenario-tiny.csv")).unwrap();
    assert_eq!(
        recovered, reference,
        "post-storm recovery must converge to the clean bytes"
    );
    assert!(!DirtyMarker::in_dir(&storm).present());

    let _ = std::fs::remove_dir_all(&root);
}
