//! End-to-end daemon lifecycle, in-process: a `--once` run drains the
//! queue, writes the scenario artifacts, cleans up its checkpoint and
//! queue entry, and disarms the dirty marker — and a second daemon
//! instance over the same scenario produces byte-identical CSV output.
//!
//! Kept to a single test function: the daemon shares process-global
//! state (the health cell, signal flags), so phases run sequentially.

use std::path::Path;

use racd::{DaemonConfig, DirtyMarker, EXIT_CLEAN};

const SCN: &str = "name tiny\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 5\n\
                   at 60s intensity 1.4\nfault at 200s drop\n";

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("racd-life-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn daemon_config(state: &Path, cache: &Path) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(state.to_path_buf());
    // Every run in this file shares one policy cache so only the first
    // pays the (deterministic) training cost.
    cfg.cache_dir = cache.to_path_buf();
    cfg.checkpoint_every = 2;
    cfg.once = true;
    cfg
}

#[test]
fn once_run_drains_queue_and_is_deterministic() {
    let root = fresh_dir("root");
    let cache = root.join("cache");
    let scn_path = root.join("tiny.scn");
    std::fs::write(&scn_path, SCN).unwrap();

    // First daemon instance: drain the one-job queue.
    let state_a = root.join("a");
    let code = racd::run(
        daemon_config(&state_a, &cache),
        &[scn_path.display().to_string()],
    );
    assert_eq!(code, EXIT_CLEAN);
    let csv_a = state_a.join("results/scenario-tiny.csv");
    assert!(csv_a.exists(), "finished job must write its CSV");
    assert!(
        !state_a.join("ckpt/tiny.ckpt").exists(),
        "finished job must remove its checkpoint"
    );
    assert_eq!(
        std::fs::read_dir(state_a.join("queue"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "scn"))
            .count(),
        0,
        "finished job must be dequeued"
    );
    assert!(
        !DirtyMarker::in_dir(&state_a).present(),
        "clean exit must disarm the dirty marker"
    );
    assert!(
        state_a.join("admin.addr").exists(),
        "resolved admin address must land in the state dir"
    );

    // Second instance, fresh state, same scenario: byte-identical CSV.
    let state_b = root.join("b");
    let code = racd::run(
        daemon_config(&state_b, &cache),
        &[scn_path.display().to_string()],
    );
    assert_eq!(code, EXIT_CLEAN);
    let a = std::fs::read(&csv_a).unwrap();
    let b = std::fs::read(state_b.join("results/scenario-tiny.csv")).unwrap();
    assert_eq!(
        a, b,
        "two daemon runs of the same scenario must match byte-for-byte"
    );

    // Third instance: a pre-armed marker is detected as a dirty start
    // (the daemon resumes anyway) and still exits clean.
    let state_c = root.join("c");
    DirtyMarker::in_dir(&state_c).arm().unwrap();
    let code = racd::run(
        daemon_config(&state_c, &cache),
        &[scn_path.display().to_string()],
    );
    assert_eq!(code, EXIT_CLEAN);
    assert!(!DirtyMarker::in_dir(&state_c).present());
    let c = std::fs::read(state_c.join("results/scenario-tiny.csv")).unwrap();
    assert_eq!(a, c, "a dirty start must not perturb the output bytes");

    let _ = std::fs::remove_dir_all(&root);
}
