//! The atomic dirty marker: one file under the state directory whose
//! presence at startup means the previous instance died without a
//! clean shutdown.
//!
//! The marker is armed as the daemon starts and disarmed only on the
//! graceful-exit path, *after* the worker has checkpointed and
//! stopped. A SIGKILL (or panic that escapes the supervisor) leaves it
//! behind, so the next start can tell a crash from a clean stop and
//! deliberately take the recovery path: sweep stale `.tmp` checkpoint
//! files, resume from the last committed snapshot, and report
//! `dirty_start=true` over the admin socket.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DirtyMarker {
    path: PathBuf,
}

impl DirtyMarker {
    /// The marker for a given state directory.
    pub fn in_dir(state_dir: &Path) -> Self {
        DirtyMarker {
            path: state_dir.join("racd.dirty"),
        }
    }

    /// Whether the marker is currently on disk (a previous instance
    /// crashed). Read this *before* [`DirtyMarker::arm`].
    pub fn present(&self) -> bool {
        self.path.exists()
    }

    /// Arms the marker. The write is made durable (fsync) so a crash
    /// immediately afterwards still finds it.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the marker file.
    pub fn arm(&self) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let f = fs::File::create(&self.path)?;
        f.sync_all()
    }

    /// Disarms the marker — the clean-shutdown path only.
    ///
    /// # Errors
    ///
    /// Any I/O error removing the file; a missing marker is fine.
    pub fn disarm(&self) -> io::Result<()> {
        match fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_disarm_cycle() {
        let dir = std::env::temp_dir().join(format!("racd-marker-{}", std::process::id()));
        let m = DirtyMarker::in_dir(&dir);
        assert!(!m.present());
        m.arm().unwrap();
        assert!(m.present(), "armed marker must be visible");
        // Arming twice is fine (restart after crash re-arms).
        m.arm().unwrap();
        m.disarm().unwrap();
        assert!(!m.present());
        // Disarming an absent marker is not an error.
        m.disarm().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
