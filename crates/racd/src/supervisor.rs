//! The supervision layer: a daemon loop that drains the persistent job
//! queue, running each scenario line-up in a worker thread under a
//! heartbeat watch, and restarting crashed or hung attempts from the
//! last committed checkpoint with capped backoff.
//!
//! ## Lifecycle state machine
//!
//! ```text
//!            +--------- idle <--- queue empty ----------+
//!            v                                          |
//!   start -> running --(boundary cmds)--> paused -------+
//!            |  |  \--- complete: outputs, dequeue -----+
//!            |  +--- crash/hang: backoff, resume ckpt --+   (breaker:
//!            |           | max consecutive failures         EXIT_RESTART_STORM)
//!            +--- SIGTERM/SIGINT/`shutdown`: checkpoint at next
//!                 boundary, disarm dirty marker, EXIT_CLEAN
//! ```
//!
//! ## Crash recovery contract
//!
//! Every attempt runs the lineup through
//! [`rac_bench::checkpoint::run_tuners_checkpointed_with`], whose
//! periodic flushes are a pure function of the global iteration. A
//! relaunch (after SIGKILL, a panic, or a hang) sweeps any torn
//! `.tmp`, resumes from the committed snapshot, and replays — so the
//! final CSV/trace bytes converge to an uninterrupted run's at any
//! `RAC_THREADS`, no matter where or how often the process died. The
//! job's queue entry is removed only *after* its outputs are on disk;
//! the checkpoint is removed after that, and a kill between those
//! steps just makes the next start redo (deterministically identical)
//! work.
//!
//! A superseded worker — one the supervisor has already given up on as
//! hung — observes the bumped attempt counter at its next boundary and
//! returns [`LineupCommand::Abort`], which stops *without writing*, so
//! a zombie can never clobber the snapshot a newer attempt builds on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use rac::PolicyLibrary;
use rac_bench::checkpoint::{
    run_tuners_checkpointed_with, CheckpointOptions, LineupCommand, LineupOutcome,
};
use scenario::Scenario;

use crate::admin::{AdminCmd, AdminServer};
use crate::backoff::RestartBreaker;
use crate::config::{DaemonConfig, LibraryKind};
use crate::marker::DirtyMarker;
use crate::queue::{Job, JobQueue};
use crate::signal;

/// Clean shutdown (signal or `shutdown` command, or `--once` drain).
pub const EXIT_CLEAN: i32 = 0;
/// Bad usage / configuration.
pub const EXIT_USAGE: i32 = 2;
/// Unrecoverable state error (corrupt committed snapshot, unwritable
/// state dir).
pub const EXIT_STATE: i32 = 3;
/// The restart-storm breaker tripped: `max_restarts` consecutive
/// failed attempts without a completed job.
pub const EXIT_RESTART_STORM: i32 = 4;

/// Supervisor idle poll (queue scan, signal checks).
const IDLE_POLL: Duration = Duration::from_millis(25);
/// Worker watch poll (heartbeat sampling).
const WATCH_POLL: Duration = Duration::from_millis(50);
/// Pause loop poll inside the worker's boundary callback.
const PAUSE_POLL: Duration = Duration::from_millis(20);

/// Shared mutable state between the supervisor loop, the worker's
/// boundary callback, and the admin server.
pub struct ControlState {
    /// Hold the worker at its next iteration boundary.
    pub paused: AtomicBool,
    /// One-shot checkpoint-on-demand request.
    pub ckpt_request: AtomicBool,
    /// Graceful-shutdown request (admin `shutdown`; signals are
    /// consulted separately so a handler never touches this struct).
    pub shutdown: AtomicBool,
    /// Current attempt generation; a worker whose spawn-time value no
    /// longer matches has been superseded and must abort.
    pub attempt: AtomicU64,
    /// Total restarts performed since daemon start.
    pub restarts_total: AtomicU64,
    /// Whether this daemon instance started with the dirty marker
    /// present (the previous instance crashed).
    pub dirty_start: AtomicBool,
    /// The persistent job queue.
    pub queue: Mutex<JobQueue>,
    /// Library swapped in by `upgrade` (applies from the next job).
    pub library_override: Mutex<Option<PolicyLibrary>>,
    /// Name of the job currently executing, if any.
    pub current_job: Mutex<Option<String>>,
    /// Live configuration (tunables mutate on SIGHUP).
    pub cfg: Mutex<DaemonConfig>,
}

impl ControlState {
    /// Whether any shutdown path (signal or admin) has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested()
    }

    /// The `status` reply line: stable `key=value` pairs.
    pub fn status_line(&self) -> String {
        let health = obs::health::global();
        let job = self
            .current_job
            .lock()
            .unwrap()
            .clone()
            .unwrap_or_else(|| "-".to_string());
        let state = if self.shutdown_requested() {
            "stopping"
        } else if self.current_job.lock().unwrap().is_none() {
            "idle"
        } else if self.paused.load(Ordering::Relaxed) {
            "paused"
        } else {
            "running"
        };
        let json = health.render_json();
        format!(
            "ok state={state} job={job} queue={} iter={}/{} breaker_open={} heartbeat={} \
             restarts={} dirty_start={}",
            self.queue.lock().unwrap().len(),
            json_u64(&json, "iteration"),
            json_u64(&json, "total_iterations"),
            json.contains("\"breaker_open\":true"),
            json_u64(&json, "heartbeat"),
            self.restarts_total.load(Ordering::Relaxed),
            self.dirty_start.load(Ordering::Relaxed),
        )
    }
}

/// Pulls a numeric field out of the (flat, trusted) health JSON.
fn json_u64(json: &str, key: &str) -> u64 {
    json.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// Dispatches one parsed admin command; returns the reply line.
pub fn handle_command(state: &Arc<ControlState>, cmd: AdminCmd) -> String {
    match cmd {
        AdminCmd::Status => state.status_line(),
        AdminCmd::Checkpoint => {
            state.ckpt_request.store(true, Ordering::Relaxed);
            "ok checkpoint requested".to_string()
        }
        AdminCmd::Pause => {
            state.paused.store(true, Ordering::Relaxed);
            "ok paused".to_string()
        }
        AdminCmd::Resume => {
            state.paused.store(false, Ordering::Relaxed);
            "ok resumed".to_string()
        }
        AdminCmd::Shutdown => {
            state.shutdown.store(true, Ordering::Relaxed);
            "ok shutting down".to_string()
        }
        AdminCmd::Inject(path) => inject(state, &path),
        AdminCmd::Upgrade(path) => upgrade(state, &path),
    }
}

/// `inject <file-or-bundled-name>`: validate the scenario *before* it
/// can touch the queue, then enqueue it durably.
fn inject(state: &Arc<ControlState>, operand: &str) -> String {
    let text = match scenario::bundled::by_name(operand) {
        Some(src) => src.to_string(),
        None => match std::fs::read_to_string(operand) {
            Ok(text) => text,
            Err(e) => return format!("err unreadable {operand}: {e}"),
        },
    };
    let scn = match Scenario::parse_with_warnings(&text) {
        Ok((scn, _warnings)) => scn,
        Err(e) => return format!("err scenario-invalid {operand}: {e}"),
    };
    match state.queue.lock().unwrap().push(&scn.name, &text) {
        Ok(_) => format!("ok injected {}", scn.name),
        Err(e) => format!("err queue-write {e}"),
    }
}

/// `upgrade <snapshot>`: rolling agent swap. The library restored from
/// the snapshot seeds the RAC agent of every *subsequent* job (the
/// running job keeps its state — swaps happen at job boundaries, never
/// mid-lineup). Vetoed when the snapshot's Q-table dimensions do not
/// match this build's lattice.
fn upgrade(state: &Arc<ControlState>, path: &str) -> String {
    let snap = match ckpt::Snapshot::load(std::path::Path::new(path)) {
        Ok(snap) => snap,
        Err(e) => return format!("err snapshot-unreadable {path}: {e}"),
    };
    let states = rac_bench::standard_lattice().num_states();
    match rac::library_from_snapshot_checked(&snap, states, rac::Action::COUNT) {
        Ok(lib) => {
            let n = lib.len();
            *state.library_override.lock().unwrap() = Some(lib);
            format!("ok upgraded {n} policies; applies from the next job")
        }
        Err(e) => format!("err lattice-mismatch {e}"),
    }
}

/// What one worker attempt reported back.
enum AttemptOutcome {
    /// The lineup finished; series plus the serialized trace (when
    /// tracing).
    Complete {
        series: Vec<(&'static str, Vec<rac::IterationRecord>)>,
        trace: Option<String>,
    },
    /// Graceful stop honored at a boundary (shutdown path).
    Stopped,
    /// Superseded worker bailed without writing.
    Aborted,
    /// The attempt panicked.
    Panicked(String),
    /// Transient (I/O) checkpoint failure — restartable.
    Failed(String),
    /// Permanent state mismatch/corruption — not restartable.
    StateError(String),
}

/// How a supervised job ended, at the daemon-loop level.
enum JobEnd {
    Done,
    Shutdown,
    Storm,
    StateError(String),
}

/// Test-only fault hooks, read from the environment once per attempt.
/// They fire only while no restart has happened yet (`restarts_total`
/// is 0), so an injected first-attempt fault proves recovery instead of
/// recursing forever; `RACD_TEST_ALWAYS_PANIC` is the storm hook.
struct TestHooks {
    panic_at: Option<usize>,
    hang_at: Option<usize>,
    always_panic: bool,
}

impl TestHooks {
    fn from_env() -> TestHooks {
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse().ok());
        TestHooks {
            panic_at: get("RACD_TEST_PANIC_AT"),
            hang_at: get("RACD_TEST_HANG_AT"),
            always_panic: std::env::var("RACD_TEST_ALWAYS_PANIC").is_ok(),
        }
    }
}

/// Runs the daemon to completion. This is `main` minus argument
/// parsing; returns the process exit code.
pub fn run(config: DaemonConfig, operands: &[String]) -> i32 {
    let marker = DirtyMarker::in_dir(&config.state_dir);
    let dirty = marker.present();
    if dirty {
        eprintln!("racd: dirty marker present — previous instance crashed; will resume");
    }
    if let Err(e) = marker.arm() {
        eprintln!("racd: cannot arm dirty marker: {e}");
        return EXIT_STATE;
    }
    if let Err(e) = std::fs::create_dir_all(&config.results_dir) {
        eprintln!("racd: cannot create results dir: {e}");
        return EXIT_STATE;
    }
    let queue = match JobQueue::open(&config.state_dir.join("queue")) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("racd: cannot open job queue: {e}");
            return EXIT_STATE;
        }
    };

    let state = Arc::new(ControlState {
        paused: AtomicBool::new(false),
        ckpt_request: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        attempt: AtomicU64::new(0),
        restarts_total: AtomicU64::new(0),
        dirty_start: AtomicBool::new(dirty),
        queue: Mutex::new(queue),
        library_override: Mutex::new(None),
        current_job: Mutex::new(None),
        cfg: Mutex::new(config.clone()),
    });

    // Initial operands are validated and enqueued exactly like
    // `inject` over the admin socket.
    for operand in operands {
        let reply = inject(&state, operand);
        if let Some(err) = reply.strip_prefix("err ") {
            eprintln!("racd: {operand}: {err}");
            return EXIT_USAGE;
        }
    }

    signal::install();

    let _obs_server = match &config.serve_addr {
        Some(addr) => match obs::ObsServer::start(addr) {
            Ok(s) => {
                eprintln!("racd: observability on http://{}", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("racd: cannot bind --serve {addr}: {e}");
                return EXIT_USAGE;
            }
        },
        None => None,
    };
    let admin = {
        let st = Arc::clone(&state);
        match AdminServer::start(&config.admin_addr, move |cmd| handle_command(&st, cmd)) {
            Ok(server) => server,
            Err(e) => {
                eprintln!(
                    "racd: cannot bind admin listener {}: {e}",
                    config.admin_addr
                );
                return EXIT_USAGE;
            }
        }
    };
    // The resolved admin address lands in the state dir so scripts
    // (the drill harness, CI) can find an OS-assigned port.
    let addr_file = config.state_dir.join("admin.addr");
    if let Err(e) = std::fs::write(&addr_file, format!("{}\n", admin.local_addr())) {
        eprintln!("racd: cannot write {}: {e}", addr_file.display());
        return EXIT_STATE;
    }
    eprintln!("racd: admin on {}", admin.local_addr());

    let code = loop {
        if state.shutdown_requested() {
            break EXIT_CLEAN;
        }
        if signal::take_reload() {
            reload_config(&state);
        }
        let head = match state.queue.lock().unwrap().head() {
            Ok(head) => head,
            Err(e) => {
                eprintln!("racd: cannot scan job queue: {e}");
                break EXIT_STATE;
            }
        };
        match head {
            Some(job) => match process_job(&state, &job) {
                JobEnd::Done => {}
                JobEnd::Shutdown => break EXIT_CLEAN,
                JobEnd::Storm => break EXIT_RESTART_STORM,
                JobEnd::StateError(msg) => {
                    eprintln!("racd: {msg}");
                    break EXIT_STATE;
                }
            },
            None => {
                // `--once` means "exit once the queue is drained" — an
                // already-empty queue (e.g. a relaunch after the last
                // job finished) drains trivially.
                if state.cfg.lock().unwrap().once {
                    break EXIT_CLEAN;
                }
                std::thread::sleep(IDLE_POLL);
            }
        }
    };

    if code == EXIT_CLEAN {
        // Only a clean shutdown disarms the marker; storm and state
        // exits leave it so the next start knows to resume.
        if let Err(e) = marker.disarm() {
            eprintln!("racd: cannot disarm dirty marker: {e}");
            return EXIT_STATE;
        }
    }
    code
}

fn reload_config(state: &Arc<ControlState>) {
    let mut cfg = state.cfg.lock().unwrap();
    match cfg.apply_file() {
        Ok(changed) if changed.is_empty() => eprintln!("racd: SIGHUP: config unchanged"),
        Ok(changed) => eprintln!("racd: SIGHUP: reloaded {}", changed.join(", ")),
        Err(e) => eprintln!("racd: SIGHUP: reload failed, keeping old config: {e}"),
    }
}

/// Supervises one job to completion, shutdown, storm, or state error.
fn process_job(state: &Arc<ControlState>, job: &Job) -> JobEnd {
    let cfg = state.cfg.lock().unwrap().clone();
    let scn = match Scenario::parse(&job.text) {
        Ok(scn) => {
            if cfg.quick {
                scn.scaled(1, 3)
            } else {
                scn
            }
        }
        // Entries are validated at inject time; an unparsable one means
        // the queue file was corrupted on disk.
        Err(e) => return JobEnd::StateError(format!("queue entry {}: {e}", job.path.display())),
    };
    *state.current_job.lock().unwrap() = Some(scn.name.clone());
    let ckpt_path = cfg
        .state_dir
        .join("ckpt")
        .join(format!("{}.ckpt", scn.name));
    let mut breaker = RestartBreaker::new(cfg.max_restarts);

    let end = loop {
        if state.shutdown_requested() {
            break JobEnd::Shutdown;
        }
        // Crash hygiene before every attempt: a torn `.tmp` from a kill
        // mid-checkpoint-write must never shadow the committed file.
        if let Err(e) = ckpt::remove_stale_temp(&ckpt_path) {
            break JobEnd::StateError(e.to_string());
        }
        let resume = if ckpt_path.exists() {
            match ckpt::Snapshot::load(&ckpt_path) {
                Ok(snap) => Some(snap),
                // The committed snapshot is written atomically, so a
                // parse failure here is real corruption, not a torn
                // write — restarting cannot fix it.
                Err(e) => {
                    break JobEnd::StateError(format!(
                        "committed checkpoint {} is corrupt: {e}",
                        ckpt_path.display()
                    ))
                }
            }
        } else {
            None
        };

        let attempt_id = state.attempt.fetch_add(1, Ordering::SeqCst) + 1;
        let (tx, rx) = mpsc::channel();
        let worker = {
            let state = Arc::clone(state);
            let scn = scn.clone();
            let cfg = cfg.clone();
            let ckpt_path = ckpt_path.clone();
            std::thread::Builder::new()
                .name(format!("racd-worker-{attempt_id}"))
                .spawn(move || {
                    let outcome = run_attempt(&state, attempt_id, &scn, &cfg, &ckpt_path, resume);
                    let _ = tx.send(outcome);
                })
        };
        if let Err(e) = worker {
            break JobEnd::StateError(format!("cannot spawn worker: {e}"));
        }

        // Watch: heartbeat staleness is the hang signal. Pauses park
        // the worker at a boundary where it keeps beating, so a pause
        // is never mistaken for a hang.
        let health = obs::health::global();
        let mut last_beats = health.beats();
        let mut last_motion = Instant::now();
        let outcome = loop {
            match rx.recv_timeout(WATCH_POLL) {
                Ok(outcome) => break outcome,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if signal::take_reload() {
                        reload_config(state);
                    }
                    let beats = health.beats();
                    if beats != last_beats {
                        last_beats = beats;
                        last_motion = Instant::now();
                    }
                    let timeout = state.cfg.lock().unwrap().heartbeat_timeout;
                    if last_motion.elapsed() > timeout {
                        // Hung: supersede the attempt. The stale thread
                        // observes the bump at its next boundary (if it
                        // ever reaches one) and aborts without writing.
                        state.attempt.fetch_add(1, Ordering::SeqCst);
                        break AttemptOutcome::Panicked(format!(
                            "hung: no heartbeat for {timeout:?}"
                        ));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break AttemptOutcome::Panicked("worker vanished".to_string());
                }
            }
        };

        match outcome {
            AttemptOutcome::Complete { series, trace } => {
                if let Err(e) = write_outputs(&cfg, &scn, &series, trace.as_deref()) {
                    break JobEnd::StateError(e);
                }
                // Output first, then checkpoint removal, then dequeue:
                // a kill between any two steps leaves the job either
                // pending (rerun, deterministically identical) or done.
                if let Err(e) = ckpt::remove_stale_temp(&ckpt_path) {
                    break JobEnd::StateError(e.to_string());
                }
                if ckpt_path.exists() {
                    if let Err(e) = std::fs::remove_file(&ckpt_path) {
                        break JobEnd::StateError(format!(
                            "cannot remove finished checkpoint: {e}"
                        ));
                    }
                }
                if let Err(e) = state.queue.lock().unwrap().remove(job) {
                    break JobEnd::StateError(format!("cannot dequeue finished job: {e}"));
                }
                breaker.note_progress();
                break JobEnd::Done;
            }
            AttemptOutcome::Stopped => break JobEnd::Shutdown,
            AttemptOutcome::Aborted => {
                // A superseded worker's report; nothing to do — the
                // attempt that superseded it already drove the loop.
                continue;
            }
            AttemptOutcome::StateError(msg) => break JobEnd::StateError(msg),
            AttemptOutcome::Panicked(msg) | AttemptOutcome::Failed(msg) => {
                state.restarts_total.fetch_add(1, Ordering::Relaxed);
                let tripped = breaker.note_failure();
                eprintln!(
                    "racd: job {} attempt failed ({} consecutive): {msg}",
                    scn.name,
                    breaker.failures()
                );
                if tripped {
                    eprintln!(
                        "racd: restart storm: {} consecutive failures, giving up (exit {})",
                        breaker.failures(),
                        EXIT_RESTART_STORM
                    );
                    break JobEnd::Storm;
                }
                let delay = cfg.backoff.delay(breaker.failures());
                eprintln!("racd: backing off {delay:?} before restart");
                let wake = Instant::now() + delay;
                while Instant::now() < wake && !state.shutdown_requested() {
                    std::thread::sleep(IDLE_POLL.min(delay));
                }
            }
        }
    };
    *state.current_job.lock().unwrap() = None;
    end
}

/// One worker attempt, run on its own thread. Panics are caught and
/// reported as [`AttemptOutcome::Panicked`].
fn run_attempt(
    state: &Arc<ControlState>,
    attempt_id: u64,
    scn: &Scenario,
    cfg: &DaemonConfig,
    ckpt_path: &std::path::Path,
    resume: Option<ckpt::Snapshot>,
) -> AttemptOutcome {
    let health = obs::health::global();
    health.begin_job(&format!("racd {}", scn.name));
    let library = match state.library_override.lock().unwrap().clone() {
        Some(lib) => lib,
        None => match cfg.library {
            LibraryKind::Quick => rac_bench::daemon_quick_library(&cfg.cache_dir),
            LibraryKind::Standard => rac_bench::standard_policy_library(&cfg.cache_dir),
        },
    };
    let options = CheckpointOptions {
        path: ckpt_path.to_path_buf(),
        every: cfg.checkpoint_every,
        stop_after: None,
    };
    let hooks = TestHooks::from_env();
    let first_attempt_window = state.restarts_total.load(Ordering::Relaxed) == 0;

    let run = |writer: Option<&Arc<obs::TraceWriter>>| -> AttemptOutcome {
        let control = |status: &rac_bench::checkpoint::LineupStatus| -> LineupCommand {
            if state.attempt.load(Ordering::SeqCst) != attempt_id {
                return LineupCommand::Abort;
            }
            // Injected faults (tests/drill only; inert without the env
            // hooks).
            if hooks.always_panic
                || (first_attempt_window && hooks.panic_at == Some(status.global_iteration))
            {
                panic!(
                    "injected test panic at iteration {}",
                    status.global_iteration
                );
            }
            if first_attempt_window && hooks.hang_at == Some(status.global_iteration) {
                // Hang without heartbeats until superseded or shut down.
                while state.attempt.load(Ordering::SeqCst) == attempt_id
                    && !state.shutdown_requested()
                {
                    std::thread::sleep(PAUSE_POLL);
                }
                return LineupCommand::Abort;
            }
            // Pause parks here, still beating so the hang watch stays
            // quiet.
            while state.paused.load(Ordering::Relaxed)
                && !state.shutdown_requested()
                && state.attempt.load(Ordering::SeqCst) == attempt_id
            {
                health.beat();
                std::thread::sleep(PAUSE_POLL);
            }
            if state.attempt.load(Ordering::SeqCst) != attempt_id {
                return LineupCommand::Abort;
            }
            if state.shutdown_requested() {
                return LineupCommand::Stop;
            }
            if state.ckpt_request.swap(false, Ordering::Relaxed) {
                return LineupCommand::Checkpoint;
            }
            LineupCommand::Continue
        };
        match run_tuners_checkpointed_with(scn, &library, &options, resume.as_ref(), control) {
            Ok(LineupOutcome::Complete(series)) => {
                let trace = writer.and_then(|_| obs::trace::snapshot_serialized());
                health.finish_job(true);
                AttemptOutcome::Complete { series, trace }
            }
            Ok(LineupOutcome::Interrupted { .. }) => {
                if state.attempt.load(Ordering::SeqCst) != attempt_id {
                    AttemptOutcome::Aborted
                } else {
                    AttemptOutcome::Stopped
                }
            }
            Err(ckpt::CkptError::Io { .. }) => {
                health.finish_job(false);
                AttemptOutcome::Failed("checkpoint I/O error".to_string())
            }
            Err(e) => {
                health.finish_job(false);
                AttemptOutcome::StateError(format!("checkpoint state error: {e}"))
            }
        }
    };

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if obs::tracing_enabled() {
            let writer = Arc::new(obs::TraceWriter::new());
            obs::trace::with_writer(&writer, || run(Some(&writer)))
        } else {
            run(None)
        }
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            health.finish_job(false);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            AttemptOutcome::Panicked(msg)
        }
    }
}

/// Writes the finished job's artifacts exactly like `figures scenario`:
/// `scenario-<name>.csv` and (when tracing) `scenario-<name>.trace.jsonl`
/// under the results dir.
fn write_outputs(
    cfg: &DaemonConfig,
    scn: &Scenario,
    series: &[(&'static str, Vec<rac::IterationRecord>)],
    trace: Option<&str>,
) -> Result<(), String> {
    let named: Vec<(&str, Vec<rac::IterationRecord>)> =
        series.iter().map(|(n, s)| (*n, s.clone())).collect();
    let table = rac_bench::scenario::scenario_table(scn, &named);
    let csv_path = cfg.results_dir.join(format!("scenario-{}.csv", scn.name));
    table
        .write_csv(&csv_path)
        .map_err(|e| format!("cannot write {}: {e}", csv_path.display()))?;
    if let Some(text) = trace {
        let trace_path = cfg
            .results_dir
            .join(format!("scenario-{}.trace.jsonl", scn.name));
        std::fs::write(&trace_path, text)
            .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_state(dir: &std::path::Path) -> Arc<ControlState> {
        Arc::new(ControlState {
            paused: AtomicBool::new(false),
            ckpt_request: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            attempt: AtomicU64::new(0),
            restarts_total: AtomicU64::new(0),
            dirty_start: AtomicBool::new(false),
            queue: Mutex::new(JobQueue::open(&dir.join("queue")).unwrap()),
            library_override: Mutex::new(None),
            current_job: Mutex::new(None),
            cfg: Mutex::new(DaemonConfig::new(dir.to_path_buf())),
        })
    }

    #[test]
    fn admin_dispatch_flags_and_status() {
        let dir = std::env::temp_dir().join(format!("racd-sup-{}", std::process::id()));
        let state = empty_state(&dir);
        assert_eq!(
            handle_command(&state, AdminCmd::Pause),
            "ok paused".to_string()
        );
        assert!(state.paused.load(Ordering::Relaxed));
        handle_command(&state, AdminCmd::Resume);
        assert!(!state.paused.load(Ordering::Relaxed));
        handle_command(&state, AdminCmd::Checkpoint);
        assert!(state.ckpt_request.load(Ordering::Relaxed));
        let status = handle_command(&state, AdminCmd::Status);
        assert!(status.starts_with("ok state=idle"), "got: {status}");
        assert!(status.contains("queue=0"));
        assert!(status.contains("dirty_start=false"));
        handle_command(&state, AdminCmd::Shutdown);
        assert!(state.shutdown.load(Ordering::Relaxed));
        assert!(handle_command(&state, AdminCmd::Status).contains("state=stopping"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inject_validates_before_enqueue() {
        let dir = std::env::temp_dir().join(format!("racd-inj-{}", std::process::id()));
        let state = empty_state(&dir);
        // Bundled names work.
        let reply = handle_command(&state, AdminCmd::Inject("flash-crowd".into()));
        assert_eq!(reply, "ok injected flash-crowd");
        assert_eq!(state.queue.lock().unwrap().len(), 1);
        // Unreadable paths and invalid scenarios are typed errors and
        // never touch the queue.
        let reply = handle_command(&state, AdminCmd::Inject("/definitely/missing.scn".into()));
        assert!(reply.starts_with("err unreadable"), "got: {reply}");
        let bad = dir.join("bad.scn");
        std::fs::write(&bad, "duration what\n").unwrap();
        let reply = handle_command(&state, AdminCmd::Inject(bad.display().to_string()));
        assert!(reply.starts_with("err scenario-invalid"), "got: {reply}");
        assert_eq!(state.queue.lock().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn upgrade_vetoes_lattice_mismatch() {
        let dir = std::env::temp_dir().join(format!("racd-upg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let state = empty_state(&dir);
        // A library snapshot at the WRONG lattice (3 levels instead of
        // the standard 4) must be vetoed.
        let lib = rac_bench::quick_policy_library(&[rac::paper_contexts()[0]]);
        let mut w = ckpt::SnapshotWriter::new();
        rac::library_to_snapshot(&mut w, &lib);
        let bad = dir.join("bad-lattice.ckpt");
        w.write_atomic(&bad).unwrap();
        let reply = handle_command(&state, AdminCmd::Upgrade(bad.display().to_string()));
        assert!(reply.starts_with("err lattice-mismatch"), "got: {reply}");
        assert!(state.library_override.lock().unwrap().is_none());
        // A matching-lattice snapshot is accepted.
        let lib = rac_bench::daemon_quick_library(&dir.join("cache"));
        let mut w = ckpt::SnapshotWriter::new();
        rac::library_to_snapshot(&mut w, &lib);
        let good = dir.join("good-lattice.ckpt");
        w.write_atomic(&good).unwrap();
        let reply = handle_command(&state, AdminCmd::Upgrade(good.display().to_string()));
        assert!(reply.starts_with("ok upgraded 1"), "got: {reply}");
        assert!(state.library_override.lock().unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
