//! Binary entry point: parse arguments, then hand the process to the
//! supervisor loop.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match racd::parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(racd::EXIT_USAGE);
        }
    };
    std::process::exit(racd::run(cli.config, &cli.operands));
}
