//! `racd` — the supervised control-plane daemon for the
//! auto-configuration harness.
//!
//! The daemon wraps the checkpointed scenario line-up runner in a
//! supervision loop: jobs are injected over a line-protocol admin
//! socket (or as startup operands), persisted to a durable on-disk
//! queue, and executed in a worker thread under a heartbeat watch.
//! Crashes and hangs restart the attempt from the last committed
//! checkpoint with capped exponential backoff; a restart storm trips a
//! breaker and exits with a typed code. SIGTERM/SIGINT checkpoint then
//! stop at the next iteration boundary, SIGHUP re-reads the config
//! file, and a dirty marker distinguishes clean shutdown from crash.
//!
//! The determinism contract carries through: a daemon killed at any
//! point (including mid-checkpoint-write) converges, after relaunch,
//! to CSV/trace output byte-identical to an uninterrupted run — the
//! crash-drill harness (`figures crashdrill`) asserts exactly that.

pub mod admin;
pub mod backoff;
pub mod config;
pub mod marker;
pub mod queue;
pub mod signal;
pub mod supervisor;

pub use admin::{parse_command, AdminCmd, AdminError, AdminServer};
pub use backoff::{Backoff, RestartBreaker};
pub use config::{parse_args, Cli, DaemonConfig, LibraryKind};
pub use marker::DirtyMarker;
pub use queue::{Job, JobQueue};
pub use supervisor::{run, EXIT_CLEAN, EXIT_RESTART_STORM, EXIT_STATE, EXIT_USAGE};
