//! Restart pacing: capped exponential backoff and the restart-storm
//! circuit breaker.
//!
//! Both are deliberately deterministic — no jitter, no wall-clock
//! state. A given failure count always maps to the same delay, so the
//! supervisor's behavior under a reproducible crash schedule is itself
//! reproducible, and the unit tests can assert the exact schedule.

use std::time::Duration;

/// Capped doubling: failure `n` (1-based) waits `base * 2^(n-1)`,
/// clamped to `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay after the first failure.
    pub base: Duration,
    /// Upper clamp for every delay.
    pub cap: Duration,
}

impl Backoff {
    /// The delay before restart attempt number `failures` (how many
    /// consecutive failures have been observed, starting at 1). Zero
    /// failures means no delay.
    pub fn delay(&self, failures: u32) -> Duration {
        if failures == 0 {
            return Duration::ZERO;
        }
        // Saturate the shift well before Duration overflows.
        let factor = 1u32.checked_shl(failures - 1).unwrap_or(u32::MAX);
        self.base
            .checked_mul(factor)
            .unwrap_or(self.cap)
            .min(self.cap)
    }
}

/// Counts consecutive failures and trips once they reach `max` — the
/// supervisor then exits with a typed code instead of looping forever.
#[derive(Debug, Clone, Copy)]
pub struct RestartBreaker {
    /// Consecutive failures tolerated before tripping.
    pub max: u32,
    failures: u32,
}

impl RestartBreaker {
    /// A closed breaker tolerating `max` consecutive failures.
    pub fn new(max: u32) -> Self {
        RestartBreaker { max, failures: 0 }
    }

    /// Records one failure; returns `true` when the breaker trips
    /// (i.e. this was failure number `max`).
    pub fn note_failure(&mut self) -> bool {
        self.failures = self.failures.saturating_add(1);
        self.failures >= self.max
    }

    /// Forward progress (a completed attempt or a successful resume
    /// past the previous crash point) closes the breaker again.
    pub fn note_progress(&mut self) {
        self.failures = 0;
    }

    /// Consecutive failures recorded so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_capped_doubling() {
        let b = Backoff {
            base: Duration::from_millis(200),
            cap: Duration::from_millis(5000),
        };
        let expect = [0u64, 200, 400, 800, 1600, 3200, 5000, 5000, 5000];
        for (failures, ms) in expect.into_iter().enumerate() {
            assert_eq!(
                b.delay(failures as u32),
                Duration::from_millis(ms),
                "failure #{failures}"
            );
        }
        // Deep failure counts saturate at the cap instead of
        // overflowing the shift.
        assert_eq!(b.delay(64), Duration::from_millis(5000));
        assert_eq!(b.delay(u32::MAX), Duration::from_millis(5000));
    }

    #[test]
    fn schedule_is_jitter_free() {
        let b = Backoff {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
        };
        // Determinism: repeated evaluation of the same failure count
        // gives the same answer; two identical instances agree.
        for failures in 0..20 {
            let d = b.delay(failures);
            assert_eq!(d, b.delay(failures));
            assert_eq!(
                d,
                Backoff {
                    base: Duration::from_millis(100),
                    cap: Duration::from_secs(2),
                }
                .delay(failures)
            );
        }
    }

    #[test]
    fn breaker_trips_after_max_and_resets_on_progress() {
        let mut br = RestartBreaker::new(3);
        assert!(!br.note_failure());
        assert!(!br.note_failure());
        br.note_progress();
        assert_eq!(br.failures(), 0, "progress must close the breaker");
        assert!(!br.note_failure());
        assert!(!br.note_failure());
        assert!(br.note_failure(), "failure #max must trip");
    }
}
