//! The persistent job queue: one `.scn` file per pending job under
//! `<state>/queue/`, named `NNNNNN-<name>.scn` so directory order is
//! arrival order. Jobs are enqueued with a temp-file-then-rename (the
//! same crash safety as checkpoints) and removed only after the job's
//! outputs are on disk — a SIGKILL at any point leaves either a
//! pending job or a finished one, never a lost one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A pending job: a parsed-validated scenario source on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Queue file backing the job.
    pub path: PathBuf,
    /// Scenario name (from the file stem, after the sequence prefix).
    pub name: String,
    /// The scenario source text.
    pub text: String,
}

/// See the [module docs](self).
#[derive(Debug)]
pub struct JobQueue {
    dir: PathBuf,
    next_seq: u64,
}

impl JobQueue {
    /// Opens (creating if needed) the queue directory and positions the
    /// sequence counter after the highest existing entry.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or scanning the directory.
    pub fn open(dir: &Path) -> io::Result<JobQueue> {
        fs::create_dir_all(dir)?;
        let mut next_seq = 0;
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            if let Some(seq) = parse_seq(&name.to_string_lossy()) {
                next_seq = next_seq.max(seq + 1);
            }
        }
        Ok(JobQueue {
            dir: dir.to_path_buf(),
            next_seq,
        })
    }

    /// Enqueues a scenario durably. `name` is sanitized into the file
    /// name; `text` is the scenario source (already validated by the
    /// caller).
    ///
    /// # Errors
    ///
    /// Any I/O error writing the queue entry.
    pub fn push(&mut self, name: &str, text: &str) -> io::Result<PathBuf> {
        let path = self
            .dir
            .join(format!("{:06}-{}.scn", self.next_seq, sanitize(name)));
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &path)?;
        self.next_seq += 1;
        Ok(path)
    }

    /// The oldest pending job, if any. Unreadable or torn entries
    /// (`.tmp` leftovers) are skipped, never fatal.
    ///
    /// # Errors
    ///
    /// Any I/O error scanning the directory.
    pub fn head(&self) -> io::Result<Option<Job>> {
        let mut entries: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == "scn")
                    && p.file_name()
                        .is_some_and(|n| parse_seq(&n.to_string_lossy()).is_some())
            })
            .collect();
        entries.sort();
        for path in entries {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let stem = path.file_stem().unwrap_or_default().to_string_lossy();
            let name = stem
                .split_once('-')
                .map(|(_, rest)| rest)
                .unwrap_or(&stem)
                .to_string();
            return Ok(Some(Job { path, name, text }));
        }
        Ok(None)
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "scn"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes a finished job's queue entry.
    ///
    /// # Errors
    ///
    /// Any I/O error removing the file; already-gone is fine.
    pub fn remove(&mut self, job: &Job) -> io::Result<()> {
        match fs::remove_file(&job.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

fn parse_seq(file_name: &str) -> Option<u64> {
    let (seq, rest) = file_name.split_once('-')?;
    if std::path::Path::new(rest)
        .extension()
        .is_none_or(|e| e != "scn")
    {
        return None;
    }
    seq.parse().ok()
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "job".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("racd-queue-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut q = JobQueue::open(&dir).unwrap();
        assert!(q.is_empty());
        q.push("alpha", "name alpha\n").unwrap();
        q.push("beta", "name beta\n").unwrap();
        assert_eq!(q.len(), 2);
        // Reopening (a restart) keeps order and continues the sequence.
        let mut q = JobQueue::open(&dir).unwrap();
        let head = q.head().unwrap().unwrap();
        assert_eq!(head.name, "alpha");
        q.remove(&head).unwrap();
        q.push("gamma", "name gamma\n").unwrap();
        let head = q.head().unwrap().unwrap();
        assert_eq!(head.name, "beta", "beta enqueued before gamma");
        // Weird names are sanitized, not rejected.
        let p = q.push("oh no/../spaces here", "x\n").unwrap();
        assert!(p.file_name().unwrap().to_string_lossy().contains("oh_no"));
        let _ = fs::remove_dir_all(&dir);
    }
}
