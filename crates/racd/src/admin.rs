//! The admin line protocol and its TCP listener.
//!
//! Grammar (one command per connection, newline-terminated, UTF-8):
//!
//! ```text
//! status                 -> ok state=... job=... queue=... ...
//! checkpoint             -> ok checkpoint requested
//! pause                  -> ok paused
//! resume                 -> ok resumed
//! shutdown               -> ok shutting down
//! inject <scenario.scn>  -> ok injected <name> | err ...
//! upgrade <snapshot>     -> ok upgraded ... | err lattice-mismatch ...
//! ```
//!
//! Every reply is a single line starting `ok` or `err <code>`; the
//! parser is total — any token soup yields a typed [`AdminError`],
//! never a panic — so a stray `curl` or a fuzzing client cannot take
//! the daemon down. Paths may contain spaces: everything after the
//! command word, trimmed, is the argument.

use std::fmt;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Overall per-connection deadline (same rationale as the ObsServer:
/// a slow client must not wedge the single-threaded accept loop).
const IO_TIMEOUT: Duration = Duration::from_millis(2000);
/// Upper bound on a command line.
const MAX_LINE_BYTES: usize = 4 * 1024;

/// A parsed admin command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminCmd {
    /// One-line daemon status.
    Status,
    /// Checkpoint-on-demand at the next iteration boundary.
    Checkpoint,
    /// Hold the worker at its next iteration boundary.
    Pause,
    /// Release a pause.
    Resume,
    /// Graceful shutdown (same path as SIGTERM).
    Shutdown,
    /// Validate and enqueue a scenario file.
    Inject(String),
    /// Rolling agent swap: seed subsequent jobs' RAC agent from a
    /// policy snapshot (vetoed if lattice fingerprints mismatch).
    Upgrade(String),
}

/// Why a command line did not parse. Total over arbitrary input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminError {
    /// Nothing but whitespace.
    Empty,
    /// First word is not a known command.
    Unknown(String),
    /// `inject`/`upgrade` without a path.
    MissingArg(&'static str),
    /// A no-argument command with trailing tokens.
    ExtraArgs(&'static str),
}

impl AdminError {
    /// Stable machine-readable code for the `err <code> ...` reply.
    pub fn code(&self) -> &'static str {
        match self {
            AdminError::Empty => "empty",
            AdminError::Unknown(_) => "unknown-command",
            AdminError::MissingArg(_) => "missing-arg",
            AdminError::ExtraArgs(_) => "extra-args",
        }
    }
}

impl fmt::Display for AdminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminError::Empty => write!(f, "empty command"),
            AdminError::Unknown(cmd) => write!(
                f,
                "unknown command `{cmd}` (try: status, checkpoint, pause, resume, \
                 shutdown, inject <file>, upgrade <file>)"
            ),
            AdminError::MissingArg(cmd) => write!(f, "{cmd} needs a file argument"),
            AdminError::ExtraArgs(cmd) => write!(f, "{cmd} takes no arguments"),
        }
    }
}

/// Parses one admin command line. Total: any input yields a command or
/// a typed error, never a panic.
pub fn parse_command(line: &str) -> Result<AdminCmd, AdminError> {
    let line = line.trim();
    let Some(word) = line.split_whitespace().next() else {
        return Err(AdminError::Empty);
    };
    let rest = line[word.len()..].trim();
    let bare = |cmd: AdminCmd, name: &'static str| {
        if rest.is_empty() {
            Ok(cmd)
        } else {
            Err(AdminError::ExtraArgs(name))
        }
    };
    let with_path = |make: fn(String) -> AdminCmd, name: &'static str| {
        if rest.is_empty() {
            Err(AdminError::MissingArg(name))
        } else {
            Ok(make(rest.to_string()))
        }
    };
    match word.to_ascii_lowercase().as_str() {
        "status" => bare(AdminCmd::Status, "status"),
        "checkpoint" => bare(AdminCmd::Checkpoint, "checkpoint"),
        "pause" => bare(AdminCmd::Pause, "pause"),
        "resume" => bare(AdminCmd::Resume, "resume"),
        "shutdown" => bare(AdminCmd::Shutdown, "shutdown"),
        "inject" => with_path(AdminCmd::Inject, "inject"),
        "upgrade" => with_path(AdminCmd::Upgrade, "upgrade"),
        other => Err(AdminError::Unknown(other.to_string())),
    }
}

/// The admin listener: accepts one command per connection and replies
/// with a single line. Dropping the handle stops the thread.
#[derive(Debug)]
pub struct AdminServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (port 0 lets the OS pick) and dispatches parsed
    /// commands to `handler`, whose return value is the reply line.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listener.
    pub fn start(
        addr: &str,
        handler: impl Fn(AdminCmd) -> String + Send + Sync + 'static,
    ) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("racd-admin".into())
            .spawn(move || accept_loop(listener, &stop_flag, &handler))?;
        Ok(AdminServer {
            local,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually-bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: &AtomicBool,
    handler: &(impl Fn(AdminCmd) -> String + Send + Sync),
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = handle_connection(stream, handler);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    handler: &(impl Fn(AdminCmd) -> String + Send + Sync),
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let deadline = Instant::now() + IO_TIMEOUT;
    let line = read_line(&stream, deadline)?;
    let reply = match parse_command(&line) {
        Ok(cmd) => handler(cmd),
        Err(e) => format!("err {} {e}", e.code()),
    };
    let mut stream = stream;
    stream.write_all(reply.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Reads one `\n`-terminated line within the remaining deadline budget,
/// shrinking the read timeout before each read exactly like the
/// ObsServer request reader.
fn read_line(stream: &TcpStream, deadline: Instant) -> io::Result<String> {
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() || buf.len() >= MAX_LINE_BYTES {
            break;
        }
        stream.set_read_timeout(Some(remaining))?;
        let chunk = match reader.fill_buf() {
            Ok([]) => break,
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (chunk.len(), false),
        };
        buf.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if done {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        assert_eq!(parse_command("status"), Ok(AdminCmd::Status));
        assert_eq!(parse_command("  CHECKPOINT  "), Ok(AdminCmd::Checkpoint));
        assert_eq!(parse_command("pause"), Ok(AdminCmd::Pause));
        assert_eq!(parse_command("resume"), Ok(AdminCmd::Resume));
        assert_eq!(parse_command("shutdown"), Ok(AdminCmd::Shutdown));
        assert_eq!(
            parse_command("inject /tmp/my scenario.scn"),
            Ok(AdminCmd::Inject("/tmp/my scenario.scn".to_string())),
            "paths keep their spaces"
        );
        assert_eq!(
            parse_command("upgrade snap.ckpt"),
            Ok(AdminCmd::Upgrade("snap.ckpt".to_string()))
        );
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(parse_command("   "), Err(AdminError::Empty));
        assert!(matches!(
            parse_command("frobnicate now"),
            Err(AdminError::Unknown(_))
        ));
        assert_eq!(
            parse_command("inject"),
            Err(AdminError::MissingArg("inject"))
        );
        assert_eq!(
            parse_command("status please"),
            Err(AdminError::ExtraArgs("status"))
        );
        // Codes are stable strings for scripting.
        assert_eq!(parse_command("x").unwrap_err().code(), "unknown-command");
    }

    #[test]
    fn server_answers_over_a_real_socket() {
        let server = AdminServer::start("127.0.0.1:0", |cmd| match cmd {
            AdminCmd::Status => "ok state=idle".to_string(),
            other => format!("ok echoed {other:?}"),
        })
        .expect("bind loopback");
        let addr = server.local_addr();

        let ask = |line: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(line.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
            let mut reply = String::new();
            BufReader::new(s).read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        assert_eq!(ask("status"), "ok state=idle");
        assert!(ask("inject a.scn").starts_with("ok echoed Inject"));
        let err = ask("blorp");
        assert!(err.starts_with("err unknown-command"), "got: {err}");
    }
}
