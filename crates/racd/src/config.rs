//! Daemon configuration: CLI arguments plus an optional `key = value`
//! config file whose tunables can be re-read on `SIGHUP`.

use std::path::PathBuf;
use std::time::Duration;

use crate::backoff::Backoff;

/// Which offline policy library the worker seeds the RAC agent from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibraryKind {
    /// One cheaply-trained context at the standard lattice — fast to
    /// build, used by the drill harness and CI.
    Quick,
    /// The full six-context paper library (disk-cached).
    Standard,
}

/// Everything the daemon needs to run; see [`parse_args`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root for queue, checkpoints, markers, and address files.
    pub state_dir: PathBuf,
    /// Where finished jobs write `scenario-<name>.csv` / `.trace.jsonl`.
    pub results_dir: PathBuf,
    /// Offline-policy disk cache.
    pub cache_dir: PathBuf,
    /// Admin line-protocol listener address (port 0 = OS-assigned; the
    /// resolved address is written to `<state>/admin.addr`).
    pub admin_addr: String,
    /// Optional embedded observability server address.
    pub serve_addr: Option<String>,
    /// Exit as soon as the queue is empty instead of idling for more
    /// work (an already-empty queue drains trivially).
    pub once: bool,
    /// Scale scenarios down like `figures --quick`.
    pub quick: bool,
    /// Policy library flavor.
    pub library: LibraryKind,
    /// Flush the lineup checkpoint every N global iterations.
    pub checkpoint_every: usize,
    /// How long the heartbeat may stall before the worker counts as
    /// hung.
    pub heartbeat_timeout: Duration,
    /// Restart pacing.
    pub backoff: Backoff,
    /// Restart-storm breaker: consecutive failures before the daemon
    /// gives up with [`crate::supervisor::EXIT_RESTART_STORM`].
    pub max_restarts: u32,
    /// Config file re-read on `SIGHUP`, if any.
    pub config_path: Option<PathBuf>,
}

impl DaemonConfig {
    /// Defaults rooted at `state_dir`.
    pub fn new(state_dir: PathBuf) -> Self {
        let results_dir = state_dir.join("results");
        let cache_dir = state_dir.join("cache");
        DaemonConfig {
            state_dir,
            results_dir,
            cache_dir,
            admin_addr: "127.0.0.1:0".to_string(),
            serve_addr: None,
            once: false,
            quick: false,
            library: LibraryKind::Quick,
            checkpoint_every: 5,
            heartbeat_timeout: Duration::from_secs(30),
            backoff: Backoff {
                base: Duration::from_millis(200),
                cap: Duration::from_secs(5),
            },
            max_restarts: 5,
            config_path: None,
        }
    }

    /// Applies the reloadable tunables from the `key = value` file at
    /// `config_path` (blank lines and `#` comments ignored). Returns
    /// the keys that changed.
    ///
    /// # Errors
    ///
    /// A message naming the offending line for unreadable files,
    /// unknown keys, or unparsable values.
    pub fn apply_file(&mut self) -> Result<Vec<&'static str>, String> {
        let Some(path) = &self.config_path else {
            return Ok(Vec::new());
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut changed = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("{}:{}: expected key = value", path.display(), lineno + 1)
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| {
                format!(
                    "{}:{}: {key}: not a valid {what}: {value}",
                    path.display(),
                    lineno + 1
                )
            };
            match key {
                "checkpoint_every" => {
                    let v: usize = value.parse().map_err(|_| bad("count"))?;
                    if v != self.checkpoint_every {
                        self.checkpoint_every = v;
                        changed.push("checkpoint_every");
                    }
                }
                "heartbeat_timeout_ms" => {
                    let v: u64 = value.parse().map_err(|_| bad("duration (ms)"))?;
                    let v = Duration::from_millis(v);
                    if v != self.heartbeat_timeout {
                        self.heartbeat_timeout = v;
                        changed.push("heartbeat_timeout_ms");
                    }
                }
                "backoff_base_ms" => {
                    let v: u64 = value.parse().map_err(|_| bad("duration (ms)"))?;
                    let v = Duration::from_millis(v);
                    if v != self.backoff.base {
                        self.backoff.base = v;
                        changed.push("backoff_base_ms");
                    }
                }
                "backoff_cap_ms" => {
                    let v: u64 = value.parse().map_err(|_| bad("duration (ms)"))?;
                    let v = Duration::from_millis(v);
                    if v != self.backoff.cap {
                        self.backoff.cap = v;
                        changed.push("backoff_cap_ms");
                    }
                }
                "max_restarts" => {
                    let v: u32 = value.parse().map_err(|_| bad("count"))?;
                    if v != self.max_restarts {
                        self.max_restarts = v;
                        changed.push("max_restarts");
                    }
                }
                other => {
                    return Err(format!(
                        "{}:{}: unknown key `{other}` (reloadable keys: checkpoint_every, \
                         heartbeat_timeout_ms, backoff_base_ms, backoff_cap_ms, max_restarts)",
                        path.display(),
                        lineno + 1
                    ))
                }
            }
        }
        Ok(changed)
    }
}

/// Parsed command line: the configuration plus initial scenario
/// operands (bundled names or `.scn` paths) to enqueue at startup.
#[derive(Debug)]
pub struct Cli {
    /// The daemon configuration.
    pub config: DaemonConfig,
    /// Initial jobs.
    pub operands: Vec<String>,
}

/// The usage text for `racd --help` and argument errors.
pub const USAGE: &str = "\
usage: racd [scenario ...] --state <dir> [options]
  runs scenario line-up jobs under supervision: each job checkpoints to
  <state>/ckpt, crashes resume from the last committed snapshot, and
  SIGTERM/SIGINT checkpoint-then-stop at the next iteration boundary.

options:
  --state <dir>       state root (queue, checkpoints, markers)  [required]
  --results <dir>     output dir for CSV/trace artifacts  [<state>/results]
  --cache <dir>       offline-policy cache  [<state>/cache]
  --admin <addr>      admin listener  [127.0.0.1:0; resolved addr in <state>/admin.addr]
  --serve <addr>      embedded /metrics /healthz /profile server  [off]
  --config <file>     key = value tunables, re-read on SIGHUP
  --library <kind>    quick | standard policy library  [quick]
  --every <n>         checkpoint every N line-up iterations  [5]
  --once              exit once the queue drains
  --quick             scale scenarios down (like figures --quick)

admin protocol (one command per line; reply is `ok ...` or `err <code> ...`):
  status | checkpoint | pause | resume | shutdown
  inject <scenario.scn> | upgrade <snapshot.ckpt>";

/// Parses `args` (without the program name).
///
/// # Errors
///
/// A usage message; the caller prints it and exits with
/// [`crate::supervisor::EXIT_USAGE`].
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut state_dir: Option<PathBuf> = None;
    let mut results_dir: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut admin_addr: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut library: Option<LibraryKind> = None;
    let mut every: Option<usize> = None;
    let mut once = false;
    let mut quick = false;
    let mut operands = Vec::new();

    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--state" => state_dir = Some(PathBuf::from(value(args, &mut i, "--state")?)),
            "--results" => results_dir = Some(PathBuf::from(value(args, &mut i, "--results")?)),
            "--cache" => cache_dir = Some(PathBuf::from(value(args, &mut i, "--cache")?)),
            "--admin" => admin_addr = Some(value(args, &mut i, "--admin")?),
            "--serve" => serve_addr = Some(value(args, &mut i, "--serve")?),
            "--config" => config_path = Some(PathBuf::from(value(args, &mut i, "--config")?)),
            "--library" => {
                library = Some(match value(args, &mut i, "--library")?.as_str() {
                    "quick" => LibraryKind::Quick,
                    "standard" => LibraryKind::Standard,
                    other => return Err(format!("--library: unknown kind `{other}`\n{USAGE}")),
                })
            }
            "--every" => {
                every = Some(
                    value(args, &mut i, "--every")?
                        .parse()
                        .map_err(|_| format!("--every needs a count\n{USAGE}"))?,
                )
            }
            "--once" => once = true,
            "--quick" => quick = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}\n{USAGE}"));
            }
            operand => operands.push(operand.to_string()),
        }
        i += 1;
    }

    let state_dir = state_dir.ok_or_else(|| format!("--state is required\n{USAGE}"))?;
    let mut config = DaemonConfig::new(state_dir);
    if let Some(d) = results_dir {
        config.results_dir = d;
    }
    if let Some(d) = cache_dir {
        config.cache_dir = d;
    }
    if let Some(a) = admin_addr {
        config.admin_addr = a;
    }
    config.serve_addr = serve_addr;
    config.config_path = config_path;
    if let Some(k) = library {
        config.library = k;
    }
    if let Some(n) = every {
        config.checkpoint_every = n;
    }
    config.once = once;
    config.quick = quick;
    // The config file participates at startup too, not just on SIGHUP.
    config.apply_file()?;
    Ok(Cli { config, operands })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_operands() {
        let cli = parse_args(&args(&[
            "flash-crowd",
            "--state",
            "/tmp/st",
            "--once",
            "--quick",
            "--library",
            "standard",
            "--every",
            "3",
        ]))
        .unwrap();
        assert_eq!(cli.operands, vec!["flash-crowd"]);
        assert_eq!(cli.config.state_dir, PathBuf::from("/tmp/st"));
        assert_eq!(cli.config.results_dir, PathBuf::from("/tmp/st/results"));
        assert!(cli.config.once && cli.config.quick);
        assert_eq!(cli.config.library, LibraryKind::Standard);
        assert_eq!(cli.config.checkpoint_every, 3);
    }

    #[test]
    fn state_is_required_and_unknown_flags_rejected() {
        assert!(parse_args(&args(&["diurnal"]))
            .unwrap_err()
            .contains("--state"));
        assert!(parse_args(&args(&["--state", "s", "--bogus"]))
            .unwrap_err()
            .contains("--bogus"));
    }

    #[test]
    fn config_file_reload_applies_tunables() {
        let dir = std::env::temp_dir().join(format!("racd-cfg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("racd.conf");
        std::fs::write(
            &path,
            "# tunables\nmax_restarts = 9\nbackoff_base_ms = 10\nheartbeat_timeout_ms = 1000\n",
        )
        .unwrap();
        let mut cfg = DaemonConfig::new(dir.clone());
        cfg.config_path = Some(path.clone());
        let changed = cfg.apply_file().unwrap();
        assert_eq!(
            changed,
            vec!["max_restarts", "backoff_base_ms", "heartbeat_timeout_ms"]
        );
        assert_eq!(cfg.max_restarts, 9);
        assert_eq!(cfg.backoff.base, Duration::from_millis(10));
        // Re-applying an unchanged file reports nothing changed.
        assert!(cfg.apply_file().unwrap().is_empty());
        // Unknown keys are typed errors, not silent no-ops.
        std::fs::write(&path, "warp_factor = 9\n").unwrap();
        assert!(cfg.apply_file().unwrap_err().contains("warp_factor"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
