//! Async-signal-safe lifecycle flags.
//!
//! The daemon's signal contract:
//!
//! * `SIGTERM` / `SIGINT` — request a graceful shutdown: the worker
//!   checkpoints at its next iteration boundary, the queue entry stays
//!   for the next start, and the dirty marker is cleared.
//! * `SIGHUP` — request a configuration reload at the next supervisor
//!   tick.
//! * `SIGKILL` — untrappable by definition; the dirty marker stays
//!   armed and the next start takes the crash-recovery path.
//!
//! Handlers do nothing but store to process-global atomics (the only
//! thing that is async-signal-safe); the supervisor loop polls the
//! flags. No libc crate: the two functions used (`signal`, `raise`)
//! are declared directly against the platform C library, gated to Unix,
//! with inert stubs elsewhere so the crate still builds.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGHUP` (reload).
pub const SIGHUP: i32 = 1;
/// `SIGINT` (graceful shutdown).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (graceful shutdown).
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static RELOAD: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived. Sticky: once set it stays
/// set for the life of the process.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Consumes a pending reload request, if any.
pub fn take_reload() -> bool {
    RELOAD.swap(false, Ordering::Relaxed)
}

/// Test/seam hook: request shutdown as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use super::{RELOAD, SHUTDOWN, SIGHUP, SIGINT, SIGTERM};
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_shutdown(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    extern "C" fn on_reload(_sig: i32) {
        RELOAD.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_shutdown as *const () as usize);
            signal(SIGINT, on_shutdown as *const () as usize);
            signal(SIGHUP, on_reload as *const () as usize);
        }
    }

    pub fn raise_signal(sig: i32) {
        unsafe {
            raise(sig);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
    pub fn raise_signal(_sig: i32) {}
}

/// Installs the handlers above. Idempotent.
pub fn install() {
    imp::install();
}

/// Sends `sig` to the current process (used by the signal-contract
/// tests; a no-op on non-Unix).
pub fn raise_signal(sig: i32) {
    imp::raise_signal(sig);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    // SIGTERM/SIGINT are exercised out-of-process by the daemon
    // integration test: the shutdown flag is sticky and process-global,
    // so raising it here would bleed into every other unit test in this
    // binary.
    #[test]
    fn sighup_sets_only_the_reload_flag() {
        install();
        raise_signal(SIGHUP);
        assert!(take_reload(), "SIGHUP must request a reload");
        assert!(!take_reload(), "reload requests are consumed");
        assert!(!shutdown_requested(), "SIGHUP must not request a shutdown");
    }
}
