//! **obs** — zero-dependency observability for the RAC stack.
//!
//! The paper's whole argument rests on *seeing* what the agent does
//! online: per-iteration response time, chosen actions, SLA violations,
//! context switches. This crate turns those transient signals into
//! durable, machine-readable artifacts without pulling in a single
//! external dependency:
//!
//! * a global metrics [`Registry`](registry::Registry) of counters,
//!   gauges and histograms — lock-free on the increment path (handles
//!   are `Arc`-shared atomics), lock-taking only at registration and
//!   snapshot time;
//! * a structured **decision trace** ([`trace`], [`event`]): JSONL
//!   events with simulated-time stamps, serialized deterministically
//!   (stable field order, `(run, sim-time, seq)` ordering) so traces
//!   are byte-diffable across `RAC_THREADS` settings;
//! * [`Span`](span::Span)s for wall-clock timing of coarse stages
//!   (figure jobs, offline training), feeding duration histograms —
//!   and, when the hierarchical [`profile`]r is enabled, a per-thread
//!   call tree exported as flamegraph folded stacks;
//! * exporters ([`export`]): Prometheus text exposition (plus a
//!   [`export::validate_prometheus`] syntax checker) and CSV;
//! * a live plane: the embedded [`ObsServer`](serve::ObsServer)
//!   answering `GET /metrics`, `/healthz` (backed by the [`health`]
//!   run-state cell) and `/profile` over plain HTTP/1.0;
//! * a [`Console`](console::Console) for `--quiet`-able human-readable
//!   progress output.
//!
//! # The `RAC_OBS` contract
//!
//! The environment variable `RAC_OBS` selects the observability mode,
//! read once per process:
//!
//! | value                     | meaning                                          |
//! |---------------------------|--------------------------------------------------|
//! | `off`, `0`, `false`, `none` | everything disabled; instrumented code is a no-op |
//! | unset, `metrics`, `on`    | metrics registry active, no trace events         |
//! | `trace`, `full`           | metrics **and** decision-trace events            |
//!
//! Instrumented call sites guard with [`enabled`] (metrics) or install
//! trace scopes only under [`tracing_enabled`], so `RAC_OBS=off` costs
//! one cached enum load per instrumentation point.
//!
//! Trace *emission* itself is governed by scope presence, not by the
//! env var: [`trace::emit`] writes only when a [`trace::TraceWriter`]
//! scope is installed on the current thread. Tests can therefore drive
//! the full pipeline hermetically, without touching the process
//! environment.
//!
//! # Example
//!
//! ```
//! use obs::event::Event;
//! use obs::trace::{self, TraceWriter};
//! use std::sync::Arc;
//!
//! let writer = Arc::new(TraceWriter::new());
//! trace::with_writer(&writer, || {
//!     trace::set_sim_time_us(1_000_000);
//!     trace::emit(|| Event::new("decision").field("iter", 1u64).field("rt_ms", 512.5));
//! });
//! let jsonl = writer.serialize();
//! assert!(jsonl.contains("\"kind\":\"decision\""));
//! // Byte-identical round trip:
//! let reparsed = obs::event::parse_line(jsonl.trim_end()).unwrap();
//! assert_eq!(format!("{}\n", reparsed.to_json()), jsonl);
//! ```

pub mod console;
pub mod event;
pub mod export;
pub mod health;
pub mod profile;
pub mod registry;
pub mod serve;
pub mod span;
pub mod trace;

pub use console::Console;
pub use event::{Event, ParseError, Value};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use serve::ObsServer;
pub use span::Span;
pub use trace::TraceWriter;

use std::sync::OnceLock;

/// Environment variable selecting the observability mode.
pub const ENV: &str = "RAC_OBS";

/// Process-wide observability mode (see the [crate docs](crate) for the
/// `RAC_OBS` contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Everything disabled; instrumentation is a no-op.
    Off,
    /// Metrics registry active; no trace events.
    Metrics,
    /// Metrics and decision-trace events.
    Trace,
}

impl Mode {
    /// Parses a `RAC_OBS` value (unknown values fall back to
    /// [`Mode::Metrics`], the default).
    pub fn parse(value: &str) -> Mode {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "none" => Mode::Off,
            "trace" | "full" => Mode::Trace,
            _ => Mode::Metrics,
        }
    }
}

/// The process-wide mode, read from `RAC_OBS` on first use and cached.
pub fn mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var(ENV) {
        Ok(v) => Mode::parse(&v),
        Err(_) => Mode::Metrics,
    })
}

/// `true` unless `RAC_OBS=off`: metrics instrumentation should record.
pub fn enabled() -> bool {
    mode() != Mode::Off
}

/// `true` only under `RAC_OBS=trace`: harnesses should install trace
/// scopes and write JSONL artifacts.
pub fn tracing_enabled() -> bool {
    mode() == Mode::Trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse("off"), Mode::Off);
        assert_eq!(Mode::parse("0"), Mode::Off);
        assert_eq!(Mode::parse("FALSE"), Mode::Off);
        assert_eq!(Mode::parse("none"), Mode::Off);
        assert_eq!(Mode::parse("trace"), Mode::Trace);
        assert_eq!(Mode::parse("FULL"), Mode::Trace);
        assert_eq!(Mode::parse("metrics"), Mode::Metrics);
        assert_eq!(Mode::parse("on"), Mode::Metrics);
        assert_eq!(Mode::parse("anything-else"), Mode::Metrics);
        assert_eq!(Mode::parse("  trace  "), Mode::Trace);
    }

    #[test]
    fn mode_is_cached_and_consistent() {
        // Whatever the harness env says, the three predicates agree.
        let m = mode();
        assert_eq!(enabled(), m != Mode::Off);
        assert_eq!(tracing_enabled(), m == Mode::Trace);
        assert_eq!(mode(), m, "mode must be stable across calls");
    }
}
