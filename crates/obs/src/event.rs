//! Structured trace events and their canonical JSONL form.
//!
//! Every event serializes to exactly one JSON object per line with a
//! **stable field order**: the envelope keys `run`, `t_us`, `seq`,
//! `kind` first, then payload fields in emission order. Serialization
//! is deterministic — floats use Rust's shortest-round-trip `Display`,
//! non-finite floats become the strings `"Infinity"`, `"-Infinity"`,
//! `"NaN"` — so two traces of the same run are byte-identical, and
//! `emit → parse → re-emit` reproduces the input bytes exactly.

use std::fmt::{self, Write as _};

/// A payload value. The subset of JSON the trace schema needs: no
/// nested objects or arrays, by design — flat events stay greppable,
/// diffable, and trivially parseable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (non-negative integers parse as [`Value::U64`]).
    I64(i64),
    /// Finite float (non-finite floats serialize as strings).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (also carries non-finite floats: `"Infinity"` etc.).
    Str(String),
}

impl Value {
    /// Numeric coercion: integers and floats as `f64`, plus the
    /// non-finite string spellings this module emits.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(_) => None,
            Value::Str(s) => match s.as_str() {
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                "NaN" => Some(f64::NAN),
                _ => None,
            },
        }
    }

    /// Integer coercion.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // Normalize -0.0 so re-parsing (which reads "-0" as
                    // an integer) round-trips byte-identically.
                    let v = if *v == 0.0 { 0.0 } else { *v };
                    let _ = write!(out, "{v}");
                } else if v.is_nan() {
                    out.push_str("\"NaN\"");
                } else if *v > 0.0 {
                    out.push_str("\"Infinity\"");
                } else {
                    out.push_str("\"-Infinity\"");
                }
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => write_json_string(s, out),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v)
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One trace event: an envelope (`run`, `t_us`, `seq`, `kind`) plus an
/// ordered list of payload fields.
///
/// # Example
///
/// ```
/// use obs::event::Event;
///
/// let e = Event::new("decision").field("iter", 3u64).field("rt_ms", 812.5);
/// assert_eq!(
///     e.to_json(),
///     r#"{"run":0,"t_us":0,"seq":0,"kind":"decision","iter":3,"rt_ms":812.5}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Experiment-run index within the trace (0 before any run starts).
    pub run: u64,
    /// Simulated-time stamp, microseconds since run start.
    pub t_us: u64,
    /// Emission sequence number, assigned by the writer.
    pub seq: u64,
    /// Event kind (`"decision"`, `"iteration"`, `"runner_batch"`, …).
    pub kind: String,
    /// Payload fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Creates an event of `kind`, stamped with the current thread's
    /// trace clock (run index and sim-time; see [`crate::trace`]).
    pub fn new(kind: &str) -> Self {
        Event {
            run: crate::trace::current_run(),
            t_us: crate::trace::sim_time_us(),
            seq: 0,
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// Overrides the simulated-time stamp.
    pub fn at_us(mut self, t_us: u64) -> Self {
        self.t_us = t_us;
        self
    }

    /// Appends a payload field (order is preserved into the JSON).
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.fields.push((name.to_string(), value.into()));
        self
    }

    /// Looks up a payload field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The canonical single-line JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        let _ = write!(
            out,
            "{{\"run\":{},\"t_us\":{},\"seq\":{},\"kind\":",
            self.run, self.t_us, self.seq
        );
        write_json_string(&self.kind, &mut out);
        for (name, value) in &self.fields {
            out.push(',');
            write_json_string(name, &mut out);
            out.push(':');
            value.write_json(&mut out);
        }
        out.push('}');
        out
    }

    /// The trace sort key: runs are sequential, sim-time orders within
    /// a run, the emission sequence breaks sim-time ties.
    pub fn sort_key(&self) -> (u64, u64, u64) {
        (self.run, self.t_us, self.seq)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure within the line.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one canonical JSONL trace line back into an [`Event`].
///
/// Strict by design: the line must be a flat JSON object whose first
/// four keys are `run`, `t_us`, `seq`, `kind` (the envelope), with no
/// nested values and nothing after the closing brace. This is the
/// schema check the `inspect_trace` tool and CI rely on.
pub fn parse_line(line: &str) -> Result<Event, ParseError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        at: 0,
    };
    p.expect(b'{')?;
    let run = p.envelope_u64("run")?;
    p.expect(b',')?;
    let t_us = p.envelope_u64("t_us")?;
    p.expect(b',')?;
    let seq = p.envelope_u64("seq")?;
    p.expect(b',')?;
    let kind_key = p.parse_string()?;
    if kind_key != "kind" {
        return Err(p.err(format!(
            "expected envelope key \"kind\", got \"{kind_key}\""
        )));
    }
    p.expect(b':')?;
    let kind = p.parse_string()?;

    let mut fields = Vec::new();
    loop {
        match p.peek() {
            Some(b'}') => {
                p.at += 1;
                break;
            }
            Some(b',') => {
                p.at += 1;
                let name = p.parse_string()?;
                p.expect(b':')?;
                let value = p.parse_value()?;
                fields.push((name, value));
            }
            _ => return Err(p.err("expected ',' or '}'".to_string())),
        }
    }
    if p.at != p.bytes.len() {
        return Err(p.err("trailing bytes after event object".to_string()));
    }
    Ok(Event {
        run,
        t_us,
        seq,
        kind,
        fields,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: String) -> ParseError {
        ParseError {
            at: self.at,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn envelope_u64(&mut self, key: &str) -> Result<u64, ParseError> {
        let name = self.parse_string()?;
        if name != key {
            return Err(self.err(format!("expected envelope key \"{key}\", got \"{name}\"")));
        }
        self.expect(b':')?;
        match self.parse_value()? {
            Value::U64(v) => Ok(v),
            other => Err(self.err(format!(
                "envelope key \"{key}\" must be a non-negative integer, got {other:?}"
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string".to_string())),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.at + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape".to_string()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.at + 1..self.at + 5])
                                .map_err(|_| self.err("non-UTF-8 \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint".to_string()))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(self.err("unknown escape".to_string())),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b'{') | Some(b'[') => {
                Err(self.err("nested values are outside the trace schema".to_string()))
            }
            _ => Err(self.err("expected a value".to_string())),
        }
    }

    fn parse_literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_first_then_fields_in_order() {
        let e = Event::new("k").at_us(42).field("b", 1u64).field("a", 2u64);
        assert_eq!(
            e.to_json(),
            r#"{"run":0,"t_us":42,"seq":0,"kind":"k","b":1,"a":2}"#
        );
    }

    #[test]
    fn floats_serialize_shortest_and_specials_as_strings() {
        let e = Event::new("f")
            .field("half", 0.5)
            .field("whole", 2.0)
            .field("zero", -0.0)
            .field("inf", f64::INFINITY)
            .field("ninf", f64::NEG_INFINITY)
            .field("nan", f64::NAN);
        let json = e.to_json();
        assert!(json.contains("\"half\":0.5"), "{json}");
        assert!(json.contains("\"whole\":2"), "{json}");
        assert!(json.contains("\"zero\":0"), "{json}");
        assert!(json.contains("\"inf\":\"Infinity\""), "{json}");
        assert!(json.contains("\"ninf\":\"-Infinity\""), "{json}");
        assert!(json.contains("\"nan\":\"NaN\""), "{json}");
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let e = Event::new("decision")
            .at_us(600_000_000)
            .field("iter", 17u64)
            .field("rt_ms", 812.53125)
            .field("reward", -0.25)
            .field("action", "Increase(MaxClients)")
            .field("quote", "a\"b\\c\nd")
            .field("switched", true)
            .field("inf", f64::INFINITY);
        let json = e.to_json();
        let parsed = parse_line(&json).unwrap();
        assert_eq!(parsed.to_json(), json);
        assert_eq!(parsed.t_us, 600_000_000);
        assert_eq!(parsed.get("iter").unwrap().as_u64(), Some(17));
        assert_eq!(parsed.get("rt_ms").unwrap().as_f64(), Some(812.53125));
        assert_eq!(parsed.get("inf").unwrap().as_f64(), Some(f64::INFINITY));
        assert_eq!(parsed.get("quote").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(parsed.get("switched").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn negative_integers_round_trip() {
        let e = Event::new("n").field("delta", -42i64);
        let json = e.to_json();
        assert!(json.contains("\"delta\":-42"));
        assert_eq!(parse_line(&json).unwrap().to_json(), json);
    }

    #[test]
    fn parser_rejects_schema_violations() {
        // Wrong envelope order.
        assert!(parse_line(r#"{"t_us":0,"run":0,"seq":0,"kind":"x"}"#).is_err());
        // Missing envelope.
        assert!(parse_line(r#"{"kind":"x"}"#).is_err());
        // Nested values.
        assert!(parse_line(r#"{"run":0,"t_us":0,"seq":0,"kind":"x","o":{"a":1}}"#).is_err());
        // Trailing garbage.
        assert!(parse_line(r#"{"run":0,"t_us":0,"seq":0,"kind":"x"} extra"#).is_err());
        // Not an object.
        assert!(parse_line("[1,2]").is_err());
        // Unterminated string.
        assert!(parse_line(r#"{"run":0,"t_us":0,"seq":0,"kind":"x"#).is_err());
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse_line(r#"{"run":0,"t_us":0,"seq":0,"kind":"x","bad":@}"#).unwrap_err();
        assert!(err.at > 0);
        assert!(err.to_string().contains("expected a value"));
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert_eq!(Value::I64(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::Str("Infinity".into()).as_f64(), Some(f64::INFINITY));
        assert!(Value::Str("NaN".into()).as_f64().unwrap().is_nan());
        assert_eq!(Value::Str("hello".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
    }
}
