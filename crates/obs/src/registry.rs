//! The metrics registry: named counters, gauges and duration
//! histograms.
//!
//! Handles are `Arc`-shared atomics — the increment path is a single
//! atomic RMW with no lock. The registry's mutex is taken only to
//! register a new name or to snapshot, so hot loops should resolve
//! their handles once (e.g. in a `OnceLock`-initialized struct) and
//! increment thereafter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets in a histogram (covers sub-µs to
/// ~584 000 years in microseconds).
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[i]` counts values `v` with `2^(i-1) ≤ v < 2^i` (µs);
    /// bucket 0 counts `v < 1`.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// A duration histogram over power-of-two microsecond buckets: cheap
/// to record (two atomic adds and an increment), precise enough for
/// the percentile summaries the exporters print.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records a duration in microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        let bucket = (u64::BITS - us.leading_zeros()) as usize; // 0 for us == 0
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records a duration in (fractional) milliseconds; negative and
    /// non-finite values are ignored.
    #[inline]
    pub fn record_ms(&self, ms: f64) {
        if ms.is_finite() && ms >= 0.0 {
            self.record_us((ms * 1_000.0) as u64);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values, milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.0.sum_us.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Upper-bound estimate of the `q`-quantile (0 ≤ q ≤ 1) in
    /// milliseconds: the upper edge of the bucket containing it.
    /// `None` when empty.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let upper_us = if i >= 63 { u64::MAX } else { 1u64 << i };
                return Some(upper_us as f64 / 1_000.0);
            }
        }
        None
    }

    /// Per-bucket `(upper_edge_us, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    Some((if i >= 63 { u64::MAX } else { 1u64 << i }, n))
                }
            })
            .collect()
    }
}

/// A snapshot of one metric, for the exporters.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter {
        /// Metric name.
        name: String,
        /// Cumulative count.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: i64,
    },
    /// Histogram summary.
    Histogram {
        /// Metric name.
        name: String,
        /// Number of recorded values.
        count: u64,
        /// Sum of recorded values (ms).
        sum_ms: f64,
        /// Estimated median (ms).
        p50_ms: f64,
        /// Estimated 95th percentile (ms).
        p95_ms: f64,
        /// Cumulative `(upper_edge_us, count)` buckets (non-empty only).
        buckets: Vec<(u64, u64)>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. } => name,
            MetricSnapshot::Gauge { name, .. } => name,
            MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Most code uses the process-wide
/// [`Registry::global`]; tests construct private registries.
///
/// # Example
///
/// ```
/// use obs::Registry;
///
/// let r = Registry::new();
/// let jobs = r.counter("rac_runner_jobs_total");
/// jobs.add(3);
/// assert_eq!(r.counter("rac_runner_jobs_total").get(), 3); // same handle
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => MetricSnapshot::Counter {
                    name: name.clone(),
                    value: c.get(),
                },
                Metric::Gauge(g) => MetricSnapshot::Gauge {
                    name: name.clone(),
                    value: g.get(),
                },
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    name: name.clone(),
                    count: h.count(),
                    sum_ms: h.sum_ms(),
                    p50_ms: h.quantile_ms(0.50).unwrap_or(0.0),
                    p95_ms: h.quantile_ms(0.95).unwrap_or(0.0),
                    buckets: h.buckets(),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("depth").get(), 7);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::default();
        assert!(h.quantile_ms(0.5).is_none());
        for _ in 0..95 {
            h.record_ms(1.0); // 1000 µs → bucket upper edge 1024 µs
        }
        for _ in 0..5 {
            h.record_ms(1_000.0); // 1 000 000 µs
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum_ms() - (95.0 + 5_000.0)).abs() < 1.0);
        let p50 = h.quantile_ms(0.5).unwrap();
        assert!((1.0..2.1).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ms(0.99).unwrap();
        assert!(p99 >= 1_000.0, "p99 = {p99}");
    }

    #[test]
    fn histogram_ignores_junk() {
        let h = Histogram::default();
        h.record_ms(f64::NAN);
        h.record_ms(f64::INFINITY);
        h.record_ms(-5.0);
        assert_eq!(h.count(), 0);
        h.record_us(0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b_counter").add(5);
        r.gauge("a_gauge").set(-2);
        r.histogram("c_hist").record_ms(10.0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(MetricSnapshot::name).collect();
        assert_eq!(names, vec!["a_gauge", "b_counter", "c_hist"]);
        match &snap[1] {
            MetricSnapshot::Counter { value, .. } => assert_eq!(*value, 5),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_collision_panics() {
        let r = Registry::new();
        r.gauge("m");
        r.counter("m");
    }
}
