//! Hierarchical self-profiler: a thread-local span *stack* aggregated
//! into a global call tree.
//!
//! [`Span`](crate::Span)s already record flat duration histograms; when
//! profiling is switched on (see [`set_enabled`]) each global-registry
//! span additionally pushes a frame onto a thread-local stack. On drop
//! the frame folds its wall-clock time into a process-wide tree keyed
//! by the semicolon-joined name path (`tuner;sweep`), tracking entry
//! count, total time, and *self* time (total minus time attributed to
//! child frames).
//!
//! The tree exports directly as flamegraph-compatible **folded
//! stacks** — one line per path, `frame;frame;frame <self-µs>` — via
//! [`folded`], ready for `inferno` / `flamegraph.pl` or the
//! `/profile` endpoint of [`crate::serve`].
//!
//! Profiling is wall-clock sampling and therefore inherently
//! non-deterministic; like every span it feeds metrics/profiles only,
//! never the decision trace. It defaults to **off** so instrumented
//! code paths cost one relaxed atomic load when unused.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Aggregated statistics for one call-tree node (one unique name path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Number of spans that completed at this exact path.
    pub count: u64,
    /// Total wall-clock µs spent inside spans at this path.
    pub total_us: u64,
    /// µs at this path not attributed to child spans (`total - children`).
    pub self_us: u64,
}

/// A pending stack frame; completed frames fold into the global tree.
struct Frame {
    /// Semicolon-joined path from the thread's root span to this one.
    path: String,
    /// Wall-clock µs already attributed to completed child frames.
    child_us: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn tree() -> &'static Mutex<BTreeMap<String, NodeStats>> {
    static TREE: OnceLock<Mutex<BTreeMap<String, NodeStats>>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Switches call-tree capture on or off process-wide. Spans started
/// while disabled never join the tree, even if it is enabled before
/// they drop.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when spans are currently feeding the call tree.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the aggregated tree (the per-thread stacks of live spans are
/// untouched — frames still open keep their paths).
pub fn reset() {
    tree().lock().unwrap().clear();
}

/// Pushes a frame for `name` onto the current thread's stack and
/// returns its depth token, or `None` when profiling is disabled.
/// Called by [`crate::Span::start`]; pair with [`exit_frame`].
pub(crate) fn enter_frame(name: &str) -> Option<usize> {
    if !enabled() {
        return None;
    }
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{};{}", parent.path, name),
            None => name.to_string(),
        };
        stack.push(Frame { path, child_us: 0 });
        Some(stack.len() - 1)
    })
}

/// Completes the frame identified by `depth`, folding `elapsed_us`
/// into the tree and crediting it to the parent frame's child time.
///
/// Drops normally unwind LIFO, but a span moved across scopes (or
/// leaked) can drop out of order; any frames stacked *above* the one
/// being closed are discarded rather than misattributed, and a token
/// pointing past the live stack is ignored.
pub(crate) fn exit_frame(depth: usize, elapsed_us: u64) {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if depth >= stack.len() {
            return;
        }
        stack.truncate(depth + 1);
        let frame = stack.pop().expect("depth < len implies non-empty");
        let self_us = elapsed_us.saturating_sub(frame.child_us);
        if let Some(parent) = stack.last_mut() {
            parent.child_us = parent.child_us.saturating_add(elapsed_us);
        }
        let mut tree = tree().lock().unwrap();
        let node = tree.entry(frame.path).or_default();
        node.count += 1;
        node.total_us = node.total_us.saturating_add(elapsed_us);
        node.self_us = node.self_us.saturating_add(self_us);
    });
}

/// A copy of the aggregated call tree, sorted by name path.
pub fn snapshot() -> Vec<(String, NodeStats)> {
    tree()
        .lock()
        .unwrap()
        .iter()
        .map(|(path, stats)| (path.clone(), *stats))
        .collect()
}

/// The tree rendered as flamegraph folded stacks: one
/// `frame;frame <self-µs>` line per path, sorted by path. Nodes whose
/// entire time is attributed to children still appear (with value 0)
/// so the hierarchy stays visible to downstream tools.
pub fn folded() -> String {
    let mut out = String::new();
    for (path, stats) in snapshot() {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&stats.self_us.to_string());
        out.push('\n');
    }
    out
}

/// Depth of the current thread's live span stack (test hook).
#[cfg(test)]
pub(crate) fn stack_depth() -> usize {
    STACK.with(|stack| stack.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, MutexGuard};

    /// The tree and the enable flag are process-global; serialize the
    /// tests that touch them.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn stats_for(path: &str) -> NodeStats {
        snapshot()
            .into_iter()
            .find(|(p, _)| p == path)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("missing node {path}"))
    }

    #[test]
    fn nested_frames_build_paths_and_split_self_time() {
        let _g = guard();
        reset();
        set_enabled(true);
        let outer = enter_frame("outer").unwrap();
        let inner = enter_frame("inner").unwrap();
        exit_frame(inner, 300);
        exit_frame(outer, 1_000);
        set_enabled(false);

        let outer = stats_for("outer");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_us, 1_000);
        assert_eq!(outer.self_us, 700, "child time subtracted from self");
        let inner = stats_for("outer;inner");
        assert_eq!(inner.total_us, 300);
        assert_eq!(inner.self_us, 300);
        assert_eq!(stack_depth(), 0);
    }

    #[test]
    fn siblings_share_a_path_and_accumulate() {
        let _g = guard();
        reset();
        set_enabled(true);
        let root = enter_frame("root").unwrap();
        for _ in 0..3 {
            let child = enter_frame("step").unwrap();
            exit_frame(child, 100);
        }
        exit_frame(root, 500);
        set_enabled(false);

        let step = stats_for("root;step");
        assert_eq!(step.count, 3);
        assert_eq!(step.total_us, 300);
        let root = stats_for("root");
        assert_eq!(root.self_us, 200);
    }

    #[test]
    fn out_of_order_drop_discards_orphans_instead_of_misattributing() {
        let _g = guard();
        reset();
        set_enabled(true);
        let outer = enter_frame("outer").unwrap();
        let _leaked = enter_frame("leaked").unwrap();
        // Closing `outer` while `leaked` is still open must not credit
        // the leaked frame anywhere; the stale token is then ignored.
        exit_frame(outer, 400);
        exit_frame(5, 999); // token past the live stack: no-op
        set_enabled(false);

        assert_eq!(stats_for("outer").self_us, 400);
        assert!(snapshot().iter().all(|(p, _)| !p.contains("leaked")));
        assert_eq!(stack_depth(), 0);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = guard();
        reset();
        set_enabled(false);
        assert!(enter_frame("ghost").is_none());
        exit_frame(0, 123);
        assert!(snapshot().iter().all(|(p, _)| !p.contains("ghost")));
    }

    #[test]
    fn folded_output_is_sorted_and_self_valued() {
        let _g = guard();
        reset();
        set_enabled(true);
        let b = enter_frame("bb").unwrap();
        exit_frame(b, 50);
        let a = enter_frame("aa").unwrap();
        let c = enter_frame("cc").unwrap();
        exit_frame(c, 10);
        exit_frame(a, 40);
        set_enabled(false);

        let folded = folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["aa 30", "aa;cc 10", "bb 50"]);
    }

    #[test]
    fn self_never_exceeds_total_and_children_fit_parent() {
        let _g = guard();
        reset();
        set_enabled(true);
        // A randomized-ish nesting shape with fixed durations.
        let r = enter_frame("r").unwrap();
        for i in 0..4 {
            let mid = enter_frame("mid").unwrap();
            if i % 2 == 0 {
                let leaf = enter_frame("leaf").unwrap();
                exit_frame(leaf, 7);
            }
            exit_frame(mid, 25);
        }
        exit_frame(r, 120);
        set_enabled(false);

        let nodes = snapshot();
        for (_, s) in &nodes {
            assert!(s.self_us <= s.total_us, "self must never exceed total");
        }
        // children's total fits inside the parent's total
        let parent = stats_for("r");
        let children: u64 = nodes
            .iter()
            .filter(|(p, _)| p.starts_with("r;") && p.matches(';').count() == 1)
            .map(|(_, s)| s.total_us)
            .sum();
        assert!(children <= parent.total_us);
        assert_eq!(parent.self_us, parent.total_us - children);
    }
}
