//! Zero-dependency embedded observability server.
//!
//! [`ObsServer::start`] binds a std [`TcpListener`] and answers
//! minimal HTTP/1.0 `GET` requests on a background thread:
//!
//! | path       | body                                                    |
//! |------------|---------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of the global registry       |
//! | `/healthz` | JSON run state from [`crate::health`]                   |
//! | `/profile` | current folded-stack dump from [`crate::profile`]       |
//!
//! Every response closes the connection (`Connection: close`), so any
//! HTTP client — `curl`, Prometheus itself, a browser — works without
//! keep-alive handling. The server reads live snapshots on each
//! request; it never buffers or caches, so a scrape mid-run sees the
//! registry as of that instant.
//!
//! Serving is read-only over metrics/health/profile state. None of
//! those feed the decision trace, so running with or without a server
//! cannot change CSV/trace/checkpoint bytes.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::Registry;
use crate::{export, health, profile};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection *overall* IO deadline; a stalled or trickling client
/// cannot wedge the accept loop for longer than this. This bounds the
/// whole connection, not each read: a client feeding one byte per read
/// timeout would otherwise keep the single-threaded server busy
/// forever.
const IO_TIMEOUT: Duration = Duration::from_millis(500);
/// Upper bound on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Handle to a running observability server; dropping it stops the
/// background thread.
#[derive(Debug)]
pub struct ObsServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9898`, or port `0` to let the OS
    /// pick) and starts serving on a background thread.
    pub fn start(addr: &str) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-serve".into())
            .spawn(move || accept_loop(listener, &stop_flag))?;
        Ok(ObsServer {
            local,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves port `0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Served inline: responses are tiny and the snapshot
                // renders are cheap, so one connection at a time keeps
                // the server single-threaded and unkillable by load.
                let _ = handle_connection(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> io::Result<()> {
    // Timeouts are armed before the request line is touched, and every
    // read below re-arms against the remaining budget of one overall
    // deadline started here.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let deadline = Instant::now() + IO_TIMEOUT;
    let head = read_request_head(&mut stream, deadline)?;
    let (status, reason, content_type, body) = match parse_get_path(&head) {
        Some(path) => respond(&path),
        None => (
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads until the end of the request head (`\r\n\r\n`), the size cap,
/// or `deadline` — whichever comes first. The read timeout shrinks to
/// the remaining budget before every read, so a client trickling bytes
/// just under the per-read timeout still gets cut off at the deadline.
fn read_request_head(stream: &mut TcpStream, deadline: Instant) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        stream.set_read_timeout(Some(remaining))?;
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() >= MAX_REQUEST_BYTES || buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Extracts the path of a `GET <path> ...` request line, if that is
/// what arrived.
fn parse_get_path(head: &str) -> Option<String> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    Some(parts.next()?.to_string())
}

/// Routes a request path to `(status, reason, content-type, body)`.
/// Split out from the socket plumbing so tests can exercise routing
/// without a live listener.
fn respond(path: &str) -> (u16, &'static str, &'static str, String) {
    // Ignore any query string: `/metrics?x=1` still scrapes.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            export::render_prometheus(&Registry::global().snapshot()),
        ),
        "/healthz" => (
            200,
            "OK",
            "application/json; charset=utf-8",
            health::global().render_json(),
        ),
        "/profile" => (200, "OK", "text/plain; charset=utf-8", profile::folded()),
        _ => (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /healthz or /profile\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_over_real_sockets() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr();
        Registry::global().counter("rac_serve_test_total").inc();
        health::global().begin_job("serve-test");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(head.contains("Content-Length:"));
        assert!(body.contains("rac_serve_test_total"));
        export::validate_prometheus(&body).expect("served metrics must be valid exposition");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"));
        assert!(head.contains("application/json"));
        assert!(body.contains("\"state\":"));

        let (head, _body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.0 200"));

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"));
        assert!(body.contains("not found"));

        // Query strings are tolerated.
        let (head, _) = get(addr, "/metrics?scrape=1");
        assert!(head.starts_with("HTTP/1.0 200"));
    }

    #[test]
    fn malformed_request_gets_an_error_reply() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind loopback");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"\x00\x01 utter garbage, not http\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "got: {raw}");
        // The server must still be alive for the next client.
        let (head, _) = get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"));
    }

    #[test]
    fn slow_client_cannot_stall_a_scrape() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr();
        // A slow-loris client: dribbles one byte at a time, never
        // finishing the request head. Each byte lands well inside the
        // per-read timeout, so only the overall connection deadline can
        // get rid of it.
        let loris = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            for _ in 0..30 {
                if stream.write_all(b"G").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        // Give the loris time to be accepted first.
        std::thread::sleep(Duration::from_millis(150));
        let start = Instant::now();
        let (head, _) = get(addr, "/healthz");
        let waited = start.elapsed();
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(
            waited < Duration::from_secs(2),
            "scrape stalled {waited:?} behind a slow client"
        );
        loris.join().unwrap();
    }

    #[test]
    fn rejects_non_get_methods() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind loopback");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"));
    }

    #[test]
    fn drop_stops_the_listener() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr();
        drop(server);
        // The port must be re-bindable once the thread has joined.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "listener still holding {addr} after drop");
    }

    #[test]
    fn routing_without_sockets() {
        let (status, _, _, _) = respond("/healthz");
        assert_eq!(status, 200);
        let (status, _, _, body) = respond("/other");
        assert_eq!(status, 404);
        assert!(body.contains("/metrics"));
    }
}
