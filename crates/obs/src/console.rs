//! A `--quiet`-able console exporter for human-readable progress
//! output.
//!
//! Binaries route their progress and timing chatter through a
//! [`Console`] so `--quiet` (or `RAC_OBS=off` via
//! [`Console::from_env`]) silences it without touching the actual
//! deliverable output (report tables on stdout, CSV/JSONL artifacts on
//! disk). Notes go to **stderr**, keeping stdout machine-consumable.

/// Human-readable progress output with a quiet switch.
///
/// # Example
///
/// ```
/// use obs::Console;
///
/// let console = Console::new(true); // quiet
/// console.note("this line is suppressed");
/// assert!(console.is_quiet());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Console {
    quiet: bool,
}

impl Console {
    /// A console; `quiet` suppresses all notes.
    pub fn new(quiet: bool) -> Self {
        Console { quiet }
    }

    /// A console that is quiet when `quiet` is requested **or** when
    /// observability is fully disabled (`RAC_OBS=off`).
    pub fn from_env(quiet: bool) -> Self {
        Console {
            quiet: quiet || !crate::enabled(),
        }
    }

    /// `true` when notes are suppressed.
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Writes one progress line to stderr (suppressed when quiet).
    pub fn note(&self, message: impl AsRef<str>) {
        if !self.quiet {
            eprintln!("{}", message.as_ref());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_is_respected() {
        assert!(Console::new(true).is_quiet());
        assert!(!Console::new(false).is_quiet());
        // from_env never un-quiets an explicit --quiet.
        assert!(Console::from_env(true).is_quiet());
    }
}
