//! Wall-clock spans for coarse stages (figure jobs, offline training,
//! measurement batches).
//!
//! A span records its duration into a registry histogram named
//! `rac_span_ms_<name>` when it drops, and counts entries in
//! `rac_span_total_<name>`. Wall-clock readings are inherently
//! non-deterministic, so spans feed the **metrics** side only — never
//! the decision trace (see [`crate::trace`] for why).
//!
//! When the hierarchical profiler is enabled ([`crate::profile`]),
//! global-registry spans additionally stack into a per-thread call
//! tree, attributing wall time to `parent;child` name paths.

use std::time::Instant;

use crate::registry::Registry;

/// An RAII wall-clock timer tied to a registry histogram.
///
/// # Example
///
/// ```
/// use obs::{Registry, Span};
///
/// let r = Registry::new();
/// {
///     let _span = Span::start_in(&r, "stage");
///     // ... timed work ...
/// }
/// assert_eq!(r.histogram("rac_span_ms_stage").count(), 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    name: &'static str,
    started: Instant,
    registry: &'a Registry,
    /// Disabled spans still measure (callers may read `elapsed_ms`) but
    /// record nothing on drop.
    record: bool,
    /// Depth token of this span's frame in the thread-local profiler
    /// stack, when profiling captured it at start.
    frame: Option<usize>,
}

impl Span<'static> {
    /// Starts a span against the global registry, recording only when
    /// observability is [enabled](crate::enabled). Joins the profiler
    /// call tree when [`crate::profile`] capture is on.
    pub fn start(name: &'static str) -> Span<'static> {
        Span {
            name,
            started: Instant::now(),
            registry: Registry::global(),
            record: crate::enabled(),
            frame: crate::profile::enter_frame(name),
        }
    }
}

impl<'a> Span<'a> {
    /// Starts a span against an explicit registry (always records, and
    /// stays out of the global profiler tree).
    pub fn start_in(registry: &'a Registry, name: &'static str) -> Span<'a> {
        Span {
            name,
            started: Instant::now(),
            registry,
            record: true,
            frame: None,
        }
    }

    /// Milliseconds elapsed since the span started.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1_000.0
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(depth) = self.frame {
            crate::profile::exit_frame(depth, self.started.elapsed().as_micros() as u64);
        }
        if self.record {
            let elapsed = self.elapsed_ms();
            self.registry
                .histogram(&format!("rac_span_ms_{}", self.name))
                .record_ms(elapsed);
            self.registry
                .counter(&format!("rac_span_total_{}", self.name))
                .inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_private_registry() {
        let r = Registry::new();
        {
            let span = Span::start_in(&r, "unit");
            assert!(span.elapsed_ms() >= 0.0);
        }
        {
            let _again = Span::start_in(&r, "unit");
        }
        assert_eq!(r.histogram("rac_span_ms_unit").count(), 2);
        assert_eq!(r.counter("rac_span_total_unit").get(), 2);
    }
}
