//! The decision-trace pipeline: a buffering [`TraceWriter`] plus a
//! thread-local scope through which instrumented code emits events
//! without holding a writer reference.
//!
//! # Determinism contract
//!
//! A trace is deterministic when every event emitted into it is a pure
//! function of the traced computation: the writer assigns sequence
//! numbers in emission order, stamps events from the thread-local
//! simulated clock, and serializes sorted by `(run, t_us, seq)` with a
//! stable field order. A single-threaded traced computation (one figure
//! job, one experiment) therefore produces **byte-identical** JSONL
//! regardless of `RAC_THREADS`, host load, or wall-clock time — which
//! is why wall-clock durations live in the metrics registry
//! ([`crate::registry`]) and never in trace events.

use std::cell::{Cell, RefCell};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Buffers trace events and serializes them deterministically.
///
/// Writers are [`Sync`]: events may be emitted from any thread (each
/// gets a unique sequence number), though deterministic traces come
/// from single-threaded scopes — see the module docs.
#[derive(Debug, Default)]
pub struct TraceWriter {
    events: Mutex<Vec<Event>>,
    seq: AtomicU64,
}

impl TraceWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        TraceWriter::default()
    }

    /// Records an event, assigning it the next sequence number.
    pub fn emit(&self, mut event: Event) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.lock().unwrap().push(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// `true` when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered events, sorted by `(run, t_us, seq)`.
    pub fn events(&self) -> Vec<Event> {
        let mut events = self.events.lock().unwrap().clone();
        events.sort_by_key(Event::sort_key);
        events
    }

    /// The canonical JSONL serialization: one event per line, sorted by
    /// `(run, t_us, seq)`, with a trailing newline (empty string when
    /// no events were emitted).
    pub fn serialize(&self) -> String {
        let events = self.events();
        let mut out = String::new();
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Restores previously captured events, preserving their original
    /// sequence numbers, and bumps the writer's sequence counter past
    /// the highest restored one so new emissions keep sorting after
    /// their run/time peers. This is how a resumed run re-installs the
    /// trace prefix a checkpoint carried: `serialize()` of the restored
    /// prefix is byte-identical to the original writer's.
    pub fn restore_events(&self, events: Vec<Event>) {
        let max_seq = events.iter().map(|e| e.seq).max();
        self.events.lock().unwrap().extend(events);
        if let Some(max) = max_seq {
            self.seq.fetch_max(max + 1, Ordering::Relaxed);
        }
    }

    /// Writes the serialized trace to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.serialize().as_bytes())
    }
}

thread_local! {
    static SCOPE: RefCell<Vec<Arc<TraceWriter>>> = const { RefCell::new(Vec::new()) };
    static SIM_TIME_US: Cell<u64> = const { Cell::new(0) };
    static RUN: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` with `writer` installed as the current thread's trace
/// scope. Scopes nest; the innermost receives emissions. The sim clock
/// and run counter are saved and restored around `f`, so sibling
/// scopes on a reused worker thread start from a clean clock.
pub fn with_writer<R>(writer: &Arc<TraceWriter>, f: impl FnOnce() -> R) -> R {
    struct Guard {
        saved_time: u64,
        saved_run: u64,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
            SIM_TIME_US.with(|t| t.set(self.saved_time));
            RUN.with(|r| r.set(self.saved_run));
        }
    }
    let guard = Guard {
        saved_time: SIM_TIME_US.with(Cell::get),
        saved_run: RUN.with(Cell::get),
    };
    SCOPE.with(|s| s.borrow_mut().push(Arc::clone(writer)));
    SIM_TIME_US.with(|t| t.set(0));
    RUN.with(|r| r.set(0));
    let result = f();
    drop(guard);
    result
}

/// `true` when a trace scope is installed on this thread —
/// instrumented code uses this to skip event construction entirely
/// when nobody is listening.
pub fn scoped() -> bool {
    SCOPE.with(|s| !s.borrow().is_empty())
}

/// Emits the event built by `make` into the current scope, if any.
/// Without a scope this is a no-op and `make` is never called.
pub fn emit(make: impl FnOnce() -> Event) {
    let writer = SCOPE.with(|s| s.borrow().last().cloned());
    if let Some(writer) = writer {
        writer.emit(make());
    }
}

/// Sets the thread's simulated clock (microseconds since run start);
/// subsequent [`Event::new`] stamps use it.
pub fn set_sim_time_us(t_us: u64) {
    SIM_TIME_US.with(|t| t.set(t_us));
}

/// The thread's current simulated clock.
pub fn sim_time_us() -> u64 {
    SIM_TIME_US.with(Cell::get)
}

/// Starts a new run on this thread: increments the run counter, resets
/// the sim clock to zero, and returns the new run index. Experiment
/// harnesses call this once per tuning session so events from
/// back-to-back sessions in one scope sort as sequential runs instead
/// of interleaving by sim-time.
pub fn begin_run() -> u64 {
    let run = RUN.with(|r| {
        r.set(r.get() + 1);
        r.get()
    });
    set_sim_time_us(0);
    run
}

/// The thread's current run index (0 before the first [`begin_run`]).
pub fn current_run() -> u64 {
    RUN.with(Cell::get)
}

/// Sets the thread's run counter directly. Resumed runs use this to
/// continue from the run index a checkpoint recorded, so the next
/// [`begin_run`] picks up exactly where the interrupted process left
/// off.
pub fn set_run(run: u64) {
    RUN.with(|r| r.set(run));
}

/// Serializes the current scope's buffered trace, or `None` when no
/// scope is installed (tracing off). Checkpoint writers embed this
/// prefix so a resumed process can reproduce the full trace
/// byte-for-byte.
pub fn snapshot_serialized() -> Option<String> {
    SCOPE
        .with(|s| s.borrow().last().cloned())
        .map(|w| w.serialize())
}

/// Parses a serialized trace prefix back into the current scope's
/// writer, preserving sequence numbers (see
/// [`TraceWriter::restore_events`]). Returns the number of restored
/// events; without a scope this is a no-op returning 0.
///
/// # Errors
///
/// Returns the line's [`ParseError`](crate::event::ParseError) if the
/// prefix is not a valid trace serialization.
pub fn restore_serialized(text: &str) -> Result<usize, crate::event::ParseError> {
    let writer = SCOPE.with(|s| s.borrow().last().cloned());
    let Some(writer) = writer else {
        return Ok(0);
    };
    let mut events = Vec::new();
    for line in text.lines() {
        events.push(crate::event::parse_line(line)?);
    }
    let n = events.len();
    writer.restore_events(events);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscoped_emit_is_a_noop_and_builds_nothing() {
        let mut built = false;
        emit(|| {
            built = true;
            Event::new("never")
        });
        assert!(!built, "event closure must not run without a scope");
    }

    #[test]
    fn scoped_emissions_are_ordered_and_sequenced() {
        let w = Arc::new(TraceWriter::new());
        with_writer(&w, || {
            set_sim_time_us(100);
            emit(|| Event::new("b"));
            set_sim_time_us(50); // out of order on purpose
            emit(|| Event::new("a"));
        });
        let events = w.events();
        assert_eq!(events.len(), 2);
        // Sorted by sim-time despite emission order.
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[0].t_us, 50);
        assert_eq!(events[1].kind, "b");
        assert_eq!(events[1].seq, 0, "seq reflects emission order");
    }

    #[test]
    fn runs_partition_the_ordering() {
        let w = Arc::new(TraceWriter::new());
        with_writer(&w, || {
            assert_eq!(begin_run(), 1);
            set_sim_time_us(900);
            emit(|| Event::new("first-run-late"));
            assert_eq!(begin_run(), 2);
            assert_eq!(sim_time_us(), 0, "begin_run resets the clock");
            set_sim_time_us(10);
            emit(|| Event::new("second-run-early"));
        });
        let events = w.events();
        // Run 1's t=900 sorts before run 2's t=10.
        assert_eq!(events[0].kind, "first-run-late");
        assert_eq!(events[1].kind, "second-run-early");
        assert_eq!(events[0].run, 1);
        assert_eq!(events[1].run, 2);
    }

    #[test]
    fn scopes_nest_and_restore_clock() {
        let outer = Arc::new(TraceWriter::new());
        let inner = Arc::new(TraceWriter::new());
        with_writer(&outer, || {
            set_sim_time_us(77);
            begin_run();
            with_writer(&inner, || {
                assert_eq!(sim_time_us(), 0, "fresh scope, fresh clock");
                assert_eq!(current_run(), 0);
                emit(|| Event::new("inner"));
            });
            assert_eq!(sim_time_us(), 0, "begin_run had reset the clock");
            assert_eq!(current_run(), 1, "outer run restored");
            emit(|| Event::new("outer"));
        });
        assert_eq!(inner.events()[0].kind, "inner");
        assert_eq!(outer.events()[0].kind, "outer");
        assert!(!scoped());
    }

    #[test]
    fn serialize_is_jsonl_with_trailing_newline() {
        let w = Arc::new(TraceWriter::new());
        assert_eq!(w.serialize(), "");
        with_writer(&w, || {
            emit(|| Event::new("x").field("v", 1u64));
        });
        let text = w.serialize();
        assert!(text.ends_with('\n'));
        assert_eq!(text.lines().count(), 1);
        crate::event::parse_line(text.trim_end()).unwrap();
    }

    #[test]
    fn restore_round_trips_and_continues_sequencing() {
        let original = Arc::new(TraceWriter::new());
        with_writer(&original, || {
            begin_run();
            set_sim_time_us(10);
            emit(|| Event::new("a").field("v", 1u64));
            set_sim_time_us(20);
            emit(|| Event::new("b"));
        });
        let prefix = original.serialize();

        // A "new process": fresh writer, restore the prefix, continue.
        let resumed = Arc::new(TraceWriter::new());
        with_writer(&resumed, || {
            assert_eq!(restore_serialized(&prefix).unwrap(), 2);
            set_run(1);
            set_sim_time_us(30);
            emit(|| Event::new("c"));
        });
        let text = resumed.serialize();
        assert!(text.starts_with(&prefix), "prefix must be byte-identical");
        assert_eq!(text.lines().count(), 3);
        let events = resumed.events();
        assert_eq!(events[2].kind, "c");
        assert_eq!(events[2].seq, 2, "sequencing continues past the prefix");
        assert_eq!(events[2].run, 1);
    }

    #[test]
    fn restore_without_scope_is_noop() {
        assert_eq!(restore_serialized("").unwrap(), 0);
        assert_eq!(restore_serialized("not parsed without a scope").unwrap(), 0);
    }

    #[test]
    fn write_to_creates_directories() {
        let dir = std::env::temp_dir().join(format!("obs-trace-test-{}", std::process::id()));
        let path = dir.join("nested/trace.jsonl");
        let w = Arc::new(TraceWriter::new());
        with_writer(&w, || emit(|| Event::new("x")));
        w.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, w.serialize());
        let _ = std::fs::remove_dir_all(dir);
    }
}
