//! Exporters: Prometheus text exposition and CSV rendering of a
//! registry snapshot.

use std::fmt::Write as _;

use crate::registry::MetricSnapshot;

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms
/// as cumulative `_bucket{le="..."}` series (edges in milliseconds)
/// plus `_sum` and `_count`.
///
/// # Example
///
/// ```
/// use obs::Registry;
/// use obs::export::render_prometheus;
///
/// let r = Registry::new();
/// r.counter("rac_jobs_total").add(2);
/// let text = render_prometheus(&r.snapshot());
/// assert!(text.contains("rac_jobs_total 2"));
/// ```
pub fn render_prometheus(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for metric in snapshot {
        match metric {
            MetricSnapshot::Counter { name, value } => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Histogram {
                name,
                count,
                sum_ms,
                buckets,
                ..
            } => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for &(upper_us, n) in buckets {
                    cumulative += n;
                    let le = upper_us as f64 / 1_000.0;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{name}_sum {sum_ms}");
                let _ = writeln!(out, "{name}_count {count}");
            }
        }
    }
    out
}

/// Renders a snapshot as CSV: `name,kind,value,count,sum_ms,p50_ms,p95_ms`
/// (scalar metrics leave the histogram columns empty).
pub fn render_csv(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::from("name,kind,value,count,sum_ms,p50_ms,p95_ms\n");
    for metric in snapshot {
        match metric {
            MetricSnapshot::Counter { name, value } => {
                let _ = writeln!(out, "{name},counter,{value},,,,");
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = writeln!(out, "{name},gauge,{value},,,,");
            }
            MetricSnapshot::Histogram {
                name,
                count,
                sum_ms,
                p50_ms,
                p95_ms,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{name},histogram,,{count},{sum_ms:.3},{p50_ms:.3},{p95_ms:.3}"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("jobs_total").add(7);
        r.gauge("queue_depth").set(-1);
        let h = r.histogram("job_ms");
        h.record_ms(1.0);
        h.record_ms(1.5);
        h.record_ms(100.0);
        r
    }

    #[test]
    fn prometheus_format_shape() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE jobs_total counter"), "{text}");
        assert!(text.contains("jobs_total 7"), "{text}");
        assert!(text.contains("queue_depth -1"), "{text}");
        assert!(text.contains("# TYPE job_ms histogram"), "{text}");
        assert!(text.contains("job_ms_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("job_ms_count 3"), "{text}");
        // Buckets are cumulative: the last finite bucket holds all 3.
        let last_finite = text
            .lines()
            .rfind(|l| l.starts_with("job_ms_bucket") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 3"), "{last_finite}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let text = render_csv(&sample_registry().snapshot());
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "name,kind,value,count,sum_ms,p50_ms,p95_ms"
        );
        assert!(text.contains("jobs_total,counter,7,,,,"), "{text}");
        assert!(text.contains("queue_depth,gauge,-1,,,,"), "{text}");
        assert!(text.contains("job_ms,histogram,,3,"), "{text}");
    }
}
