//! Exporters: Prometheus text exposition and CSV rendering of a
//! registry snapshot.

use std::fmt::Write as _;

use crate::registry::MetricSnapshot;

/// Builds a labeled metric name, `name{key="value",...}`, suitable for
/// [`Registry`](crate::Registry) lookup: the registry stores series by
/// full name, so two label values are two independent series, and the
/// exporters group them back under one `# TYPE` family line.
///
/// Label values are escaped per the Prometheus text format (`\\`, `\"`,
/// `\n`), so arbitrary strings are safe.
///
/// # Example
///
/// ```
/// use obs::Registry;
///
/// let name = obs::export::labeled("rac_fleet_tenant_iterations", &[("tenant", "t007")]);
/// assert_eq!(name, "rac_fleet_tenant_iterations{tenant=\"t007\"}");
/// let r = Registry::new();
/// r.gauge(&name).set(24);
/// ```
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// The metric family of a (possibly labeled) series name — the part
/// before the label set, which is what `# TYPE` lines must carry.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms
/// as cumulative `_bucket{le="..."}` series (edges in milliseconds)
/// plus `_sum` and `_count`.
///
/// # Example
///
/// ```
/// use obs::Registry;
/// use obs::export::render_prometheus;
///
/// let r = Registry::new();
/// r.counter("rac_jobs_total").add(2);
/// let text = render_prometheus(&r.snapshot());
/// assert!(text.contains("rac_jobs_total 2"));
/// ```
pub fn render_prometheus(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    // Labeled series of one family are adjacent in the name-sorted
    // snapshot; emit the family's # TYPE line once, not per series.
    let mut last_family = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let fam = family(name);
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} {kind}");
            last_family = fam.to_string();
        }
    };
    for metric in snapshot {
        match metric {
            MetricSnapshot::Counter { name, value } => {
                type_line(&mut out, name, "counter");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                type_line(&mut out, name, "gauge");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Histogram {
                name,
                count,
                sum_ms,
                buckets,
                ..
            } => {
                type_line(&mut out, name, "histogram");
                let mut cumulative = 0u64;
                for &(upper_us, n) in buckets {
                    cumulative += n;
                    let le = upper_us as f64 / 1_000.0;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{name}_sum {sum_ms}");
                let _ = writeln!(out, "{name}_count {count}");
            }
        }
    }
    out
}

/// Renders a snapshot as CSV: `name,kind,value,count,sum_ms,p50_ms,p95_ms`
/// (scalar metrics leave the histogram columns empty).
pub fn render_csv(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::from("name,kind,value,count,sum_ms,p50_ms,p95_ms\n");
    for metric in snapshot {
        match metric {
            MetricSnapshot::Counter { name, value } => {
                let name = csv_field(name);
                let _ = writeln!(out, "{name},counter,{value},,,,");
            }
            MetricSnapshot::Gauge { name, value } => {
                let name = csv_field(name);
                let _ = writeln!(out, "{name},gauge,{value},,,,");
            }
            MetricSnapshot::Histogram {
                name,
                count,
                sum_ms,
                p50_ms,
                p95_ms,
                ..
            } => {
                let name = csv_field(name);
                let _ = writeln!(
                    out,
                    "{name},histogram,,{count},{sum_ms:.3},{p50_ms:.3},{p95_ms:.3}"
                );
            }
        }
    }
    out
}

/// RFC-4180 quoting for the name column: labeled series names carry
/// quotes (and, with several labels, commas), which would otherwise
/// shift the columns.
fn csv_field(name: &str) -> String {
    if name.contains(',') || name.contains('"') {
        format!("\"{}\"", name.replace('"', "\"\""))
    } else {
        name.to_string()
    }
}

/// Validates Prometheus text-exposition syntax line by line, returning
/// the first malformed line as `Err("line N: why")`.
///
/// The checker accepts the subset of the 0.0.4 format a scraper has to
/// parse: `# TYPE`/`# HELP` comments, and sample lines
/// `name[{label="value",...}] value [timestamp]` where the value is a
/// float or `+Inf`/`-Inf`/`NaN`. It backs the CI live-endpoint job and
/// the serve-route tests, so a formatting regression in
/// [`render_prometheus`] fails loudly instead of silently breaking
/// scrapes.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        validate_line(line).map_err(|why| format!("line {lineno}: {why} ({line:?})"))?;
    }
    Ok(())
}

fn validate_line(line: &str) -> Result<(), &'static str> {
    if line.is_empty() {
        return Err("empty line");
    }
    if let Some(comment) = line.strip_prefix('#') {
        let mut parts = comment.split_whitespace();
        match parts.next() {
            Some("TYPE") => {
                let name = parts.next().ok_or("# TYPE missing metric name")?;
                validate_metric_name(name)?;
                match parts.next() {
                    Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                    _ => return Err("# TYPE with unknown metric type"),
                }
                if parts.next().is_some() {
                    return Err("trailing tokens after # TYPE");
                }
            }
            Some("HELP") => {
                let name = parts.next().ok_or("# HELP missing metric name")?;
                validate_metric_name(name)?;
            }
            _ => return Err("comment is neither # TYPE nor # HELP"),
        }
        return Ok(());
    }
    // Sample line: name[{labels}] value [timestamp]
    let (name_and_labels, rest) = match line.find([' ', '{']) {
        Some(i) if line.as_bytes()[i] == b'{' => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < i {
                return Err("unterminated label set");
            }
            validate_labels(&line[i + 1..close])?;
            (&line[..i], line[close + 1..].trim_start())
        }
        Some(i) => (&line[..i], line[i + 1..].trim_start()),
        None => return Err("sample line without a value"),
    };
    validate_metric_name(name_and_labels)?;
    let mut fields = rest.split_whitespace();
    let value = fields.next().ok_or("sample line without a value")?;
    validate_sample_value(value)?;
    if let Some(ts) = fields.next() {
        ts.parse::<i64>().map_err(|_| "malformed timestamp")?;
    }
    if fields.next().is_some() {
        return Err("trailing tokens after sample value");
    }
    Ok(())
}

fn validate_metric_name(name: &str) -> Result<(), &'static str> {
    let mut chars = name.chars();
    let first = chars.next().ok_or("empty metric name")?;
    if !(first.is_ascii_alphabetic() || first == '_' || first == ':') {
        return Err("metric name must start with [a-zA-Z_:]");
    }
    if chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        Ok(())
    } else {
        Err("metric name contains invalid characters")
    }
}

fn validate_labels(labels: &str) -> Result<(), &'static str> {
    if labels.is_empty() {
        return Ok(());
    }
    // Split on commas outside quoted values.
    let mut rest = labels;
    loop {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        let mut chars = key.chars();
        let first = chars.next().ok_or("empty label name")?;
        if !(first.is_ascii_alphabetic() || first == '_')
            || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err("invalid label name");
        }
        let after_eq = &rest[eq + 1..];
        let mut bytes = after_eq.bytes().enumerate();
        match bytes.next() {
            Some((_, b'"')) => {}
            _ => return Err("label value must be double-quoted"),
        }
        let mut close = None;
        let mut escaped = false;
        for (i, b) in bytes {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or("unterminated label value")?;
        rest = &after_eq[close + 1..];
        match rest.strip_prefix(',') {
            Some(tail) => rest = tail,
            None => {
                return if rest.is_empty() {
                    Ok(())
                } else {
                    Err("junk between labels")
                }
            }
        }
    }
}

fn validate_sample_value(value: &str) -> Result<(), &'static str> {
    match value {
        "+Inf" | "-Inf" | "Inf" | "NaN" => Ok(()),
        v => v
            .parse::<f64>()
            .map(|_| ())
            .map_err(|_| "malformed sample value"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("jobs_total").add(7);
        r.gauge("queue_depth").set(-1);
        let h = r.histogram("job_ms");
        h.record_ms(1.0);
        h.record_ms(1.5);
        h.record_ms(100.0);
        r
    }

    #[test]
    fn prometheus_format_shape() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE jobs_total counter"), "{text}");
        assert!(text.contains("jobs_total 7"), "{text}");
        assert!(text.contains("queue_depth -1"), "{text}");
        assert!(text.contains("# TYPE job_ms histogram"), "{text}");
        assert!(text.contains("job_ms_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("job_ms_count 3"), "{text}");
        // Buckets are cumulative: the last finite bucket holds all 3.
        let last_finite = text
            .lines()
            .rfind(|l| l.starts_with("job_ms_bucket") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 3"), "{last_finite}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let text = render_csv(&sample_registry().snapshot());
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "name,kind,value,count,sum_ms,p50_ms,p95_ms"
        );
        assert!(text.contains("jobs_total,counter,7,,,,"), "{text}");
        assert!(text.contains("queue_depth,gauge,-1,,,,"), "{text}");
        assert!(text.contains("job_ms,histogram,,3,"), "{text}");
    }

    #[test]
    fn rendered_output_passes_the_validator() {
        let text = render_prometheus(&sample_registry().snapshot());
        validate_prometheus(&text).expect("our own exposition must validate");
    }

    #[test]
    fn validator_accepts_known_good_lines() {
        for line in [
            "# TYPE rac_jobs_total counter",
            "# HELP rac_jobs_total How many jobs ran.",
            "rac_jobs_total 7",
            "rac_latency_ms_bucket{le=\"+Inf\"} 3",
            "rac_latency_ms_bucket{le=\"0.5\",tier=\"db\"} 1",
            "rac_quoted{msg=\"a \\\"b\\\" c\"} 1",
            "rac_value -12.75",
            "rac_value 1e-3",
            "rac_value NaN",
            "rac_value 4 1712000000",
        ] {
            validate_prometheus(line).unwrap_or_else(|e| panic!("{line:?} rejected: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for (line, why) in [
            ("rac_ok 1\n\nrac_ok 2", "interior blank line"),
            ("# NOTE something", "unknown comment"),
            ("# TYPE rac_x rocket", "unknown type"),
            ("1bad_name 3", "bad name start"),
            ("rac_x", "missing value"),
            ("rac_x notanumber", "bad value"),
            ("rac_x{le=\"1\" 3", "unterminated labels"),
            ("rac_x{le=1} 3", "unquoted label value"),
            ("rac_x{=\"1\"} 3", "empty label name"),
            ("rac_x 3 extra junk", "trailing tokens"),
            ("rac_x 3 12.5", "non-integer timestamp"),
        ] {
            assert!(
                validate_prometheus(line).is_err(),
                "{line:?} should be rejected ({why})"
            );
        }
        // The error pinpoints the offending line.
        let err = validate_prometheus("rac_ok 1\nrac_bad oops\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    /// Satellite regression test: export ordering is a determinism
    /// surface. `Registry::snapshot()` must order metrics by name no
    /// matter the insertion order or which threads did the inserting,
    /// so `render_prometheus`/`render_csv` output is stable and
    /// byte-diffable across `RAC_THREADS` settings.
    #[test]
    fn export_ordering_is_name_sorted_and_insertion_independent() {
        let forward = Registry::new();
        for name in ["alpha_total", "beta_depth", "gamma_ms"] {
            touch(&forward, name);
        }
        let backward = Registry::new();
        for name in ["gamma_ms", "beta_depth", "alpha_total"] {
            touch(&backward, name);
        }
        let text_fwd = render_prometheus(&forward.snapshot());
        let text_bwd = render_prometheus(&backward.snapshot());
        assert_eq!(text_fwd, text_bwd, "insertion order leaked into export");
        assert_eq!(
            render_csv(&forward.snapshot()),
            render_csv(&backward.snapshot())
        );
        let names: Vec<String> = forward
            .snapshot()
            .iter()
            .map(|m| match m {
                MetricSnapshot::Counter { name, .. }
                | MetricSnapshot::Gauge { name, .. }
                | MetricSnapshot::Histogram { name, .. } => name.clone(),
            })
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
    }

    #[test]
    fn export_ordering_is_stable_under_concurrent_registration() {
        let registry = std::sync::Arc::new(Registry::new());
        let names: Vec<String> = (0..32).map(|i| format!("rac_conc_{i:02}_total")).collect();
        let mut handles = Vec::new();
        for chunk in names.chunks(8) {
            let registry = std::sync::Arc::clone(&registry);
            let chunk: Vec<String> = chunk.to_vec();
            handles.push(std::thread::spawn(move || {
                for name in &chunk {
                    registry.counter(name).inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let text = render_prometheus(&registry.snapshot());
        validate_prometheus(&text).unwrap();
        let seen: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split(' ').next().unwrap())
            .collect();
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "concurrent registration broke ordering");
        assert_eq!(seen.len(), names.len());
    }

    #[test]
    fn labeled_builds_and_escapes() {
        assert_eq!(labeled("rac_x", &[]), "rac_x");
        assert_eq!(
            labeled("rac_x", &[("tenant", "t007")]),
            "rac_x{tenant=\"t007\"}"
        );
        assert_eq!(
            labeled("rac_x", &[("a", "1"), ("b", "q\"uo\\te\nnl")]),
            "rac_x{a=\"1\",b=\"q\\\"uo\\\\te\\nnl\"}"
        );
    }

    #[test]
    fn labeled_series_share_one_type_line_and_validate() {
        let r = Registry::new();
        for tenant in ["t000", "t001", "t002"] {
            r.gauge(&labeled("rac_fleet_tenant_iters", &[("tenant", tenant)]))
                .set(7);
        }
        r.counter("rac_fleet_tenants_total").add(3);
        let text = render_prometheus(&r.snapshot());
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE rac_fleet_tenant_iters "))
            .collect();
        assert_eq!(
            type_lines,
            ["# TYPE rac_fleet_tenant_iters gauge"],
            "{text}"
        );
        assert!(
            text.contains("rac_fleet_tenant_iters{tenant=\"t001\"} 7"),
            "{text}"
        );
        validate_prometheus(&text).expect("labeled exposition must validate");
    }

    #[test]
    fn csv_quotes_labeled_names() {
        let r = Registry::new();
        r.gauge(&labeled("rac_x", &[("a", "1"), ("b", "2")])).set(5);
        let text = render_csv(&r.snapshot());
        assert!(
            text.contains("\"rac_x{a=\"\"1\"\",b=\"\"2\"\"}\",gauge,5,,,,"),
            "{text}"
        );
    }

    fn touch(r: &Registry, name: &str) {
        if name.ends_with("_total") {
            r.counter(name).inc();
        } else if name.ends_with("_depth") {
            r.gauge(name).set(1);
        } else {
            r.histogram(name).record_ms(1.0);
        }
    }
}
