//! Live run-state cell backing the `/healthz` endpoint.
//!
//! A single process-global [`Health`] value holds the coarse state of
//! the current run: which job is executing, how far along it is, and
//! whether the measurement channel's breaker is open / the agent is
//! degraded. Harnesses update it with plain atomic stores — no locks on
//! the hot path beyond the rarely-written job name — and the embedded
//! server ([`crate::serve`]) renders it as a small JSON document.
//!
//! Like spans and metrics, health state is observational only: nothing
//! here feeds the decision trace, so updating it cannot perturb
//! determinism guarantees.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Coarse lifecycle state of the process's current job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// No job has started yet.
    Idle,
    /// A job is executing.
    Running,
    /// The last job completed successfully.
    Done,
    /// The last job exited on an error.
    Failed,
}

impl RunState {
    fn as_str(self) -> &'static str {
        match self {
            RunState::Idle => "idle",
            RunState::Running => "running",
            RunState::Done => "done",
            RunState::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> RunState {
        match v {
            1 => RunState::Running,
            2 => RunState::Done,
            3 => RunState::Failed,
            _ => RunState::Idle,
        }
    }
}

/// The live status cell (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct Health {
    state: AtomicU8,
    iteration: AtomicU64,
    total_iterations: AtomicU64,
    breaker_open: AtomicBool,
    degraded: AtomicBool,
    fleet_done: AtomicU64,
    fleet_total: AtomicU64,
    heartbeat: AtomicU64,
    job: Mutex<String>,
}

/// The process-wide health cell.
pub fn global() -> &'static Health {
    static CELL: OnceLock<Health> = OnceLock::new();
    CELL.get_or_init(Health::default)
}

impl Health {
    /// Names the job now executing and marks the state `running`,
    /// resetting progress and fault flags from any previous job.
    pub fn begin_job(&self, name: &str) {
        *self.job.lock().unwrap() = name.to_string();
        self.iteration.store(0, Ordering::Relaxed);
        self.total_iterations.store(0, Ordering::Relaxed);
        self.breaker_open.store(false, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
        self.fleet_done.store(0, Ordering::Relaxed);
        self.fleet_total.store(0, Ordering::Relaxed);
        self.state.store(RunState::Running as u8, Ordering::Relaxed);
    }

    /// Records the job's outcome.
    pub fn finish_job(&self, ok: bool) {
        let s = if ok { RunState::Done } else { RunState::Failed };
        self.state.store(s as u8, Ordering::Relaxed);
    }

    /// Updates loop progress (current iteration out of `total`; pass 0
    /// for `total` when the horizon is unknown). Also bumps the
    /// heartbeat so supervisors watching [`Health::beats`] see forward
    /// motion at every iteration boundary.
    pub fn set_progress(&self, iteration: u64, total: u64) {
        self.iteration.store(iteration, Ordering::Relaxed);
        self.total_iterations.store(total, Ordering::Relaxed);
        self.beat();
    }

    /// Bumps the liveness heartbeat. Called from the experiment loop
    /// (via [`Health::set_progress`]) and from measurement acquisition,
    /// so a run blocked inside a single long interval still beats.
    pub fn beat(&self) {
        self.heartbeat.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic heartbeat counter. Never reset — supervisors compare
    /// successive samples; a stalled counter means a hung run.
    pub fn beats(&self) -> u64 {
        self.heartbeat.load(Ordering::Relaxed)
    }

    /// Updates fleet progress (tenant experiments finished out of
    /// `total`; both 0 outside fleet runs, in which case the fields
    /// still render — a fleet in progress is recognizable by
    /// `fleet_total > 0`).
    pub fn set_fleet_progress(&self, done: u64, total: u64) {
        self.fleet_done.store(done, Ordering::Relaxed);
        self.fleet_total.store(total, Ordering::Relaxed);
    }

    /// Mirrors the measurement-channel breaker state.
    pub fn set_breaker_open(&self, open: bool) {
        self.breaker_open.store(open, Ordering::Relaxed);
    }

    /// Mirrors the agent's degraded-mode flag.
    pub fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::Relaxed);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RunState {
        RunState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Renders the cell as a single-object JSON document.
    pub fn render_json(&self) -> String {
        let job = self.job.lock().unwrap().clone();
        format!(
            "{{\"state\":\"{}\",\"job\":\"{}\",\"iteration\":{},\"total_iterations\":{},\
             \"breaker_open\":{},\"degraded\":{},\"fleet_done\":{},\"fleet_total\":{},\
             \"heartbeat\":{}}}\n",
            self.state().as_str(),
            escape(&job),
            self.iteration.load(Ordering::Relaxed),
            self.total_iterations.load(Ordering::Relaxed),
            self.breaker_open.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.fleet_done.load(Ordering::Relaxed),
            self.fleet_total.load(Ordering::Relaxed),
            self.beats(),
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_json_shape() {
        let h = Health::default();
        assert_eq!(h.state(), RunState::Idle);
        h.begin_job("scenario diurnal");
        h.set_progress(3, 40);
        h.set_breaker_open(true);
        h.set_degraded(true);
        assert_eq!(h.state(), RunState::Running);
        let json = h.render_json();
        assert!(json.contains("\"state\":\"running\""));
        assert!(json.contains("\"job\":\"scenario diurnal\""));
        assert!(json.contains("\"iteration\":3"));
        assert!(json.contains("\"total_iterations\":40"));
        assert!(json.contains("\"breaker_open\":true"));
        assert!(json.contains("\"degraded\":true"));

        h.finish_job(true);
        assert!(h.render_json().contains("\"state\":\"done\""));
        h.finish_job(false);
        assert!(h.render_json().contains("\"state\":\"failed\""));

        // A new job clears the previous fault flags.
        h.begin_job("next");
        let json = h.render_json();
        assert!(json.contains("\"breaker_open\":false"));
        assert!(json.contains("\"degraded\":false"));
    }

    #[test]
    fn heartbeat_is_monotonic_across_jobs() {
        let h = Health::default();
        assert_eq!(h.beats(), 0);
        h.begin_job("first");
        h.set_progress(1, 10);
        h.set_progress(2, 10);
        h.beat();
        assert_eq!(h.beats(), 3);
        // begin_job resets progress but never the heartbeat: a
        // supervisor diffing samples across a restart must not see the
        // counter jump backwards.
        h.begin_job("second");
        assert_eq!(h.beats(), 3);
        assert!(h.render_json().contains("\"heartbeat\":3"));
    }

    #[test]
    fn fleet_progress_renders_and_resets() {
        let h = Health::default();
        h.begin_job("fleet 200");
        assert!(h
            .render_json()
            .contains("\"fleet_done\":0,\"fleet_total\":0"));
        h.set_fleet_progress(50, 200);
        assert!(h
            .render_json()
            .contains("\"fleet_done\":50,\"fleet_total\":200"));
        // The next (non-fleet) job must not inherit stale fleet counts.
        h.begin_job("scenario diurnal");
        assert!(h
            .render_json()
            .contains("\"fleet_done\":0,\"fleet_total\":0"));
    }

    #[test]
    fn job_names_are_json_escaped() {
        let h = Health::default();
        h.begin_job("quo\"te\\back\nline");
        let json = h.render_json();
        assert!(json.contains("quo\\\"te\\\\back\\u000aline"));
        // The result must stay a structurally valid single line.
        assert_eq!(json.lines().count(), 1);
    }
}
