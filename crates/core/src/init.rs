//! Policy initialization (Section 4.1, Algorithm 2).
//!
//! Online RL from a zero Q-table explores terribly (Figure 7). The
//! paper's remedy: (1) sample the performance of a small set of coarse,
//! *grouped* configurations, (2) fit a polynomial regression that
//! exploits the concave-upward effect of each parameter, (3) predict the
//! performance of every unvisited configuration, and (4) run an offline
//! RL process over the predicted landscape to produce an initial policy
//! for online learning.

use numerics::{FitQuality, PolynomialModel, RegressionError};
use rl::{batch_value_sweep, QLearning, QTable};
use websim::ServerConfig;

use crate::action::Action;
use crate::grouping::{group_features, sampling_plan};
use crate::mdp::ConfigMdp;
use crate::param::ConfigLattice;
use crate::reward::SlaReward;
use crate::runner::Measure;

/// Hyper-parameters of the offline training process. The paper sets
/// α = 0.1, γ = 0.9 for offline training; our full-table sweeps subsume
/// its ε-greedy exploration (every state–action pair is visited each
/// pass).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineSettings {
    /// Grid points per parameter *group* during data collection.
    pub group_levels: usize,
    /// TD learning rate α.
    pub alpha: f64,
    /// Discount rate γ.
    pub gamma: f64,
    /// Convergence threshold θ for Algorithm 1.
    pub theta: f64,
    /// Safety cap on sweep passes.
    pub max_passes: usize,
}

impl Default for OfflineSettings {
    fn default() -> Self {
        OfflineSettings {
            group_levels: 3,
            alpha: 0.1,
            gamma: 0.9,
            theta: 1e-3,
            max_passes: 500,
        }
    }
}

/// An initial policy for one system context: a converged Q-table plus
/// the predicted performance map it was trained on.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialPolicy {
    /// The offline-trained Q-table.
    pub qtable: QTable,
    /// Predicted mean response time (ms) per lattice state.
    pub perf_ms: Vec<f32>,
    /// Goodness of fit of the regression predictor.
    pub fit: FitQuality,
    /// Number of configurations actually measured.
    pub samples: usize,
    /// Sweep passes the offline RL took to converge.
    pub passes: usize,
}

impl InitialPolicy {
    /// Predicted response time of a lattice state (ms).
    pub fn predicted_perf(&self, state: usize) -> f64 {
        self.perf_ms[state] as f64
    }
}

/// Runs the full policy-initialization pipeline (Algorithm 2) for one
/// system context.
///
/// `measure` supplies the observed mean response time in milliseconds
/// per coarse sample configuration — a [`SimMeasurer`](crate::SimMeasurer)
/// against the live simulator for real training (the whole sampling
/// plan is submitted as one batch, so it fans out across the parallel
/// runner's workers), or any synthetic closure in tests.
///
/// # Errors
///
/// Returns the underlying [`RegressionError`] if the regression cannot
/// be fit (e.g. the measurement function returned non-finite values for
/// nearly all samples).
///
/// # Example
///
/// ```
/// use rac::{train_initial_policy, ConfigLattice, OfflineSettings, SlaReward};
///
/// let lattice = ConfigLattice::new(3);
/// // Synthetic landscape: a bowl in the first group (MaxClients/MaxThreads).
/// let policy = train_initial_policy(&lattice, SlaReward::new(1_000.0),
///     OfflineSettings::default(), |cfg: &websim::ServerConfig| {
///         let m = cfg.max_clients() as f64;
///         200.0 + 0.004 * (m - 350.0).powi(2)
///     }).unwrap();
/// assert_eq!(policy.samples, 81);
/// assert!(policy.fit.r_squared > 0.9);
/// ```
pub fn train_initial_policy(
    lattice: &ConfigLattice,
    reward: SlaReward,
    settings: OfflineSettings,
    mut measure: impl Measure,
) -> Result<InitialPolicy, RegressionError> {
    let _span = obs::Span::start("train_initial_policy");
    // 1. Parameter grouping + coarse data collection, submitted as one
    //    batch so runner-backed measurers evaluate it in parallel.
    let plan = sampling_plan(settings.group_levels);
    let configs: Vec<ServerConfig> = plan.iter().map(|(_, config)| *config).collect();
    let measured = measure.measure_batch(&configs);
    let mut xs = Vec::with_capacity(plan.len());
    let mut ys = Vec::with_capacity(plan.len());
    for ((coords, _), rt) in plan.iter().zip(measured) {
        if rt.is_finite() && rt > 0.0 {
            xs.push(coords.clone());
            ys.push(rt);
        }
    }
    let samples = xs.len();

    // Winsorize catastrophic samples: a choked corner configuration can
    // measure 100x the median (queueing + retry storms), and quadratic
    // least squares would then spend all its freedom on that corner and
    // misplace the minimum. Capping extremes keeps the *shape* the
    // paper's concavity assumption relies on.
    if !ys.is_empty() {
        let mut sorted = ys.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let cap = (median * 25.0).max(1.0);
        for y in &mut ys {
            *y = y.min(cap);
        }
    }

    // 2. Regression-based prediction function.
    let model = PolynomialModel::fit(&xs, &ys)?;

    // 3. Predict the performance of every unvisited configuration.
    let mut mdp = ConfigMdp::new(lattice, reward);
    let mut coords = vec![0usize; 8];
    // No prediction may promise better performance than (nearly) the
    // best configuration actually observed; unchecked extrapolation
    // dips would otherwise create phantom optima the online agent
    // chases through real (possibly terrible) configurations.
    let floor = ys.iter().copied().fold(f64::INFINITY, f64::min) * 0.75;
    for s in 0..lattice.num_states() {
        lattice.space().decode_into(s, &mut coords);
        let features = group_features(lattice, &coords);
        let predicted = model.predict(&features).max(floor.max(1.0));
        mdp.set_perf(s, predicted);
    }

    // 4. Offline RL over the predicted landscape.
    let mut qtable = QTable::new(lattice.num_states(), Action::COUNT);
    let learner = QLearning::new(settings.alpha, settings.gamma);
    let passes = batch_value_sweep(
        &mdp,
        &mut qtable,
        &learner,
        settings.theta,
        settings.max_passes,
    );

    obs::trace::emit(|| {
        obs::Event::new("offline_policy")
            .field("samples", samples as u64)
            .field("passes", passes as u64)
            .field("r_squared", model.quality().r_squared)
    });

    Ok(InitialPolicy {
        qtable,
        perf_ms: mdp.perf_map().iter().map(|&p| p as f32).collect(),
        fit: model.quality(),
        samples,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::Param;

    fn bowl(cfg: &ServerConfig) -> f64 {
        // Optimum at MaxClients ≈ 450, KeepAlive ≈ 6; everything else flat.
        let m = cfg.max_clients() as f64;
        let k = cfg.keepalive_timeout_secs() as f64;
        100.0 + 0.002 * (m - 450.0).powi(2) + 8.0 * (k - 6.0).powi(2)
    }

    #[test]
    fn pipeline_produces_converged_policy() {
        let lattice = ConfigLattice::new(4);
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            bowl,
        )
        .unwrap();
        assert_eq!(policy.samples, 81);
        assert!(policy.passes < 500, "offline RL did not converge");
        assert!(policy.fit.r_squared > 0.8, "r2 {}", policy.fit.r_squared);
    }

    #[test]
    fn policy_walks_toward_the_bowl_minimum() {
        let lattice = ConfigLattice::new(4);
        let reward = SlaReward::new(1_000.0);
        let policy =
            train_initial_policy(&lattice, reward, OfflineSettings::default(), bowl).unwrap();
        let mdp = ConfigMdp::new(&lattice, reward);
        let mut s = lattice.state_of(&ServerConfig::default());
        for _ in 0..40 {
            let a = policy.qtable.best_action(s);
            let next = rl::Environment::transition(&mdp, s, a);
            if next == s {
                break;
            }
            s = next;
        }
        // The regression works in *group-feature* space (MaxClients and
        // MaxThreads share a group), so the walk must end at a state
        // whose predicted performance matches the predicted optimum —
        // individual members of a group are interchangeable to the
        // initial policy until online learning separates them.
        let min_pred = policy.perf_ms.iter().copied().fold(f32::INFINITY, f32::min) as f64;
        let final_pred = policy.predicted_perf(s);
        assert!(
            final_pred <= min_pred * 1.05 + 1.0,
            "walk ended at predicted {final_pred:.1}ms, optimum {min_pred:.1}ms ({})",
            lattice.config_at(s)
        );
        // And the walk must have left the choked low-capacity corner
        // (the optimism floor can flatten the basin into a plateau, so
        // the exact resting point within it is unspecified).
        let coords = lattice.space().decode(s);
        let feature = crate::grouping::group_features(&lattice, &coords)[0];
        assert!(
            feature >= 0.3,
            "walk ended in the choked corner: feature {feature}"
        );
    }

    #[test]
    fn non_finite_measurements_are_skipped() {
        let lattice = ConfigLattice::new(3);
        let mut calls = 0;
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            |c: &ServerConfig| {
                calls += 1;
                if calls % 5 == 0 {
                    f64::INFINITY
                } else {
                    bowl(c)
                }
            },
        )
        .unwrap();
        assert!(policy.samples < 81);
        assert!(policy.samples >= 60);
    }

    #[test]
    fn too_few_valid_samples_errors() {
        let lattice = ConfigLattice::new(3);
        let result = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            |_: &ServerConfig| f64::NAN,
        );
        assert!(result.is_err());
    }

    #[test]
    fn predictions_cover_all_states_positively() {
        let lattice = ConfigLattice::new(3);
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            bowl,
        )
        .unwrap();
        assert_eq!(policy.perf_ms.len(), lattice.num_states());
        assert!(policy.perf_ms.iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    #[test]
    fn session_timeout_shares_keepalive_group_position() {
        // Sanity: the plan really moves SessionTimeout with KeepAlive.
        let plan = sampling_plan(3);
        for (coords, cfg) in plan {
            let (klo, khi) = Param::KeepaliveTimeout.range();
            let t = (cfg.keepalive_timeout_secs() - klo) as f64 / (khi - klo) as f64;
            assert!((t - coords[1]).abs() < 0.05);
        }
    }
}
