//! Offline training against the simulated testbed.
//!
//! Glue between [`train_initial_policy`] (which is measurement-source
//! agnostic) and the [`websim`] simulator: collects the coarse sample
//! measurements for a given system context and builds per-context
//! policies / the full policy library. This is the step the paper
//! reports taking "more than ten hours" on the physical testbed — here
//! it is simulated time.

use simkernel::SimDuration;
use websim::SystemSpec;

use crate::context::{PolicyLibrary, SystemContext};
use crate::init::{train_initial_policy, InitialPolicy, OfflineSettings};
use crate::param::ConfigLattice;
use crate::reward::SlaReward;
use crate::runner::SimMeasurer;

/// Options for offline training-data collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingOptions {
    /// Warm-up simulated time per sampled configuration (discarded).
    pub warmup: SimDuration,
    /// Measured simulated time per sampled configuration.
    pub measure: SimDuration,
    /// Offline RL settings (grouping granularity, α, γ, θ).
    pub settings: OfflineSettings,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            warmup: SimDuration::from_secs(600),
            measure: SimDuration::from_secs(240),
            settings: OfflineSettings::default(),
        }
    }
}

/// Trains the initial policy for one system context by sampling the
/// simulator (Algorithm 2 end to end).
///
/// # Panics
///
/// Panics if the regression cannot be fit, which indicates the sampled
/// landscape is degenerate — with the provided simulator this does not
/// happen for the paper's contexts.
///
/// # Example
///
/// ```no_run
/// use rac::{train_policy_for_context, ConfigLattice, SlaReward, SystemContext, TrainingOptions};
/// use tpcw::Mix;
/// use vmstack::ResourceLevel;
/// use websim::SystemSpec;
///
/// let lattice = ConfigLattice::new(4);
/// let ctx = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
/// let policy = train_policy_for_context(
///     &SystemSpec::default(), ctx, &lattice,
///     SlaReward::new(1_000.0), TrainingOptions::default());
/// println!("fit r² = {:.3}", policy.fit.r_squared);
/// ```
pub fn train_policy_for_context(
    spec_base: &SystemSpec,
    context: SystemContext,
    lattice: &ConfigLattice,
    reward: SlaReward,
    options: TrainingOptions,
) -> InitialPolicy {
    let _span = obs::Span::start("train_policy_for_context");
    obs::trace::emit(|| obs::Event::new("offline_training").field("context", context.to_string()));
    let spec = spec_base
        .clone()
        .with_mix(context.mix)
        .with_level(context.level);
    // Sampling runs through the global parallel runner: the whole
    // coarse plan fans out across RAC_THREADS workers and repeated
    // points hit the process-wide cache.
    let measurer = SimMeasurer::new(spec, options.warmup, options.measure);
    train_initial_policy(lattice, reward, options.settings, measurer)
        .expect("offline sampling landscape must be fittable")
}

/// Builds a [`PolicyLibrary`] covering the given contexts.
pub fn build_policy_library(
    spec_base: &SystemSpec,
    contexts: &[SystemContext],
    lattice: &ConfigLattice,
    reward: SlaReward,
    options: TrainingOptions,
) -> PolicyLibrary {
    let mut library = PolicyLibrary::new();
    for &context in contexts {
        let policy = train_policy_for_context(spec_base, context, lattice, reward, options);
        library.insert(context, policy);
    }
    library
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcw::Mix;
    use vmstack::ResourceLevel;

    /// End-to-end against a *small* simulated system: slow-ish but real.
    #[test]
    fn trains_against_live_simulator() {
        let spec = SystemSpec::default().with_clients(50).with_seed(2);
        let lattice = ConfigLattice::new(3);
        let options = TrainingOptions {
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(60),
            settings: OfflineSettings {
                group_levels: 2,
                ..OfflineSettings::default()
            },
        };
        let ctx = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
        let policy =
            train_policy_for_context(&spec, ctx, &lattice, SlaReward::new(1_000.0), options);
        assert_eq!(policy.samples, 16);
        assert!(policy.perf_ms.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn library_covers_requested_contexts() {
        let spec = SystemSpec::default().with_clients(40).with_seed(3);
        let lattice = ConfigLattice::new(3);
        let options = TrainingOptions {
            warmup: SimDuration::from_secs(20),
            measure: SimDuration::from_secs(40),
            settings: OfflineSettings {
                group_levels: 2,
                ..OfflineSettings::default()
            },
        };
        let contexts = [
            SystemContext::new(Mix::Shopping, ResourceLevel::Level1),
            SystemContext::new(Mix::Ordering, ResourceLevel::Level3),
        ];
        let lib =
            build_policy_library(&spec, &contexts, &lattice, SlaReward::new(1_000.0), options);
        assert_eq!(lib.len(), 2);
        for ctx in contexts {
            assert!(lib.for_context(ctx).is_some());
        }
    }
}
