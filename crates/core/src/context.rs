//! System contexts, context-change detection, and the policy library
//! (Section 4.3).

use simkernel::stats::SlidingWindow;
use tpcw::Mix;
use vmstack::ResourceLevel;

use crate::init::InitialPolicy;

/// A *system context*: the combination of traffic mix and VM resource
/// setting the web system currently runs under.
///
/// # Example
///
/// ```
/// use rac::{paper_contexts, SystemContext};
/// use tpcw::Mix;
/// use vmstack::ResourceLevel;
///
/// let contexts = paper_contexts();
/// assert_eq!(contexts.len(), 6);
/// assert_eq!(contexts[0], SystemContext::new(Mix::Shopping, ResourceLevel::Level1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemContext {
    /// TPC-W traffic mix.
    pub mix: Mix,
    /// App/db VM resource level.
    pub level: ResourceLevel,
}

impl SystemContext {
    /// Creates a context.
    pub fn new(mix: Mix, level: ResourceLevel) -> Self {
        SystemContext { mix, level }
    }
}

impl std::fmt::Display for SystemContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {}", self.mix, self.level)
    }
}

/// The six contexts of Table 2.
pub fn paper_contexts() -> [SystemContext; 6] {
    [
        SystemContext::new(Mix::Shopping, ResourceLevel::Level1), // Context-1
        SystemContext::new(Mix::Ordering, ResourceLevel::Level1), // Context-2
        SystemContext::new(Mix::Ordering, ResourceLevel::Level3), // Context-3
        SystemContext::new(Mix::Shopping, ResourceLevel::Level2), // Context-4
        SystemContext::new(Mix::Ordering, ResourceLevel::Level2), // Context-5
        SystemContext::new(Mix::Browsing, ResourceLevel::Level1), // Context-6
    ]
}

/// Detects context changes from the reward/response-time stream: a
/// *violation* is a sample deviating from the recent average by more
/// than `v_thr`; `s_thr` consecutive violations signal a context change
/// (Section 4.3; the paper uses n = 10, v_thr = 0.3, s_thr = 5).
///
/// An optional *outlier guard*
/// ([`with_outlier_guard`](ViolationDetector::with_outlier_guard))
/// protects against corrupted measurements: a lone sample more than
/// `k ×` the windowed median is held back rather than counted, and only
/// counts (retroactively) if the next sample violates too. A real
/// context shift therefore still fires after exactly `s_thr`
/// violating samples, while an isolated monitoring glitch — however
/// extreme — can no longer contribute to a spurious policy switch.
///
/// # Example
///
/// ```
/// use rac::ViolationDetector;
///
/// let mut d = ViolationDetector::paper_defaults();
/// for _ in 0..10 {
///     assert!(!d.observe(100.0)); // steady state
/// }
/// let mut detected = false;
/// for _ in 0..5 {
///     detected = d.observe(500.0); // abrupt shift
/// }
/// assert!(detected);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationDetector {
    window: SlidingWindow,
    v_thr: f64,
    s_thr: usize,
    consecutive: usize,
    streak_sum: f64,
    streak_count: usize,
    last_streak_mean: f64,
    /// Samples above `outlier_k ×` the windowed median are suspected
    /// corruption; `INFINITY` disables the guard.
    outlier_k: f64,
    /// A suspected-outlier sample awaiting confirmation by its
    /// successor.
    pending_outlier: Option<f64>,
}

impl ViolationDetector {
    /// Creates a detector with window size `n`, violation threshold
    /// `v_thr` and consecutive-violation threshold `s_thr`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `s_thr` is zero, or `v_thr` is not positive.
    pub fn new(n: usize, v_thr: f64, s_thr: usize) -> Self {
        assert!(s_thr > 0, "s_thr must be positive");
        assert!(v_thr > 0.0, "v_thr must be positive");
        ViolationDetector {
            window: SlidingWindow::new(n),
            v_thr,
            s_thr,
            consecutive: 0,
            streak_sum: 0.0,
            streak_count: 0,
            last_streak_mean: f64::NAN,
            outlier_k: f64::INFINITY,
            pending_outlier: None,
        }
    }

    /// Enables the outlier guard: a violating sample greater than
    /// `k ×` the windowed median, arriving with no streak in progress,
    /// is held until the next sample confirms (counts both) or refutes
    /// (discards it) the shift.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not greater than 1.
    pub fn with_outlier_guard(mut self, k: f64) -> Self {
        assert!(k > 1.0, "outlier guard factor must exceed 1");
        self.outlier_k = k;
        self
    }

    /// The paper's empirical settings: n = 10, v_thr = 0.3, s_thr = 5.
    pub fn paper_defaults() -> Self {
        ViolationDetector::new(10, 0.3, 5)
    }

    /// The consecutive-violation threshold.
    pub fn s_thr(&self) -> usize {
        self.s_thr
    }

    /// Length of the current violation streak (0 in steady state; the
    /// detector resets to 0 when it fires).
    pub fn streak(&self) -> usize {
        self.consecutive
    }

    /// Feeds one response-time observation. Returns `true` when a
    /// context change is detected (the detector then resets).
    pub fn observe(&mut self, response_ms: f64) -> bool {
        let avg = self.window.mean();
        let violation = match avg {
            Some(avg) if avg > 0.0 && response_ms.is_finite() => {
                (response_ms - avg).abs() / avg >= self.v_thr
            }
            Some(_) => response_ms.is_finite(),
            // No history yet: nothing to deviate from.
            None => false,
        };
        // Resolve a held suspected outlier first: a violating successor
        // confirms the shift was real, so the held sample counts
        // retroactively; a recovered successor proves it was isolated
        // corruption, and it is discarded without a trace.
        if let Some(held) = self.pending_outlier.take() {
            if violation {
                self.count_violation(held);
            }
        }
        if violation {
            let suspicious = self.consecutive == 0
                && response_ms.is_finite()
                && self
                    .window
                    .median()
                    .is_some_and(|m| m > 0.0 && response_ms > self.outlier_k * m);
            if suspicious {
                self.pending_outlier = Some(response_ms);
                return false;
            }
            self.count_violation(response_ms);
        } else {
            self.consecutive = 0;
            self.streak_sum = 0.0;
            self.streak_count = 0;
            // Only non-violating samples update the baseline, so a
            // persistent shift keeps registering until the switch.
            if response_ms.is_finite() {
                self.window.push(response_ms);
            }
        }
        if self.consecutive >= self.s_thr {
            self.last_streak_mean = if self.streak_count > 0 {
                self.streak_sum / self.streak_count as f64
            } else {
                f64::NAN
            };
            self.reset();
            return true;
        }
        false
    }

    /// The mean of the violation streak that triggered the most recent
    /// detection — a robust estimate of the new context's performance
    /// level, used to pick the replacement policy (one transient sample
    /// would be a poor guide).
    pub fn last_streak_mean(&self) -> f64 {
        self.last_streak_mean
    }

    /// Clears history (called after a policy switch).
    pub fn reset(&mut self) {
        self.window.clear();
        self.consecutive = 0;
        self.streak_sum = 0.0;
        self.streak_count = 0;
        self.pending_outlier = None;
    }

    fn count_violation(&mut self, response_ms: f64) {
        self.consecutive += 1;
        if response_ms.is_finite() {
            self.streak_sum += response_ms;
            self.streak_count += 1;
        }
    }

    /// Serializes the detector's complete state (window contents
    /// oldest-first, thresholds, streak progress, outlier guard).
    pub(crate) fn encode(&self, w: &mut ckpt::wire::Writer) {
        w.put_usize(self.window.capacity());
        w.put_usize(self.window.len());
        for v in self.window.iter() {
            w.put_f64(v);
        }
        w.put_f64(self.v_thr);
        w.put_usize(self.s_thr);
        w.put_usize(self.consecutive);
        w.put_f64(self.streak_sum);
        w.put_usize(self.streak_count);
        w.put_f64(self.last_streak_mean);
        w.put_f64(self.outlier_k);
        match self.pending_outlier {
            Some(v) => {
                w.put_bool(true);
                w.put_f64(v);
            }
            None => w.put_bool(false),
        }
    }

    /// Restores a detector serialized by [`encode`](Self::encode).
    pub(crate) fn decode(r: &mut ckpt::wire::Reader<'_>) -> Result<Self, ckpt::CkptError> {
        let corrupt = |detail: String| ckpt::CkptError::Corrupt { detail };
        let capacity = r.get_usize()?;
        let len = r.get_usize()?;
        if capacity == 0 || len > capacity {
            return Err(corrupt(format!(
                "detector window {len}/{capacity} is impossible"
            )));
        }
        let mut window = SlidingWindow::new(capacity);
        for _ in 0..len {
            window.push(r.get_f64()?);
        }
        let v_thr = r.get_f64()?;
        let s_thr = r.get_usize()?;
        if v_thr.is_nan() || v_thr <= 0.0 || s_thr == 0 {
            return Err(corrupt(format!(
                "detector thresholds v_thr={v_thr} s_thr={s_thr} are invalid"
            )));
        }
        let consecutive = r.get_usize()?;
        let streak_sum = r.get_f64()?;
        let streak_count = r.get_usize()?;
        let last_streak_mean = r.get_f64()?;
        let outlier_k = r.get_f64()?;
        if outlier_k.is_nan() || outlier_k <= 1.0 {
            return Err(corrupt(format!(
                "detector outlier guard {outlier_k} must exceed 1"
            )));
        }
        let pending_outlier = if r.get_bool()? {
            Some(r.get_f64()?)
        } else {
            None
        };
        Ok(ViolationDetector {
            window,
            v_thr,
            s_thr,
            consecutive,
            streak_sum,
            streak_count,
            last_streak_mean,
            outlier_k,
            pending_outlier,
        })
    }
}

/// A library of per-context initial policies, produced by offline
/// training (Section 4.3). On a detected context change, the agent
/// switches to the "most suitable" policy — the one whose predicted
/// performance at the current configuration best matches what is being
/// measured.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyLibrary {
    entries: Vec<(SystemContext, InitialPolicy)>,
}

impl PolicyLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        PolicyLibrary {
            entries: Vec::new(),
        }
    }

    /// Adds a context's policy.
    pub fn insert(&mut self, context: SystemContext, policy: InitialPolicy) {
        self.entries.push((context, policy));
    }

    /// Number of stored policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the library has no policies.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The policy trained for an exact context, if present.
    pub fn for_context(&self, context: SystemContext) -> Option<&InitialPolicy> {
        self.entries
            .iter()
            .find(|(c, _)| *c == context)
            .map(|(_, p)| p)
    }

    /// The "most suitable" policy given the currently measured response
    /// time at lattice state `state`: the entry whose prediction at that
    /// state is closest (relative error) to the measurement.
    pub fn best_match(&self, state: usize, measured_ms: f64) -> Option<&InitialPolicy> {
        self.entries
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da = (a.predicted_perf(state) - measured_ms).abs();
                let db = (b.predicted_perf(state) - measured_ms).abs();
                da.total_cmp(&db)
            })
            .map(|(_, p)| p)
    }

    /// Iterates over `(context, policy)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&SystemContext, &InitialPolicy)> {
        self.entries.iter().map(|(c, p)| (c, p))
    }
}

impl Default for PolicyLibrary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{train_initial_policy, OfflineSettings};
    use crate::param::ConfigLattice;
    use crate::reward::SlaReward;

    #[test]
    fn paper_contexts_match_table_2() {
        let c = paper_contexts();
        assert_eq!(
            c[1],
            SystemContext::new(Mix::Ordering, ResourceLevel::Level1)
        );
        assert_eq!(
            c[2],
            SystemContext::new(Mix::Ordering, ResourceLevel::Level3)
        );
        assert_eq!(
            c[5],
            SystemContext::new(Mix::Browsing, ResourceLevel::Level1)
        );
        assert_eq!(c[0].to_string(), "shopping @ Level-1");
    }

    #[test]
    fn detector_ignores_steady_state() {
        let mut d = ViolationDetector::paper_defaults();
        for i in 0..100 {
            // ±10% wiggle stays under the 30% threshold.
            let rt = 100.0 + if i % 2 == 0 { 10.0 } else { -10.0 };
            assert!(!d.observe(rt), "false positive at sample {i}");
        }
    }

    #[test]
    fn detector_fires_after_s_thr_violations() {
        let mut d = ViolationDetector::new(10, 0.3, 5);
        for _ in 0..10 {
            d.observe(100.0);
        }
        for i in 0..4 {
            assert!(!d.observe(200.0), "fired early at violation {i}");
        }
        assert!(
            d.observe(200.0),
            "must fire on the 5th consecutive violation"
        );
    }

    #[test]
    fn isolated_violations_do_not_fire() {
        let mut d = ViolationDetector::new(10, 0.3, 5);
        for _ in 0..10 {
            d.observe(100.0);
        }
        for _ in 0..20 {
            assert!(!d.observe(200.0), "isolated violation must not fire");
            d.observe(100.0); // resets the streak
        }
    }

    #[test]
    fn detector_handles_infinite_samples() {
        let mut d = ViolationDetector::new(10, 0.3, 3);
        for _ in 0..10 {
            d.observe(100.0);
        }
        assert!(!d.observe(f64::INFINITY));
        assert!(!d.observe(f64::INFINITY));
        // Infinite = violation? They are treated as non-violations of the
        // *window*, but they do not reset the count either way; a real
        // context change manifests in finite-but-shifted samples.
        let mut fired = false;
        for _ in 0..6 {
            fired = d.observe(1_000.0) || fired;
        }
        assert!(fired);
    }

    #[test]
    fn streak_exactly_at_s_thr_fires_and_resets() {
        let mut d = ViolationDetector::new(10, 0.3, 5);
        for _ in 0..10 {
            d.observe(100.0);
        }
        // Exactly s_thr − 1 violations: armed but not fired.
        for i in 1..5 {
            assert!(!d.observe(250.0));
            assert_eq!(d.streak(), i);
        }
        // The s_thr-th violation fires, and the streak resets to 0.
        assert!(d.observe(250.0));
        assert_eq!(d.streak(), 0);
        // The triggering streak's mean is exactly the violating level.
        assert!((d.last_streak_mean() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn reset_mid_streak_clears_progress() {
        let mut d = ViolationDetector::new(10, 0.3, 5);
        for _ in 0..10 {
            d.observe(100.0);
        }
        for _ in 0..4 {
            d.observe(250.0);
        }
        assert_eq!(d.streak(), 4);
        d.reset();
        assert_eq!(d.streak(), 0);
        // After reset the baseline window is empty too, so the next
        // samples establish a *new* baseline instead of violating the
        // old one — no firing even at the previously violating level.
        for i in 0..10 {
            assert!(!d.observe(250.0), "fired after reset at sample {i}");
        }
    }

    #[test]
    fn last_streak_mean_is_nan_before_any_streak() {
        let d = ViolationDetector::paper_defaults();
        assert!(d.last_streak_mean().is_nan());
        let mut d = ViolationDetector::paper_defaults();
        for _ in 0..20 {
            d.observe(100.0);
        }
        // Steady state never fired: still NaN.
        assert!(d.last_streak_mean().is_nan());
    }

    #[test]
    fn outlier_guard_ignores_isolated_spikes() {
        let mut d = ViolationDetector::new(10, 0.3, 5).with_outlier_guard(4.0);
        for _ in 0..10 {
            d.observe(100.0);
        }
        // A lone 10× sample followed by recovery, repeated forever:
        // never fires, and the held sample never even starts a streak.
        for i in 0..20 {
            assert!(!d.observe(1_000.0), "spike {i} must be held, not counted");
            assert_eq!(d.streak(), 0, "held spike {i} must not start a streak");
            assert!(!d.observe(100.0), "recovery {i} must discard the spike");
            assert_eq!(d.streak(), 0);
        }
    }

    #[test]
    fn outlier_guard_does_not_delay_real_shifts() {
        let mut guarded = ViolationDetector::new(10, 0.3, 5).with_outlier_guard(4.0);
        let mut plain = ViolationDetector::new(10, 0.3, 5);
        for _ in 0..10 {
            guarded.observe(100.0);
            plain.observe(100.0);
        }
        // A sustained shift beyond k × median: the first sample is held,
        // the second confirms it retroactively, so both detectors fire on
        // exactly the same observation.
        for i in 0..5 {
            let g = guarded.observe(900.0);
            let p = plain.observe(900.0);
            assert_eq!(g, p, "guarded and plain diverged at sample {i}");
            assert_eq!(g, i == 4, "must fire on the 5th sample, not sample {i}");
        }
        assert!((guarded.last_streak_mean() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn outlier_guard_leaves_moderate_violations_alone() {
        let mut d = ViolationDetector::new(10, 0.3, 5).with_outlier_guard(4.0);
        for _ in 0..10 {
            d.observe(100.0);
        }
        // 200 ms violates the 30% band but stays under 4 × median, so it
        // counts immediately — the guard only questions extreme samples.
        assert!(!d.observe(200.0));
        assert_eq!(d.streak(), 1);
    }

    #[test]
    #[should_panic(expected = "outlier guard factor must exceed 1")]
    fn outlier_guard_rejects_factor_at_most_one() {
        let _ = ViolationDetector::paper_defaults().with_outlier_guard(1.0);
    }

    fn tiny_policy(scale: f64) -> InitialPolicy {
        let lattice = ConfigLattice::new(3);
        train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            |c: &websim::ServerConfig| scale * (50.0 + c.max_clients() as f64 * 0.1),
        )
        .unwrap()
    }

    #[test]
    fn library_exact_and_best_match() {
        let mut lib = PolicyLibrary::new();
        let slow = tiny_policy(10.0);
        let fast = tiny_policy(1.0);
        let ctx_slow = SystemContext::new(Mix::Ordering, ResourceLevel::Level3);
        let ctx_fast = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
        lib.insert(ctx_slow, slow);
        lib.insert(ctx_fast, fast);
        assert_eq!(lib.len(), 2);

        assert!(lib.for_context(ctx_slow).is_some());
        assert!(lib
            .for_context(SystemContext::new(Mix::Browsing, ResourceLevel::Level2))
            .is_none());

        // A measurement near the slow landscape matches the slow policy.
        let state = 0;
        let slow_pred = lib.for_context(ctx_slow).unwrap().predicted_perf(state);
        let best = lib.best_match(state, slow_pred).unwrap();
        assert!((best.predicted_perf(state) - slow_pred).abs() < 1e-6);
    }

    #[test]
    fn empty_library_has_no_match() {
        let lib = PolicyLibrary::new();
        assert!(lib.best_match(0, 100.0).is_none());
        assert!(lib.is_empty());
    }

    #[test]
    fn detector_round_trips_mid_streak() {
        let mut d = ViolationDetector::new(10, 0.3, 5).with_outlier_guard(4.0);
        for _ in 0..10 {
            d.observe(100.0);
        }
        for _ in 0..3 {
            d.observe(200.0); // streak in progress
        }
        let mut w = ckpt::wire::Writer::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ckpt::wire::Reader::new(&bytes, "t");
        let mut back = ViolationDetector::decode(&mut r).unwrap();
        r.finish().unwrap();
        // Struct equality would trip over NaN fields (last_streak_mean
        // starts as NaN); re-encoding must reproduce the exact bytes.
        let mut w2 = ckpt::wire::Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // The restored detector fires on exactly the same future sample.
        assert!(!back.observe(200.0));
        assert!(back.observe(200.0), "streak must resume at 3/5");
    }

    #[test]
    fn detector_round_trips_pending_outlier() {
        let mut d = ViolationDetector::new(10, 0.3, 5).with_outlier_guard(4.0);
        for _ in 0..10 {
            d.observe(100.0);
        }
        assert!(!d.observe(1_000.0)); // held as a suspected outlier
        let mut w = ckpt::wire::Writer::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ckpt::wire::Reader::new(&bytes, "t");
        let back = ViolationDetector::decode(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = ckpt::wire::Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn detector_decode_rejects_bad_thresholds() {
        let mut d = ViolationDetector::paper_defaults();
        d.v_thr = -1.0;
        let mut w = ckpt::wire::Writer::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ckpt::wire::Reader::new(&bytes, "t");
        assert!(matches!(
            ViolationDetector::decode(&mut r),
            Err(ckpt::CkptError::Corrupt { .. })
        ));
    }
}
