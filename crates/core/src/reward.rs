//! The SLA-referenced reward function (Section 3.2).

/// Maps measured response time to an immediate reward against an SLA
/// reference: positive below the SLA, a (bounded) penalty above it.
///
/// The paper defines the reward from the SLA reference time and the
/// measured response time so that "a lower response time returns a
/// positive reward to the agent; otherwise the agent will receive a
/// negative penalty". We normalize by the SLA so rewards are
/// scale-free: `r = (SLA − rt) / SLA`, clamped to `[-penalty_cap, 1]`.
///
/// # Example
///
/// ```
/// use rac::SlaReward;
///
/// let reward = SlaReward::new(1_000.0);
/// assert_eq!(reward.of_response_ms(500.0), 0.5);   // half the SLA
/// assert_eq!(reward.of_response_ms(1_000.0), 0.0); // exactly on SLA
/// assert!(reward.of_response_ms(4_000.0) < 0.0);   // violation
/// assert_eq!(reward.of_response_ms(f64::INFINITY), -SlaReward::PENALTY_CAP);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaReward {
    sla_ms: f64,
}

impl SlaReward {
    /// Largest magnitude of the violation penalty. Bounding it keeps
    /// Q-values finite when an interval completes no requests at all.
    pub const PENALTY_CAP: f64 = 5.0;

    /// Creates a reward function with the given SLA reference response
    /// time in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `sla_ms` is not positive and finite.
    pub fn new(sla_ms: f64) -> Self {
        assert!(sla_ms.is_finite() && sla_ms > 0.0, "SLA must be positive");
        SlaReward { sla_ms }
    }

    /// The SLA reference (ms).
    pub fn sla_ms(&self) -> f64 {
        self.sla_ms
    }

    /// Reward for a measured mean response time (ms). Non-finite inputs
    /// (no completed requests) earn the full penalty.
    pub fn of_response_ms(&self, response_ms: f64) -> f64 {
        if !response_ms.is_finite() {
            return -Self::PENALTY_CAP;
        }
        ((self.sla_ms - response_ms) / self.sla_ms).clamp(-Self::PENALTY_CAP, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reward_signs_follow_sla() {
        let r = SlaReward::new(2_000.0);
        assert!(r.of_response_ms(100.0) > 0.0);
        assert_eq!(r.of_response_ms(2_000.0), 0.0);
        assert!(r.of_response_ms(3_000.0) < 0.0);
    }

    #[test]
    fn reward_bounded() {
        let r = SlaReward::new(100.0);
        assert_eq!(r.of_response_ms(0.0), 1.0);
        assert_eq!(r.of_response_ms(1e12), -SlaReward::PENALTY_CAP);
        assert_eq!(r.of_response_ms(f64::NAN), -SlaReward::PENALTY_CAP);
    }

    #[test]
    #[should_panic(expected = "SLA must be positive")]
    fn zero_sla_panics() {
        SlaReward::new(0.0);
    }

    proptest! {
        #[test]
        fn prop_monotone_decreasing(sla in 1.0f64..1e5, a in 0.0f64..1e7, b in 0.0f64..1e7) {
            let r = SlaReward::new(sla);
            let (fast, slow) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(r.of_response_ms(fast) >= r.of_response_ms(slow));
        }

        #[test]
        fn prop_in_bounds(sla in 1.0f64..1e5, rt in 0.0f64..1e9) {
            let r = SlaReward::new(sla).of_response_ms(rt);
            prop_assert!((-SlaReward::PENALTY_CAP..=1.0).contains(&r));
        }
    }
}
