//! The configuration MDP the RAC agent plans against.

use rl::Environment;

use crate::action::Action;
use crate::param::ConfigLattice;
use crate::reward::SlaReward;

/// The deterministic Markov decision process over configuration states
/// (Section 3.2): states are lattice points, actions are per-parameter
/// steps, and the reward of a transition is the SLA reward of the
/// *destination* configuration's (measured or predicted) response time.
///
/// Transitions are precomputed into a dense table so that batch
/// retraining sweeps ([`rl::batch_value_sweep`]) are a linear pass.
///
/// The performance map is kept in `f64`: the agent multiplies predicted
/// response times by a calibration factor every interval, and rounding
/// the products through `f32` used to collapse near-tied states onto
/// the same value, letting the deterministic tie-break (lowest index)
/// flip the argmin whenever calibration ≠ 1.0.
///
/// # Example
///
/// ```
/// use rac::{Action, ConfigLattice, ConfigMdp, SlaReward};
/// use rl::Environment;
///
/// let lattice = ConfigLattice::new(3);
/// let mut mdp = ConfigMdp::new(&lattice, SlaReward::new(1_000.0));
/// mdp.set_perf(0, 500.0);
/// let keep = Action::Keep.index();
/// assert_eq!(mdp.transition(0, keep), 0);
/// assert_eq!(mdp.reward(0, keep, 0), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigMdp {
    levels: usize,
    states: usize,
    transitions: Vec<u32>,
    perf_ms: Vec<f64>,
    /// `reward.of_response_ms(perf_ms[s])` per state, refreshed whenever
    /// the performance map changes: the reward of a transition depends
    /// only on the destination state, and sweeps query it `states ×
    /// actions × passes` times per retrain, so the division/clamp is
    /// paid once per map write instead of once per query. Computed by
    /// the same call, so cached and recomputed values are bit-identical.
    reward_of: Vec<f64>,
    reward: SlaReward,
}

impl ConfigMdp {
    /// Builds the MDP for a lattice, with every state's performance
    /// initialized to the SLA reference (neutral reward).
    pub fn new(lattice: &ConfigLattice, reward: SlaReward) -> Self {
        let states = lattice.num_states();
        let levels = lattice.levels();
        let mut transitions = Vec::with_capacity(states * Action::COUNT);
        let mut coords = vec![0usize; 8];
        let mut scratch = vec![0usize; 8];
        for s in 0..states {
            lattice.space().decode_into(s, &mut coords);
            for a in 0..Action::COUNT {
                scratch.copy_from_slice(&coords);
                Action::from_index(a).apply(&mut scratch, levels);
                transitions.push(lattice.space().encode(&scratch) as u32);
            }
        }
        ConfigMdp {
            levels,
            states,
            transitions,
            perf_ms: vec![reward.sla_ms(); states],
            reward_of: vec![reward.of_response_ms(reward.sla_ms()); states],
            reward,
        }
    }

    /// The reward function in use.
    pub fn sla_reward(&self) -> SlaReward {
        self.reward
    }

    /// Records the (measured or predicted) mean response time of a
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn set_perf(&mut self, state: usize, response_ms: f64) {
        self.perf_ms[state] = response_ms;
        self.reward_of[state] = self.reward.of_response_ms(response_ms);
    }

    /// The stored response time of a state (ms).
    pub fn perf(&self, state: usize) -> f64 {
        self.perf_ms[state]
    }

    /// Replaces the entire performance map.
    ///
    /// # Panics
    ///
    /// Panics if `perf_ms.len()` differs from the state count.
    pub fn set_perf_map(&mut self, perf_ms: Vec<f64>) {
        assert_eq!(perf_ms.len(), self.states, "performance map size mismatch");
        self.reward_of.clear();
        self.reward_of
            .extend(perf_ms.iter().map(|&p| self.reward.of_response_ms(p)));
        self.perf_ms = perf_ms;
    }

    /// Read access to the full performance map.
    pub fn perf_map(&self) -> &[f64] {
        &self.perf_ms
    }

    /// The state with the lowest stored response time (ties toward the
    /// lowest index).
    pub fn best_state(&self) -> usize {
        let mut best = 0;
        for (s, &p) in self.perf_ms.iter().enumerate().skip(1) {
            if p < self.perf_ms[best] {
                best = s;
            }
        }
        best
    }
}

impl Environment for ConfigMdp {
    fn num_states(&self) -> usize {
        self.states
    }

    fn num_actions(&self) -> usize {
        Action::COUNT
    }

    fn transition(&self, s: usize, a: usize) -> usize {
        self.transitions[s * Action::COUNT + a] as usize
    }

    fn reward(&self, _s: usize, _a: usize, s2: usize) -> f64 {
        self.reward_of[s2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl::{batch_value_sweep, QLearning, QTable};
    use websim::Param;

    fn lattice() -> ConfigLattice {
        ConfigLattice::new(3)
    }

    #[test]
    fn transitions_match_action_semantics() {
        let l = lattice();
        let mdp = ConfigMdp::new(&l, SlaReward::new(1_000.0));
        let origin = l.space().encode(&[1; 8]);
        for action in Action::all() {
            let mut coords = [1usize; 8];
            action.apply(&mut coords, 3);
            let expect = l.space().encode(&coords);
            assert_eq!(mdp.transition(origin, action.index()), expect, "{action}");
        }
    }

    #[test]
    fn boundary_actions_self_loop() {
        let l = lattice();
        let mdp = ConfigMdp::new(&l, SlaReward::new(1_000.0));
        let corner = l.space().encode(&[0; 8]);
        for p in Param::ALL {
            assert_eq!(mdp.transition(corner, Action::decrease(p).index()), corner);
        }
    }

    #[test]
    fn reward_uses_destination_perf() {
        let l = lattice();
        let mut mdp = ConfigMdp::new(&l, SlaReward::new(1_000.0));
        let s0 = l.space().encode(&[0; 8]);
        let s1 = mdp.transition(s0, Action::increase(Param::MaxClients).index());
        mdp.set_perf(s1, 200.0);
        let r = mdp.reward(s0, Action::increase(Param::MaxClients).index(), s1);
        assert!((r - 0.8).abs() < 1e-6);
    }

    #[test]
    fn default_perf_is_neutral() {
        let l = lattice();
        let mdp = ConfigMdp::new(&l, SlaReward::new(500.0));
        assert_eq!(mdp.reward(0, 0, 0), 0.0);
    }

    #[test]
    fn best_state_finds_minimum() {
        let l = lattice();
        let mut mdp = ConfigMdp::new(&l, SlaReward::new(1_000.0));
        mdp.set_perf(42, 10.0);
        assert_eq!(mdp.best_state(), 42);
    }

    #[test]
    fn planning_reaches_the_good_configuration() {
        // Give one lattice state a great response time and verify that a
        // converged policy walks there from the default state.
        let l = lattice();
        let mut mdp = ConfigMdp::new(&l, SlaReward::new(1_000.0));
        let goal_coords = [2usize, 1, 0, 0, 2, 1, 0, 0];
        let goal = l.space().encode(&goal_coords);
        // Make perf improve smoothly toward the goal so the gradient is
        // informative (distance-shaped bowl).
        let mut coords = vec![0usize; 8];
        for s in 0..l.num_states() {
            l.space().decode_into(s, &mut coords);
            let dist: usize = coords
                .iter()
                .zip(&goal_coords)
                .map(|(a, b)| a.abs_diff(*b))
                .sum();
            mdp.set_perf(s, 100.0 + 300.0 * dist as f64);
        }
        let mut q = QTable::new(l.num_states(), Action::COUNT);
        batch_value_sweep(&mdp, &mut q, &QLearning::new(0.5, 0.9), 1e-4, 500);

        let mut s = l.state_of(&websim::ServerConfig::default());
        for _ in 0..32 {
            s = mdp.transition(s, q.best_action(s));
        }
        assert_eq!(s, goal, "greedy walk should end at the optimum");
    }

    #[test]
    fn perf_map_preserves_sub_f32_differences() {
        // Two states closer together than f32 can represent at this
        // magnitude; the old f32 map collapsed them onto one value.
        let l = lattice();
        let mut mdp = ConfigMdp::new(&l, SlaReward::new(1_000.0));
        mdp.set_perf(7, 500.000_000_1);
        mdp.set_perf(3, 500.0);
        assert_eq!(mdp.perf(7), 500.000_000_1, "stored exactly, no rounding");
        assert!(mdp.perf(3) < mdp.perf(7));
        assert_eq!(mdp.best_state(), 3);
    }

    #[test]
    fn calibration_epsilon_never_reorders_near_ties() {
        // Regression for the refresh_perf_map truncation bias: predicted
        // response times one f32 ulp apart (the finest distinction an
        // offline policy can express), rescaled by calibration factors
        // within 1.0 ± ε, must keep their strict order in the map —
        // including across a binade boundary, where the old rounding
        // back to f32 could merge or reorder the products and flip the
        // argmin onto the lower-indexed state.
        let l = lattice();
        let pairs: [(f32, f32); 3] = [
            (500.0, f32::from_bits(500.0f32.to_bits() + 1)),
            (f32::from_bits(512.0f32.to_bits() - 1), 512.0),
            (999.999_94, 1_000.0),
        ];
        for eps in [1e-9, 1e-8, 3e-8, 1e-7, 1e-6] {
            for calib in [1.0 - eps, 1.0 + eps] {
                for (lo, hi) in pairs {
                    // A high SLA reference keeps every untouched state's
                    // default perf above the pair under test.
                    let mut mdp = ConfigMdp::new(&l, SlaReward::new(10_000.0));
                    // The lower-indexed state gets the *worse* (higher)
                    // prediction, so any tie collapse would flip the
                    // argmin onto it.
                    mdp.set_perf(0, hi as f64 * calib);
                    mdp.set_perf(1, lo as f64 * calib);
                    assert!(
                        mdp.perf(1) < mdp.perf(0),
                        "calibration {calib} collapsed {lo} vs {hi}"
                    );
                    assert_eq!(
                        mdp.best_state(),
                        1,
                        "calibration {calib} reordered {lo} vs {hi}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_perf_map_panics() {
        let l = lattice();
        let mut mdp = ConfigMdp::new(&l, SlaReward::new(1_000.0));
        mdp.set_perf_map(vec![0.0; 3]);
    }
}
