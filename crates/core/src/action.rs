//! The reconfiguration action set: per-parameter increase / decrease /
//! keep.

use websim::Param;

/// A reconfiguration action (Section 3.2): keep everything, or move one
/// parameter one lattice step up or down.
///
/// Actions are densely numbered `0 ..= 16`: action 0 is `Keep`, action
/// `1 + 2·p` increases parameter `p`, action `2 + 2·p` decreases it.
///
/// # Example
///
/// ```
/// use rac::Action;
/// use websim::Param;
///
/// assert_eq!(Action::COUNT, 17);
/// assert_eq!(Action::from_index(0), Action::Keep);
/// let inc = Action::increase(Param::MaxClients);
/// assert_eq!(Action::from_index(inc.index()), inc);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Leave the configuration unchanged.
    Keep,
    /// Move one parameter one lattice step up.
    Increase(Param),
    /// Move one parameter one lattice step down.
    Decrease(Param),
}

impl Action {
    /// Total number of actions (`2 × 8 + 1`).
    pub const COUNT: usize = 1 + 2 * 8;

    /// The increase action for `p`.
    pub fn increase(p: Param) -> Action {
        Action::Increase(p)
    }

    /// The decrease action for `p`.
    pub fn decrease(p: Param) -> Action {
        Action::Decrease(p)
    }

    /// Dense index in `0..17`.
    pub fn index(self) -> usize {
        match self {
            Action::Keep => 0,
            Action::Increase(p) => 1 + 2 * p.index(),
            Action::Decrease(p) => 2 + 2 * p.index(),
        }
    }

    /// The action at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Action::COUNT`.
    pub fn from_index(index: usize) -> Action {
        assert!(index < Action::COUNT, "action index {index} out of range");
        if index == 0 {
            Action::Keep
        } else {
            let p = Param::ALL[(index - 1) / 2];
            if (index - 1).is_multiple_of(2) {
                Action::Increase(p)
            } else {
                Action::Decrease(p)
            }
        }
    }

    /// All actions in index order.
    pub fn all() -> impl Iterator<Item = Action> {
        (0..Action::COUNT).map(Action::from_index)
    }

    /// Applies the action to lattice coordinates, clamping at the
    /// boundaries (an increase at the top edge keeps the state).
    ///
    /// # Panics
    ///
    /// Panics if `coords` does not have 8 entries or `levels` is zero.
    pub fn apply(self, coords: &mut [usize], levels: usize) {
        assert_eq!(coords.len(), 8, "expected 8 coordinates");
        assert!(levels > 0, "levels must be positive");
        match self {
            Action::Keep => {}
            Action::Increase(p) => {
                let c = &mut coords[p.index()];
                *c = (*c + 1).min(levels - 1);
            }
            Action::Decrease(p) => {
                let c = &mut coords[p.index()];
                *c = c.saturating_sub(1);
            }
        }
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Keep => write!(f, "keep"),
            Action::Increase(p) => write!(f, "increase {p}"),
            Action::Decrease(p) => write!(f, "decrease {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips_for_all() {
        for i in 0..Action::COUNT {
            assert_eq!(Action::from_index(i).index(), i);
        }
        assert_eq!(Action::all().count(), 17);
    }

    #[test]
    fn apply_moves_one_coordinate() {
        let mut coords = [2usize; 8];
        Action::increase(Param::MaxThreads).apply(&mut coords, 5);
        assert_eq!(coords[Param::MaxThreads.index()], 3);
        assert!(coords
            .iter()
            .enumerate()
            .all(|(i, &c)| i == Param::MaxThreads.index() || c == 2));
        Action::decrease(Param::MaxThreads).apply(&mut coords, 5);
        assert_eq!(coords[Param::MaxThreads.index()], 2);
    }

    #[test]
    fn apply_clamps_at_boundaries() {
        let mut top = [4usize; 8];
        Action::increase(Param::MaxClients).apply(&mut top, 5);
        assert_eq!(top[Param::MaxClients.index()], 4);
        let mut bottom = [0usize; 8];
        Action::decrease(Param::MaxClients).apply(&mut bottom, 5);
        assert_eq!(bottom[Param::MaxClients.index()], 0);
    }

    #[test]
    fn keep_is_identity() {
        let mut coords = [1, 2, 3, 4, 0, 1, 2, 3];
        let before = coords;
        Action::Keep.apply(&mut coords, 5);
        assert_eq!(coords, before);
    }

    #[test]
    fn display_names() {
        assert_eq!(Action::Keep.to_string(), "keep");
        assert_eq!(
            Action::increase(Param::MaxClients).to_string(),
            "increase MaxClients"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        Action::from_index(17);
    }
}
