//! Last-known-good rollback guardrail.
//!
//! Online exploration is the main barrier to deploying RL tuners: a
//! single bad action under heavy load can push the system into a
//! configuration it cannot learn its way out of quickly. The
//! [`RollbackGuard`] tracks the best SLA-satisfying configuration seen
//! so far and, when response time stays in *severe* violation (beyond
//! `severe_factor × SLA`) for `trip_after` consecutive iterations,
//! tells the agent to veto exploration in that direction and jump back
//! to the last-known-good state.
//!
//! Hysteresis keeps the guard from fighting normal learning: after a
//! rollback it holds off for `hold` iterations, so the restored
//! configuration gets time to take effect and ordinary (non-severe) SLA
//! violations never trigger it at all.

/// Tunables of the [`RollbackGuard`].
#[derive(Debug, Clone, PartialEq)]
pub struct GuardSettings {
    /// A violation is *severe* when response time exceeds
    /// `severe_factor × SLA`.
    pub severe_factor: f64,
    /// Consecutive severe violations that trigger a rollback.
    pub trip_after: usize,
    /// Hysteresis: iterations after a rollback during which the guard
    /// stays quiet.
    pub hold: usize,
    /// Iterations an exploration veto stays in force.
    pub veto_ttl: u64,
}

impl Default for GuardSettings {
    fn default() -> Self {
        GuardSettings {
            severe_factor: 2.0,
            trip_after: 3,
            hold: 6,
            veto_ttl: 12,
        }
    }
}

/// What the guard wants done after observing one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardDecision {
    /// Nothing to do: keep learning normally.
    Observe,
    /// Restore the last-known-good lattice state and veto the action
    /// that led here.
    Rollback {
        /// Lattice state of the best SLA-satisfying config seen.
        state: usize,
    },
}

/// Tracks the best SLA-satisfying configuration and demands a rollback
/// when severe violations persist.
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackGuard {
    settings: GuardSettings,
    /// Best SLA-satisfying `(state, response_ms)` seen so far.
    lkg: Option<(usize, f64)>,
    /// Consecutive severe violations.
    severe_streak: usize,
    /// Remaining hysteresis iterations after a rollback.
    cooldown: usize,
}

impl Default for RollbackGuard {
    fn default() -> Self {
        RollbackGuard::new(GuardSettings::default())
    }
}

impl RollbackGuard {
    /// A fresh guard with no last-known-good state.
    pub fn new(mut settings: GuardSettings) -> Self {
        settings.trip_after = settings.trip_after.max(1);
        RollbackGuard {
            settings,
            lkg: None,
            severe_streak: 0,
            cooldown: 0,
        }
    }

    /// The guard's tunables.
    pub fn settings(&self) -> &GuardSettings {
        &self.settings
    }

    /// The best SLA-satisfying `(state, response_ms)` seen so far.
    pub fn last_known_good(&self) -> Option<(usize, f64)> {
        self.lkg
    }

    /// Current severe-violation streak (diagnostics).
    pub fn severe_streak(&self) -> usize {
        self.severe_streak
    }

    /// Observes one iteration: the lattice `state` the measurement was
    /// taken under and its mean response time against `sla_ms`.
    pub fn observe(&mut self, state: usize, rt_ms: f64, sla_ms: f64) -> GuardDecision {
        if rt_ms.is_finite() && rt_ms > 0.0 && rt_ms <= sla_ms {
            // SLA satisfied: remember the best config and clear the streak.
            if self.lkg.is_none_or(|(_, best)| rt_ms < best) {
                self.lkg = Some((state, rt_ms));
            }
            self.severe_streak = 0;
            self.cooldown = self.cooldown.saturating_sub(1);
            return GuardDecision::Observe;
        }
        if self.cooldown > 0 {
            // Hysteresis: the streak stays frozen while the hold is in
            // force, so a fresh run of severe violations is needed
            // before the guard can fire again.
            self.cooldown -= 1;
            self.severe_streak = 0;
            return GuardDecision::Observe;
        }
        if rt_ms.is_finite() && rt_ms > self.settings.severe_factor * sla_ms {
            self.severe_streak += 1;
        } else {
            // Mild violation or unusable sample: not the guard's business.
            self.severe_streak = 0;
            return GuardDecision::Observe;
        }
        if self.severe_streak < self.settings.trip_after {
            return GuardDecision::Observe;
        }
        self.severe_streak = 0;
        match self.lkg {
            // Rolling back to the state we are already in would be a
            // no-op; leave recovery to learning (and the policy library).
            Some((lkg_state, _)) if lkg_state != state => {
                self.cooldown = self.settings.hold;
                GuardDecision::Rollback { state: lkg_state }
            }
            _ => GuardDecision::Observe,
        }
    }

    /// Serializes the guard for checkpointing.
    pub fn encode(&self, w: &mut ckpt::wire::Writer) {
        w.put_f64(self.settings.severe_factor);
        w.put_usize(self.settings.trip_after);
        w.put_usize(self.settings.hold);
        w.put_u64(self.settings.veto_ttl);
        match self.lkg {
            Some((state, rt)) => {
                w.put_bool(true);
                w.put_usize(state);
                w.put_f64(rt);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.severe_streak);
        w.put_usize(self.cooldown);
    }

    /// Reconstructs a guard from [`encode`](Self::encode)d bytes.
    pub fn decode(r: &mut ckpt::wire::Reader<'_>) -> Result<Self, ckpt::CkptError> {
        let corrupt = |detail: String| ckpt::CkptError::Corrupt { detail };
        let settings = GuardSettings {
            severe_factor: r.get_f64()?,
            trip_after: r.get_usize()?,
            hold: r.get_usize()?,
            veto_ttl: r.get_u64()?,
        };
        if !settings.severe_factor.is_finite() || settings.severe_factor < 1.0 {
            return Err(corrupt(format!(
                "severe_factor {} must be at least 1",
                settings.severe_factor
            )));
        }
        if settings.trip_after == 0 {
            return Err(corrupt("guard trip_after must be positive".to_string()));
        }
        let lkg = if r.get_bool()? {
            let state = r.get_usize()?;
            let rt = r.get_f64()?;
            if !rt.is_finite() || rt <= 0.0 {
                return Err(corrupt(format!("last-known-good rt {rt} is impossible")));
            }
            Some((state, rt))
        } else {
            None
        };
        Ok(RollbackGuard {
            settings,
            lkg,
            severe_streak: r.get_usize()?,
            cooldown: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLA: f64 = 1_000.0;

    #[test]
    fn remembers_the_best_sla_satisfying_state() {
        let mut g = RollbackGuard::default();
        g.observe(3, 800.0, SLA);
        g.observe(5, 400.0, SLA);
        g.observe(2, 950.0, SLA);
        assert_eq!(g.last_known_good(), Some((5, 400.0)));
    }

    #[test]
    fn mild_violations_never_trigger() {
        let mut g = RollbackGuard::default();
        g.observe(5, 400.0, SLA);
        for _ in 0..50 {
            // Violating, but under the 2× severity bar.
            assert_eq!(g.observe(1, 1_500.0, SLA), GuardDecision::Observe);
        }
    }

    #[test]
    fn persistent_severe_violation_rolls_back() {
        let mut g = RollbackGuard::default(); // trip_after 3
        g.observe(5, 400.0, SLA);
        assert_eq!(g.observe(1, 3_000.0, SLA), GuardDecision::Observe);
        assert_eq!(g.observe(1, 3_000.0, SLA), GuardDecision::Observe);
        assert_eq!(
            g.observe(1, 3_000.0, SLA),
            GuardDecision::Rollback { state: 5 }
        );
    }

    #[test]
    fn hysteresis_holds_after_a_rollback() {
        let mut g = RollbackGuard::default(); // hold 6
        g.observe(5, 400.0, SLA);
        for _ in 0..2 {
            g.observe(1, 3_000.0, SLA);
        }
        assert!(matches!(
            g.observe(1, 3_000.0, SLA),
            GuardDecision::Rollback { .. }
        ));
        // Still severe, but inside the hold window: quiet, and the
        // streak stays frozen.
        for _ in 0..6 {
            assert_eq!(g.observe(1, 3_000.0, SLA), GuardDecision::Observe);
        }
        // Hold expired: a *fresh* streak of trip_after severe
        // violations is required before the guard fires again.
        assert_eq!(g.observe(1, 3_000.0, SLA), GuardDecision::Observe);
        assert_eq!(g.observe(1, 3_000.0, SLA), GuardDecision::Observe);
        assert!(matches!(
            g.observe(1, 3_000.0, SLA),
            GuardDecision::Rollback { .. }
        ));
    }

    #[test]
    fn no_rollback_without_a_known_good_state() {
        let mut g = RollbackGuard::default();
        for _ in 0..20 {
            assert_eq!(g.observe(1, 5_000.0, SLA), GuardDecision::Observe);
        }
    }

    #[test]
    fn no_rollback_onto_the_current_state() {
        let mut g = RollbackGuard::default();
        g.observe(5, 400.0, SLA);
        for _ in 0..20 {
            assert_eq!(g.observe(5, 3_000.0, SLA), GuardDecision::Observe);
        }
    }

    #[test]
    fn infinite_samples_reset_the_streak() {
        let mut g = RollbackGuard::default();
        g.observe(5, 400.0, SLA);
        g.observe(1, 3_000.0, SLA);
        g.observe(1, 3_000.0, SLA);
        g.observe(1, f64::INFINITY, SLA);
        // The dropped-sample INFINITY broke the streak.
        assert_eq!(g.observe(1, 3_000.0, SLA), GuardDecision::Observe);
    }

    #[test]
    fn guard_round_trips_through_wire() {
        let mut g = RollbackGuard::default();
        g.observe(5, 400.0, SLA);
        for _ in 0..3 {
            g.observe(1, 3_000.0, SLA);
        }
        g.observe(1, 3_000.0, SLA); // mid-hold, nonzero streak history
        let mut w = ckpt::wire::Writer::new();
        g.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ckpt::wire::Reader::new(&bytes, "test");
        let back = RollbackGuard::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, g);
        let mut w2 = ckpt::wire::Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn decode_rejects_impossible_lkg() {
        let mut w = ckpt::wire::Writer::new();
        w.put_f64(2.0);
        w.put_usize(3);
        w.put_usize(6);
        w.put_u64(12);
        w.put_bool(true);
        w.put_usize(0);
        w.put_f64(f64::NEG_INFINITY);
        w.put_usize(0);
        w.put_usize(0);
        let bytes = w.into_bytes();
        let mut r = ckpt::wire::Reader::new(&bytes, "test");
        assert!(RollbackGuard::decode(&mut r).is_err());
    }
}
