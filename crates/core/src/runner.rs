//! Deterministic parallel measurement engine.
//!
//! The costliest stage of everything in this crate — policy
//! initialization, sensitivity ranking, figure sweeps — is measuring
//! many *independent* `(spec, config)` points, one full simulated
//! interval each. Each measurement builds a fresh
//! [`websim::ThreeTierSystem`] from the spec (whose seed pins the PCG
//! stream), so a measurement is a **pure function** of its inputs:
//! scheduling order cannot affect results. That purity is what lets
//! this module promise its headline guarantee:
//!
//! > **Parallel ≡ serial, bit for bit, at any thread count.**
//!
//! [`Runner::run`] executes a batch over a work-queue of `RAC_THREADS`
//! workers (default: available parallelism) and returns results in
//! submission order. A process-wide memoizing cache keyed by
//! `(spec fingerprint, config, warmup, measure)` means repeated points
//! — the default config measured by fig 1, fig 5, and several table
//! rows — simulate exactly once per process; a cache hit returns the
//! same bits a fresh simulation would.
//!
//! # Example
//!
//! ```
//! use rac::runner::{MeasureJob, Runner};
//! use simkernel::SimDuration;
//! use websim::{measure_config, ServerConfig, SystemSpec};
//!
//! let spec = SystemSpec::default().with_clients(30);
//! let warmup = SimDuration::from_secs(10);
//! let measure = SimDuration::from_secs(30);
//! let jobs: Vec<MeasureJob> = (0..4)
//!     .map(|i| MeasureJob::new(spec.clone().with_seed(i), ServerConfig::default(), warmup, measure))
//!     .collect();
//!
//! let runner = Runner::new(2);
//! let parallel = runner.run(&jobs);
//! let serial: Vec<_> = jobs
//!     .iter()
//!     .map(|j| measure_config(&j.spec, j.config, j.warmup, j.measure))
//!     .collect();
//! assert_eq!(parallel, serial); // bit-identical, not just close
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use obs::Event;
use simkernel::SimDuration;
use websim::{measure_config, PerfSample, ServerConfig, SystemSpec};

/// Environment variable selecting the worker count (`0` or unset →
/// available parallelism).
pub const THREADS_ENV: &str = "RAC_THREADS";

/// Resolved-once obs handles for the measurement engine. Cache
/// hit/miss totals and wall-clock timings are inherently scheduling-
/// dependent across thread counts, so they live **only** here (the
/// metrics registry), never in the deterministic JSONL trace.
struct RunnerMetrics {
    jobs: obs::Counter,
    cache_hits: obs::Counter,
    cache_misses: obs::Counter,
    cache_clears: obs::Counter,
    queue_depth: obs::Gauge,
    job_ms: obs::Histogram,
}

impl RunnerMetrics {
    fn get() -> &'static RunnerMetrics {
        static METRICS: OnceLock<RunnerMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = obs::Registry::global();
            RunnerMetrics {
                jobs: r.counter("rac_runner_jobs_total"),
                cache_hits: r.counter("rac_runner_cache_hits_total"),
                cache_misses: r.counter("rac_runner_cache_misses_total"),
                cache_clears: r.counter("rac_runner_cache_clears_total"),
                queue_depth: r.gauge("rac_runner_queue_depth"),
                job_ms: r.histogram("rac_runner_job_ms"),
            }
        })
    }
}

/// One independent measurement: a system, a configuration, and how long
/// to warm up and measure.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureJob {
    /// The simulated testbed (its seed pins the RNG stream).
    pub spec: SystemSpec,
    /// The server configuration under test.
    pub config: ServerConfig,
    /// Simulated time discarded before measuring.
    pub warmup: SimDuration,
    /// Simulated time measured.
    pub measure: SimDuration,
}

impl MeasureJob {
    /// Bundles the four inputs of one measurement.
    pub fn new(
        spec: SystemSpec,
        config: ServerConfig,
        warmup: SimDuration,
        measure: SimDuration,
    ) -> Self {
        MeasureJob {
            spec,
            config,
            warmup,
            measure,
        }
    }

    fn key(&self) -> CacheKey {
        CacheKey {
            spec_fingerprint: self.spec.fingerprint(),
            config: self.config,
            warmup_us: self.warmup.as_micros(),
            measure_us: self.measure.as_micros(),
        }
    }

    fn execute(&self) -> PerfSample {
        measure_config(&self.spec, self.config, self.warmup, self.measure)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    spec_fingerprint: u64,
    config: ServerConfig,
    warmup_us: u64,
    measure_us: u64,
}

/// Cache effectiveness counters. `hits`, `misses`, and `clears` are
/// **cumulative over the runner's lifetime** — [`Runner::clear_cache`]
/// drops the cached samples (and resets `entries`) but never the
/// counters, so figure-end summaries report whole-process efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Measurements answered from memory.
    pub hits: u64,
    /// Measurements that ran a simulation.
    pub misses: u64,
    /// Distinct points currently cached.
    pub entries: usize,
    /// Times the cache has been cleared.
    pub clears: u64,
}

/// Work-queue executor for batches of independent measurements, plus a
/// memoizing cache. See the module docs for the determinism contract.
#[derive(Debug)]
pub struct Runner {
    threads: usize,
    cache: Mutex<HashMap<CacheKey, PerfSample>>,
    hits: AtomicU64,
    misses: AtomicU64,
    clears: AtomicU64,
}

impl Runner {
    /// Upper bound on the worker count: measurements are CPU-bound, so
    /// thousands of OS threads (e.g. a typo'd `RAC_THREADS`) would only
    /// add scheduling overhead and risk hitting thread limits.
    pub const MAX_THREADS: usize = 256;

    /// A runner with an explicit worker count (`0` → available
    /// parallelism; capped at [`Runner::MAX_THREADS`]).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            available_parallelism()
        } else {
            threads.min(Self::MAX_THREADS)
        };
        Runner {
            threads,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            clears: AtomicU64::new(0),
        }
    }

    /// A runner honouring `RAC_THREADS` (unset, empty, or `0` →
    /// available parallelism; unparsable values are ignored the same
    /// way).
    pub fn from_env() -> Self {
        Runner::new(threads_from_env())
    }

    /// The process-wide shared runner (and cache). First use pins the
    /// thread count from `RAC_THREADS`.
    pub fn global() -> &'static Runner {
        static GLOBAL: OnceLock<Runner> = OnceLock::new();
        GLOBAL.get_or_init(Runner::from_env)
    }

    /// The worker count this runner was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Measures one point through the cache.
    pub fn measure(
        &self,
        spec: &SystemSpec,
        config: ServerConfig,
        warmup: SimDuration,
        measure: SimDuration,
    ) -> PerfSample {
        let job = MeasureJob::new(spec.clone(), config, warmup, measure);
        let key = job.key();
        let recording = obs::enabled();
        if recording {
            RunnerMetrics::get().jobs.inc();
        }
        if let Some(sample) = self.cache.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if recording {
                RunnerMetrics::get().cache_hits.inc();
            }
            return *sample;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if recording {
            RunnerMetrics::get().cache_misses.inc();
        }
        let started = std::time::Instant::now();
        let sample = job.execute();
        if recording {
            RunnerMetrics::get()
                .job_ms
                .record_ms(started.elapsed().as_secs_f64() * 1_000.0);
        }
        self.cache.lock().unwrap().insert(key, sample);
        sample
    }

    /// Evaluates a batch of measurements across the worker pool,
    /// returning results **in submission order**.
    ///
    /// Duplicate points within the batch (and points already cached)
    /// simulate at most once; every occurrence receives the identical
    /// sample. Output is bit-identical to calling
    /// [`websim::measure_config`] in a loop, at any thread count.
    pub fn run(&self, jobs: &[MeasureJob]) -> Vec<PerfSample> {
        // Resolve the batch against the cache and collapse duplicates:
        // `pending` holds the first job for each distinct uncached key.
        let keys: Vec<CacheKey> = jobs.iter().map(MeasureJob::key).collect();
        let mut pending: Vec<(CacheKey, &MeasureJob)> = Vec::new();
        let mut batch_hits = 0u64;
        {
            let cache = self.cache.lock().unwrap();
            let mut scheduled: HashMap<CacheKey, ()> = HashMap::new();
            for (job, key) in jobs.iter().zip(&keys) {
                if cache.contains_key(key) {
                    batch_hits += 1;
                } else if scheduled.insert(*key, ()).is_none() {
                    pending.push((*key, job));
                } else {
                    batch_hits += 1;
                }
            }
        }
        self.hits.fetch_add(batch_hits, Ordering::Relaxed);
        self.misses
            .fetch_add(pending.len() as u64, Ordering::Relaxed);
        if obs::enabled() {
            let m = RunnerMetrics::get();
            m.jobs.add(jobs.len() as u64);
            m.cache_hits.add(batch_hits);
            m.cache_misses.add(pending.len() as u64);
        }
        // The trace carries only scheduling-independent facts about the
        // batch: its size and its distinct-key count are properties of
        // the job list alone. (Hit/miss counts depend on what other
        // batches already populated the shared cache, so they go to the
        // metrics registry above, never into the trace.)
        obs::trace::emit(|| {
            let distinct = keys.iter().collect::<std::collections::HashSet<_>>().len();
            Event::new("runner_batch")
                .field("jobs", jobs.len() as u64)
                .field("distinct", distinct as u64)
        });

        let fresh = self.execute_parallel(&pending);
        {
            let mut cache = self.cache.lock().unwrap();
            for ((key, _), sample) in pending.iter().zip(&fresh) {
                cache.insert(*key, *sample);
            }
        }

        let cache = self.cache.lock().unwrap();
        keys.iter().map(|key| cache[key]).collect()
    }

    /// Runs `n` arbitrary independent tasks across the worker pool,
    /// returning their results in index order. This is the generic
    /// engine behind [`Runner::run`], exposed for coarse-grained jobs
    /// (e.g. whole figures) that are not single measurements.
    ///
    /// `task` must be deterministic in its index for the parallel ≡
    /// serial guarantee to extend to the caller.
    pub fn run_tasks<R, F>(&self, n: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(&task).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = task(i);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("worker completed every claimed job")
            })
            .collect()
    }

    /// Current cache counters (see [`CacheStats`]: `hits`/`misses`/
    /// `clears` are cumulative and survive [`Runner::clear_cache`]).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.lock().unwrap().len(),
            clears: self.clears.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached sample (counters keep accumulating).
    pub fn clear_cache(&self) {
        self.cache.lock().unwrap().clear();
        self.clears.fetch_add(1, Ordering::Relaxed);
        if obs::enabled() {
            RunnerMetrics::get().cache_clears.inc();
        }
    }

    fn execute_parallel(&self, pending: &[(CacheKey, &MeasureJob)]) -> Vec<PerfSample> {
        if !obs::enabled() {
            return self.run_tasks(pending.len(), |i| pending[i].1.execute());
        }
        let m = RunnerMetrics::get();
        m.queue_depth.add(pending.len() as i64);
        self.run_tasks(pending.len(), |i| {
            // One profiler frame per queue job; worker threads root
            // their own stacks, so the path stays "runner_job".
            let _span = obs::Span::start("runner_job");
            let started = std::time::Instant::now();
            let sample = pending[i].1.execute();
            m.job_ms
                .record_ms(started.elapsed().as_secs_f64() * 1_000.0);
            m.queue_depth.add(-1);
            sample
        })
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => v.trim().parse().unwrap_or(0),
        Err(_) => 0,
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A batched measurement source: the seam between the agent-side
/// pipelines (policy initialization, sensitivity analysis) and however
/// measurements are produced — live simulation through a [`Runner`], a
/// closure over a synthetic landscape in tests, or a recorded trace.
///
/// The blanket impl keeps every existing `FnMut(&ServerConfig) -> f64`
/// call site working unchanged; [`SimMeasurer`] adds the parallel,
/// cached path.
pub trait Measure {
    /// Measures one configuration (mean response time, milliseconds).
    fn measure(&mut self, config: &ServerConfig) -> f64;

    /// Measures a batch of configurations, in order. Implementations
    /// may evaluate concurrently but must return results positionally
    /// identical to measuring one at a time.
    fn measure_batch(&mut self, configs: &[ServerConfig]) -> Vec<f64> {
        configs.iter().map(|c| self.measure(c)).collect()
    }
}

impl<F: FnMut(&ServerConfig) -> f64> Measure for F {
    fn measure(&mut self, config: &ServerConfig) -> f64 {
        self(config)
    }
}

/// [`Measure`] backed by the simulator through a [`Runner`]: batches
/// fan out across workers and land in the process-wide cache.
///
/// # Example
///
/// ```
/// use rac::runner::{Measure, Runner, SimMeasurer};
/// use simkernel::SimDuration;
/// use websim::{ServerConfig, SystemSpec};
///
/// let spec = SystemSpec::default().with_clients(30);
/// let mut m = SimMeasurer::new(spec, SimDuration::from_secs(10), SimDuration::from_secs(30));
/// let ms = m.measure(&ServerConfig::default());
/// assert!(ms.is_finite() && ms > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimMeasurer {
    spec: SystemSpec,
    warmup: SimDuration,
    measure: SimDuration,
    runner: &'static Runner,
}

impl SimMeasurer {
    /// A measurer over `spec` using the [global runner](Runner::global).
    pub fn new(spec: SystemSpec, warmup: SimDuration, measure: SimDuration) -> Self {
        SimMeasurer {
            spec,
            warmup,
            measure,
            runner: Runner::global(),
        }
    }

    /// Same, but on an explicit runner (tests use private runners to
    /// control cache contents).
    pub fn on_runner(
        runner: &'static Runner,
        spec: SystemSpec,
        warmup: SimDuration,
        measure: SimDuration,
    ) -> Self {
        SimMeasurer {
            spec,
            warmup,
            measure,
            runner,
        }
    }

    /// The full [`PerfSample`] for one configuration (cached).
    pub fn sample(&self, config: ServerConfig) -> PerfSample {
        self.runner
            .measure(&self.spec, config, self.warmup, self.measure)
    }

    /// The full [`PerfSample`]s for a batch of configurations, in order.
    pub fn sample_batch(&self, configs: &[ServerConfig]) -> Vec<PerfSample> {
        let jobs: Vec<MeasureJob> = configs
            .iter()
            .map(|&c| MeasureJob::new(self.spec.clone(), c, self.warmup, self.measure))
            .collect();
        self.runner.run(&jobs)
    }
}

impl Measure for SimMeasurer {
    fn measure(&mut self, config: &ServerConfig) -> f64 {
        self.sample(*config).mean_response_ms
    }

    fn measure_batch(&mut self, configs: &[ServerConfig]) -> Vec<f64> {
        self.sample_batch(configs)
            .into_iter()
            .map(|s| s.mean_response_ms)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(seed: u64) -> SystemSpec {
        SystemSpec::default().with_clients(20).with_seed(seed)
    }

    fn tiny_jobs(n: u64) -> Vec<MeasureJob> {
        (0..n)
            .map(|i| {
                MeasureJob::new(
                    tiny_spec(i),
                    ServerConfig::default(),
                    SimDuration::from_secs(5),
                    SimDuration::from_secs(20),
                )
            })
            .collect()
    }

    #[test]
    fn thread_count_resolution() {
        assert!(Runner::new(0).threads() >= 1);
        assert_eq!(Runner::new(3).threads(), 3);
    }

    #[test]
    fn batch_matches_serial_bit_for_bit() {
        let jobs = tiny_jobs(5);
        let serial: Vec<PerfSample> = jobs.iter().map(MeasureJob::execute).collect();
        for threads in [1, 2, 8] {
            let runner = Runner::new(threads);
            assert_eq!(runner.run(&jobs), serial, "threads={threads}");
        }
    }

    #[test]
    fn duplicates_simulate_once() {
        let runner = Runner::new(4);
        let job = tiny_jobs(1).remove(0);
        let batch = vec![job.clone(), job.clone(), job.clone()];
        let out = runner.run(&batch);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
        let stats = runner.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cache_hit_equals_fresh_simulation() {
        let runner = Runner::new(2);
        let job = tiny_jobs(1).remove(0);
        let first = runner.measure(&job.spec, job.config, job.warmup, job.measure);
        let hit = runner.measure(&job.spec, job.config, job.warmup, job.measure);
        runner.clear_cache();
        let fresh = runner.measure(&job.spec, job.config, job.warmup, job.measure);
        assert_eq!(first, hit);
        assert_eq!(first, fresh);
        assert_eq!(runner.cache_stats().hits, 1);
        assert_eq!(runner.cache_stats().misses, 2);
    }

    #[test]
    fn cache_stats_survive_clear() {
        let runner = Runner::new(2);
        let jobs = tiny_jobs(3);
        runner.run(&jobs); // 3 misses
        runner.run(&jobs); // 3 hits
        let before = runner.cache_stats();
        assert_eq!((before.hits, before.misses), (3, 3));
        assert_eq!(before.entries, 3);
        assert_eq!(before.clears, 0);

        runner.clear_cache();
        let after = runner.cache_stats();
        // Cumulative counters are untouched; only the stored samples go.
        assert_eq!((after.hits, after.misses), (before.hits, before.misses));
        assert_eq!(after.entries, 0);
        assert_eq!(after.clears, 1);

        runner.run(&jobs); // re-simulates: 3 more misses
        let refilled = runner.cache_stats();
        assert_eq!(refilled.misses, 6);
        assert_eq!(refilled.hits, 3);
        assert_eq!(refilled.entries, 3);
    }

    #[test]
    fn run_tasks_preserves_index_order() {
        let runner = Runner::new(4);
        let out = runner.run_tasks(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_tasks_empty_and_single() {
        let runner = Runner::new(4);
        assert!(runner.run_tasks(0, |i| i).is_empty());
        assert_eq!(runner.run_tasks(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn closure_satisfies_measure_trait() {
        fn takes_measure(mut m: impl Measure) -> Vec<f64> {
            m.measure_batch(&[ServerConfig::default(); 3])
        }
        let out = takes_measure(|_: &ServerConfig| 42.0);
        assert_eq!(out, vec![42.0; 3]);
    }

    #[test]
    fn sim_measurer_batch_matches_singles() {
        let spec = tiny_spec(9);
        let mut m = SimMeasurer::new(spec, SimDuration::from_secs(5), SimDuration::from_secs(20));
        let configs = [
            ServerConfig::default(),
            ServerConfig::default()
                .with(websim::Param::MaxClients, 100)
                .unwrap(),
        ];
        let batch = m.measure_batch(&configs);
        let singles: Vec<f64> = configs.iter().map(|c| m.measure(c)).collect();
        assert_eq!(batch, singles);
    }
}
