//! Discretization of the eight-parameter configuration space.

use rl::IndexSpace;
use websim::{Param, ServerConfig};

/// A discretized lattice over the eight Table-1 parameters.
///
/// Each parameter's range is split into `levels` evenly spaced points
/// (endpoints included). A *state* of the RAC Markov decision process is
/// a coordinate vector on this lattice; actions move one coordinate one
/// step (Section 3.2). The paper uses fine granularity online and coarse
/// granularity during offline training-data collection.
///
/// # Example
///
/// ```
/// use rac::ConfigLattice;
/// use websim::{Param, ServerConfig};
///
/// let lattice = ConfigLattice::new(5);
/// assert_eq!(lattice.num_states(), 5usize.pow(8));
///
/// // The Table-1 default maps to a state and back to real values.
/// let s = lattice.state_of(&ServerConfig::default());
/// let cfg = lattice.config_at(s);
/// assert!(cfg.get(Param::MaxClients) >= 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigLattice {
    /// Grid values per parameter, in [`Param::ALL`] order.
    grids: Vec<Vec<u32>>,
    space: IndexSpace,
}

impl ConfigLattice {
    /// Creates a lattice with `levels` points per parameter.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn new(levels: usize) -> Self {
        assert!(levels >= 2, "need at least two levels per parameter");
        let grids: Vec<Vec<u32>> = Param::ALL
            .iter()
            .map(|p| {
                let (lo, hi) = p.range();
                (0..levels)
                    .map(|i| {
                        let t = i as f64 / (levels - 1) as f64;
                        (lo as f64 + t * (hi - lo) as f64).round() as u32
                    })
                    .collect()
            })
            .collect();
        let space = IndexSpace::new(vec![levels; Param::ALL.len()]);
        ConfigLattice { grids, space }
    }

    /// Number of grid points per parameter.
    pub fn levels(&self) -> usize {
        self.grids[0].len()
    }

    /// Number of lattice states (`levels^8`).
    pub fn num_states(&self) -> usize {
        self.space.len()
    }

    /// The underlying index space.
    pub fn space(&self) -> &IndexSpace {
        &self.space
    }

    /// The real value of parameter `p` at grid position `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is out of range.
    pub fn value_at(&self, p: Param, coord: usize) -> u32 {
        self.grids[p.index()][coord]
    }

    /// The grid position of parameter `p` closest to `value`.
    pub fn coord_of(&self, p: Param, value: u32) -> usize {
        let grid = &self.grids[p.index()];
        grid.iter()
            .enumerate()
            .min_by_key(|(_, &g)| (g as i64 - value as i64).abs())
            .map(|(i, _)| i)
            .expect("grids are non-empty")
    }

    /// Maps a configuration to the nearest lattice state.
    pub fn state_of(&self, config: &ServerConfig) -> usize {
        let coords: Vec<usize> = Param::ALL
            .iter()
            .map(|&p| self.coord_of(p, config.get(p)))
            .collect();
        self.space.encode(&coords)
    }

    /// The configuration at a lattice state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn config_at(&self, state: usize) -> ServerConfig {
        let coords = self.space.decode(state);
        self.config_at_coords(&coords)
    }

    /// The configuration at explicit coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are malformed.
    pub fn config_at_coords(&self, coords: &[usize]) -> ServerConfig {
        let mut values = [0u32; 8];
        for (param, &c) in Param::ALL.iter().zip(coords) {
            values[param.index()] = self.value_at(*param, c);
        }
        ServerConfig::from_values(values).expect("grid values are in range")
    }

    /// Normalized position (0..1) of each coordinate — the feature vector
    /// used by the regression predictor.
    pub fn normalized(&self, coords: &[usize]) -> Vec<f64> {
        let n = (self.levels() - 1) as f64;
        coords.iter().map(|&c| c as f64 / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grid_spans_table_1_ranges() {
        let l = ConfigLattice::new(5);
        for p in Param::ALL {
            let (lo, hi) = p.range();
            assert_eq!(l.value_at(p, 0), lo, "{p} low endpoint");
            assert_eq!(l.value_at(p, 4), hi, "{p} high endpoint");
        }
    }

    #[test]
    fn grid_is_monotone() {
        let l = ConfigLattice::new(7);
        for p in Param::ALL {
            for i in 1..7 {
                assert!(
                    l.value_at(p, i) > l.value_at(p, i - 1),
                    "{p} grid not increasing"
                );
            }
        }
    }

    #[test]
    fn coord_of_picks_nearest() {
        let l = ConfigLattice::new(5);
        // MaxClients grid: 5, 154, 302(3?), 451, 600 — 150 is closest to 154.
        assert_eq!(l.coord_of(Param::MaxClients, 150), 1);
        assert_eq!(l.coord_of(Param::MaxClients, 5), 0);
        assert_eq!(l.coord_of(Param::MaxClients, 600), 4);
    }

    #[test]
    fn state_config_round_trip() {
        let l = ConfigLattice::new(5);
        for state in [0usize, 1, 100, l.num_states() - 1] {
            let cfg = l.config_at(state);
            assert_eq!(l.state_of(&cfg), state);
        }
    }

    #[test]
    fn normalized_unit_range() {
        let l = ConfigLattice::new(5);
        let norm = l.normalized(&[0, 1, 2, 3, 4, 0, 2, 4]);
        assert_eq!(norm[0], 0.0);
        assert_eq!(norm[4], 1.0);
        assert_eq!(norm[2], 0.5);
    }

    #[test]
    #[should_panic(expected = "two levels")]
    fn one_level_panics() {
        ConfigLattice::new(1);
    }

    proptest! {
        #[test]
        fn prop_round_trip(levels in 2usize..6, seed: u64) {
            let l = ConfigLattice::new(levels);
            let state = (seed as usize) % l.num_states();
            prop_assert_eq!(l.state_of(&l.config_at(state)), state);
        }

        #[test]
        fn prop_configs_valid(levels in 2usize..6, seed: u64) {
            let l = ConfigLattice::new(levels);
            let state = (seed as usize) % l.num_states();
            let cfg = l.config_at(state);
            for p in Param::ALL {
                let (lo, hi) = p.range();
                let v = cfg.get(p);
                prop_assert!(v >= lo && v <= hi);
            }
        }
    }
}
