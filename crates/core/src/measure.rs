//! Hardened measurement channel: retry budget, per-iteration timeout
//! handling, and a circuit breaker over sample acquisition.
//!
//! The paper assumes every iteration yields a trustworthy response-time
//! measurement; the scenario engine can already *inject* measurement
//! faults (`blackout`, `timeout`). This module supplies the defensive
//! half: acquisition is wrapped in a deterministic retry budget, and a
//! circuit breaker trips after consecutive failed acquisitions so the
//! experiment loop can hold configuration and freeze learning until the
//! channel recovers (degraded mode).
//!
//! The breaker is the classic three-state machine:
//!
//! ```text
//!            trip_after consecutive failures
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                           │ cooldown intervals
//!     │ probe succeeds                            ▼
//!     └──────────────────────────────────────  HalfOpen
//!                       probe fails: back to Open
//! ```
//!
//! Everything is a pure function of the fault directives and the
//! settings — no wall-clock time, no OS randomness — so runs remain
//! bit-identical at any `RAC_THREADS` and the channel state can be
//! reconstructed exactly by checkpoint replay.

use std::sync::OnceLock;

use obs::Event;
use websim::PerfSample;

/// Tunables of the [`MeasurementChannel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSettings {
    /// Extra acquisition attempts allowed per interval after the first
    /// one fails. A single-timeout fault is absorbed by one retry; a
    /// blackout defeats any finite budget.
    pub retry_budget: usize,
    /// Consecutive failed acquisitions (after retries) that trip the
    /// breaker from `Closed` to `Open`.
    pub trip_after: usize,
    /// Intervals the breaker stays `Open` before probing (`HalfOpen`).
    pub cooldown: usize,
}

impl Default for ChannelSettings {
    fn default() -> Self {
        ChannelSettings {
            retry_budget: 1,
            trip_after: 2,
            cooldown: 1,
        }
    }
}

/// Circuit-breaker state. The channel is *degraded* whenever the state
/// is not [`Closed`](BreakerState::Closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: samples flow, failures are counted.
    Closed,
    /// Tripped: acquisition is suspended for the cooldown.
    Open,
    /// Cooldown elapsed: the next interval performs a probe acquisition.
    HalfOpen,
}

/// A state-machine edge taken during one [`MeasurementChannel::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// `Closed → Open`: too many consecutive failures.
    Tripped,
    /// `Open → HalfOpen`: cooldown elapsed, probing next.
    Probing,
    /// `HalfOpen → Closed`: probe succeeded, channel healthy again.
    Recovered,
    /// `HalfOpen → Open`: probe failed, breaker re-opened.
    Reopened,
}

/// Outcome of one interval's sample acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct Acquisition {
    /// The sample, when acquisition succeeded (possibly via retry).
    pub sample: Option<PerfSample>,
    /// Acquisition attempts made this interval (0 while `Open`).
    pub attempts: usize,
    /// Whether a retry recovered the sample after a first-attempt
    /// timeout.
    pub retried: bool,
    /// Consecutive failed acquisitions after this interval.
    pub failures: usize,
    /// Degraded intervals so far in the current outage (meaningful on
    /// [`BreakerTransition::Recovered`]).
    pub outage_iters: usize,
    /// Breaker edge taken this interval, if any.
    pub transition: Option<BreakerTransition>,
}

/// Wraps per-interval sample acquisition with a deterministic retry
/// budget and a circuit breaker.
///
/// The experiment loop feeds each interval's raw measurement through
/// [`acquire`](Self::acquire); scenario fault events steer the channel
/// via [`set_blackout`](Self::set_blackout) and
/// [`arm_timeout`](Self::arm_timeout).
///
/// # Example
///
/// ```
/// use rac::{BreakerState, MeasurementChannel};
/// use websim::PerfSample;
///
/// let mut ch = MeasurementChannel::default();
/// ch.set_blackout(true);
/// let raw = PerfSample::from_parts(vec![500.0; 10], 0, 60.0);
/// ch.acquire(raw); // fails: consecutive = 1
/// let acq = ch.acquire(raw); // fails again: breaker trips
/// assert!(acq.sample.is_none());
/// assert_eq!(ch.state(), BreakerState::Open);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementChannel {
    settings: ChannelSettings,
    state: BreakerState,
    consecutive_failures: usize,
    cooldown_left: usize,
    outage_iters: usize,
    blackout: bool,
    timeout_next: bool,
}

impl Default for MeasurementChannel {
    fn default() -> Self {
        MeasurementChannel::new(ChannelSettings::default())
    }
}

impl MeasurementChannel {
    /// Creates a closed (healthy) channel. `trip_after` and `cooldown`
    /// are clamped to at least 1.
    pub fn new(mut settings: ChannelSettings) -> Self {
        settings.trip_after = settings.trip_after.max(1);
        settings.cooldown = settings.cooldown.max(1);
        MeasurementChannel {
            settings,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            outage_iters: 0,
            blackout: false,
            timeout_next: false,
        }
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the channel is degraded (breaker not `Closed`). While
    /// degraded the experiment loop holds configuration and skips the
    /// tuner entirely.
    pub fn is_open(&self) -> bool {
        self.state != BreakerState::Closed
    }

    /// Starts (`true`) or lifts (`false`) a measurement blackout: while
    /// active every acquisition attempt fails, defeating the retry
    /// budget. Driven by the scenario `blackout` fault directive.
    pub fn set_blackout(&mut self, on: bool) {
        self.blackout = on;
    }

    /// Arms a one-shot acquisition timeout for the next interval: the
    /// first attempt fails and a retry succeeds if the budget allows.
    /// Driven by the scenario `timeout` fault directive.
    pub fn arm_timeout(&mut self) {
        self.timeout_next = true;
    }

    /// One attempt sequence under the current fault flags. Returns
    /// `(sample, attempts, retried)`.
    fn attempt(&self, raw: PerfSample, timeout: bool) -> (Option<PerfSample>, usize, bool) {
        if self.blackout {
            // Every attempt fails; the whole budget is burned.
            (None, 1 + self.settings.retry_budget, false)
        } else if timeout {
            if self.settings.retry_budget >= 1 {
                (Some(raw), 2, true)
            } else {
                (None, 1, false)
            }
        } else {
            (Some(raw), 1, false)
        }
    }

    /// Runs one interval's acquisition through the breaker state
    /// machine. `raw` is the measurement the system produced this
    /// interval; it is discarded when acquisition fails or the breaker
    /// is `Open`.
    pub fn acquire(&mut self, raw: PerfSample) -> Acquisition {
        let timeout = std::mem::take(&mut self.timeout_next);
        match self.state {
            BreakerState::Closed => {
                let (sample, attempts, retried) = self.attempt(raw, timeout);
                if sample.is_some() {
                    self.consecutive_failures = 0;
                    self.done(sample, attempts, retried, None)
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.settings.trip_after {
                        self.state = BreakerState::Open;
                        self.cooldown_left = self.settings.cooldown;
                        self.outage_iters = 1;
                        self.done(None, attempts, retried, Some(BreakerTransition::Tripped))
                    } else {
                        self.done(None, attempts, retried, None)
                    }
                }
            }
            BreakerState::Open => {
                self.outage_iters += 1;
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                let transition = if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    Some(BreakerTransition::Probing)
                } else {
                    None
                };
                self.done(None, 0, false, transition)
            }
            BreakerState::HalfOpen => {
                let (sample, attempts, retried) = self.attempt(raw, timeout);
                if sample.is_some() {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    let acq = self.done(
                        sample,
                        attempts,
                        retried,
                        Some(BreakerTransition::Recovered),
                    );
                    self.outage_iters = 0;
                    acq
                } else {
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.settings.cooldown;
                    self.consecutive_failures += 1;
                    self.outage_iters += 1;
                    self.done(None, attempts, retried, Some(BreakerTransition::Reopened))
                }
            }
        }
    }

    fn done(
        &self,
        sample: Option<PerfSample>,
        attempts: usize,
        retried: bool,
        transition: Option<BreakerTransition>,
    ) -> Acquisition {
        Acquisition {
            sample,
            attempts,
            retried,
            failures: self.consecutive_failures,
            outage_iters: self.outage_iters,
            transition,
        }
    }

    /// Serializes the full channel state (settings, breaker position,
    /// fault flags) for checkpointing.
    pub fn encode(&self, w: &mut ckpt::wire::Writer) {
        w.put_usize(self.settings.retry_budget);
        w.put_usize(self.settings.trip_after);
        w.put_usize(self.settings.cooldown);
        w.put_usize(match self.state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        });
        w.put_usize(self.consecutive_failures);
        w.put_usize(self.cooldown_left);
        w.put_usize(self.outage_iters);
        w.put_bool(self.blackout);
        w.put_bool(self.timeout_next);
    }

    /// Reconstructs a channel from [`encode`](Self::encode)d bytes,
    /// rejecting semantically impossible states.
    pub fn decode(r: &mut ckpt::wire::Reader<'_>) -> Result<Self, ckpt::CkptError> {
        let corrupt = |detail: String| ckpt::CkptError::Corrupt { detail };
        let settings = ChannelSettings {
            retry_budget: r.get_usize()?,
            trip_after: r.get_usize()?,
            cooldown: r.get_usize()?,
        };
        if settings.trip_after == 0 || settings.cooldown == 0 {
            return Err(corrupt(
                "channel trip_after/cooldown must be positive".to_string(),
            ));
        }
        let state = match r.get_usize()? {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            n => return Err(corrupt(format!("breaker state {n} out of range"))),
        };
        Ok(MeasurementChannel {
            settings,
            state,
            consecutive_failures: r.get_usize()?,
            cooldown_left: r.get_usize()?,
            outage_iters: r.get_usize()?,
            blackout: r.get_bool()?,
            timeout_next: r.get_bool()?,
        })
    }
}

/// Resolved-once handles for the guardrail metrics.
pub(crate) struct GuardMetrics {
    pub trips: obs::Counter,
    pub recoveries: obs::Counter,
    pub reopens: obs::Counter,
    pub retries: obs::Counter,
    pub acquire_failures: obs::Counter,
    pub degraded_iterations: obs::Counter,
    pub rollbacks: obs::Counter,
    pub breaker_open: obs::Gauge,
}

impl GuardMetrics {
    pub(crate) fn get() -> &'static GuardMetrics {
        static METRICS: OnceLock<GuardMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = obs::Registry::global();
            GuardMetrics {
                trips: r.counter("rac_guard_trips_total"),
                recoveries: r.counter("rac_guard_recoveries_total"),
                reopens: r.counter("rac_guard_reopens_total"),
                retries: r.counter("rac_guard_retries_total"),
                acquire_failures: r.counter("rac_guard_acquire_failures_total"),
                degraded_iterations: r.counter("rac_guard_degraded_iterations_total"),
                rollbacks: r.counter("rac_guard_rollbacks_total"),
                breaker_open: r.gauge("rac_guard_breaker_open"),
            }
        })
    }
}

/// Records one acquisition's metrics and trace events. Called only from
/// *live* experiment loops — checkpoint replay reconstructs channel
/// state silently, exactly like it suppresses decision events.
pub(crate) fn note_acquisition(acq: &Acquisition, iteration: usize, degraded_now: bool) {
    if obs::enabled() {
        let m = GuardMetrics::get();
        if acq.retried {
            m.retries.inc();
        }
        if acq.attempts > 0 && acq.sample.is_none() {
            m.acquire_failures.inc();
        }
        if degraded_now {
            m.degraded_iterations.inc();
        }
        match acq.transition {
            Some(BreakerTransition::Tripped) => m.trips.inc(),
            Some(BreakerTransition::Recovered) => m.recoveries.inc(),
            Some(BreakerTransition::Reopened) => m.reopens.inc(),
            _ => {}
        }
        m.breaker_open.set(degraded_now as i64);
        // Mirror the breaker into the live /healthz cell (atomics only;
        // health state never feeds the trace).
        let health = obs::health::global();
        health.set_breaker_open(degraded_now);
        health.set_degraded(degraded_now);
        // Each measurement acquisition is forward motion even when the
        // iteration counter stalls inside a long interval, so beat the
        // supervisor heartbeat here too.
        health.beat();
    }
    let iter = (iteration + 1) as u64;
    if acq.retried {
        obs::trace::emit(|| {
            Event::new("guardrail")
                .field("iter", iter)
                .field("action", "retry")
                .field("detail", "timeout recovered by retry")
        });
    }
    if let Some(t) = acq.transition {
        obs::trace::emit(|| {
            let (action, detail) = match t {
                BreakerTransition::Tripped => (
                    "trip",
                    format!("{} consecutive acquisition failures", acq.failures),
                ),
                BreakerTransition::Probing => {
                    ("probe", "cooldown elapsed; probing channel".to_string())
                }
                BreakerTransition::Recovered => (
                    "recover",
                    format!(
                        "channel healthy after {} degraded intervals",
                        acq.outage_iters
                    ),
                ),
                BreakerTransition::Reopened => {
                    ("reopen", "probe failed; breaker reopened".to_string())
                }
            };
            Event::new("guardrail")
                .field("iter", iter)
                .field("action", action)
                .field("detail", detail)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(rt: f64) -> PerfSample {
        PerfSample::from_parts(vec![rt; 10], 0, 60.0)
    }

    #[test]
    fn healthy_channel_passes_samples_through() {
        let mut ch = MeasurementChannel::default();
        for _ in 0..5 {
            let acq = ch.acquire(raw(400.0));
            assert_eq!(acq.attempts, 1);
            assert!(!acq.retried);
            assert_eq!(acq.sample.unwrap().mean_response_ms, 400.0);
            assert_eq!(ch.state(), BreakerState::Closed);
        }
    }

    #[test]
    fn timeout_is_absorbed_by_one_retry() {
        let mut ch = MeasurementChannel::default();
        ch.arm_timeout();
        let acq = ch.acquire(raw(400.0));
        assert!(acq.retried);
        assert_eq!(acq.attempts, 2);
        assert!(acq.sample.is_some());
        assert_eq!(ch.state(), BreakerState::Closed);
        // The timeout was one-shot.
        let acq = ch.acquire(raw(400.0));
        assert!(!acq.retried);
        assert_eq!(acq.attempts, 1);
    }

    #[test]
    fn timeout_without_budget_fails_but_does_not_trip_alone() {
        let mut ch = MeasurementChannel::new(ChannelSettings {
            retry_budget: 0,
            ..ChannelSettings::default()
        });
        ch.arm_timeout();
        let acq = ch.acquire(raw(400.0));
        assert!(acq.sample.is_none());
        assert_eq!(acq.failures, 1);
        assert_eq!(ch.state(), BreakerState::Closed);
        // A healthy interval resets the count.
        let acq = ch.acquire(raw(400.0));
        assert_eq!(acq.failures, 0);
    }

    #[test]
    fn blackout_trips_probes_and_recovers() {
        let mut ch = MeasurementChannel::default(); // trip_after 2, cooldown 1
        ch.set_blackout(true);
        assert_eq!(ch.acquire(raw(1.0)).transition, None);
        let acq = ch.acquire(raw(1.0));
        assert_eq!(acq.transition, Some(BreakerTransition::Tripped));
        assert_eq!(ch.state(), BreakerState::Open);
        // Open: cooldown burns down, then probe is scheduled.
        let acq = ch.acquire(raw(1.0));
        assert_eq!(acq.attempts, 0);
        assert_eq!(acq.transition, Some(BreakerTransition::Probing));
        assert_eq!(ch.state(), BreakerState::HalfOpen);
        // Probe under blackout fails: back to Open.
        let acq = ch.acquire(raw(1.0));
        assert_eq!(acq.transition, Some(BreakerTransition::Reopened));
        assert_eq!(ch.state(), BreakerState::Open);
        // Fault clears; next probe succeeds.
        ch.set_blackout(false);
        let acq = ch.acquire(raw(1.0));
        assert_eq!(acq.transition, Some(BreakerTransition::Probing));
        let acq = ch.acquire(raw(2.0));
        assert_eq!(acq.transition, Some(BreakerTransition::Recovered));
        assert!(acq.outage_iters >= 3, "outage spanned {}", acq.outage_iters);
        assert_eq!(ch.state(), BreakerState::Closed);
        assert!(acq.sample.is_some());
    }

    #[test]
    fn channel_state_round_trips_through_wire() {
        let mut ch = MeasurementChannel::default();
        ch.set_blackout(true);
        ch.arm_timeout();
        ch.acquire(raw(1.0));
        ch.acquire(raw(1.0));
        ch.acquire(raw(1.0));
        let mut w = ckpt::wire::Writer::new();
        ch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ckpt::wire::Reader::new(&bytes, "test");
        let back = MeasurementChannel::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, ch);
        // Re-encoding produces identical bytes.
        let mut w2 = ckpt::wire::Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn decode_rejects_impossible_state() {
        let mut w = ckpt::wire::Writer::new();
        w.put_usize(1);
        w.put_usize(2);
        w.put_usize(1);
        w.put_usize(9); // invalid breaker discriminant
        w.put_usize(0);
        w.put_usize(0);
        w.put_usize(0);
        w.put_bool(false);
        w.put_bool(false);
        let bytes = w.into_bytes();
        let mut r = ckpt::wire::Reader::new(&bytes, "test");
        assert!(MeasurementChannel::decode(&mut r).is_err());
    }
}
