//! The comparison tuners of Section 5.2: static default configuration
//! and the trial-and-error (one-parameter-at-a-time) method.

use websim::{Param, PerfSample, ServerConfig};

use crate::agent::Tuner;
use crate::context::ViolationDetector;
use crate::param::ConfigLattice;

/// The do-nothing baseline: the system stays at the Table-1 defaults.
///
/// # Example
///
/// ```
/// use rac::{StaticDefault, Tuner};
/// use websim::{PerfSample, ServerConfig};
///
/// let mut t = StaticDefault::new();
/// let s = PerfSample::from_parts(vec![1.0], 0, 1.0);
/// assert_eq!(t.next_config(&s), ServerConfig::default());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticDefault;

impl StaticDefault {
    /// Creates the baseline.
    pub fn new() -> Self {
        StaticDefault
    }
}

impl Tuner for StaticDefault {
    fn name(&self) -> &str {
        "static default"
    }

    fn next_config(&mut self, _observed: &PerfSample) -> ServerConfig {
        ServerConfig::default()
    }
}

/// The trial-and-error method an administrator might use (Section 5.2):
/// tune one parameter at a time — sweep its candidate values for one
/// interval each, fix the best, move to the next parameter — assuming a
/// concave-upward effect of each parameter and independence between
/// them. Prone to local optima, as the paper observes.
///
/// Parameters are visited in rough order of expected impact
/// (`MaxClients` and `MaxThreads` first). When a sustained performance
/// shift is detected after the sweep finished (a context change), the
/// sweep restarts from the then-best configuration.
///
/// # Example
///
/// ```
/// use rac::{TrialAndError, Tuner};
/// use websim::PerfSample;
///
/// let mut t = TrialAndError::new(4);
/// let s = PerfSample::from_parts(vec![500.0; 5], 0, 300.0);
/// let cfg = t.next_config(&s); // starts probing MaxClients
/// assert_eq!(t.name(), "trial-and-error");
/// # let _ = cfg;
/// ```
#[derive(Debug, Clone)]
pub struct TrialAndError {
    lattice: ConfigLattice,
    /// Parameter visit order.
    order: [Param; 8],
    /// Best configuration found so far (fixed parameters).
    best_config: ServerConfig,
    /// Index into `order` of the parameter under test.
    param_pos: usize,
    /// Next candidate level to try for the current parameter.
    next_level: usize,
    /// Best (rt, level) observed for the current parameter.
    best_for_param: Option<(f64, usize)>,
    /// The level whose measurement we are waiting for.
    pending_level: Option<usize>,
    /// Set once all parameters have been processed.
    done: bool,
    detector: ViolationDetector,
}

impl TrialAndError {
    /// Impact-ordered parameter schedule.
    const ORDER: [Param; 8] = [
        Param::MaxClients,
        Param::MaxThreads,
        Param::KeepaliveTimeout,
        Param::SessionTimeout,
        Param::MinSpareServers,
        Param::MaxSpareServers,
        Param::MinSpareThreads,
        Param::MaxSpareThreads,
    ];

    /// Creates the tuner probing `levels` candidate values per
    /// parameter.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn new(levels: usize) -> Self {
        TrialAndError {
            lattice: ConfigLattice::new(levels),
            order: Self::ORDER,
            best_config: ServerConfig::default(),
            param_pos: 0,
            next_level: 0,
            best_for_param: None,
            pending_level: None,
            done: false,
            detector: ViolationDetector::paper_defaults().with_outlier_guard(4.0),
        }
    }

    /// Returns `true` once every parameter has been tuned.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The best configuration found so far.
    pub fn best_config(&self) -> ServerConfig {
        self.best_config
    }

    fn candidate(&self, level: usize) -> ServerConfig {
        let p = self.order[self.param_pos];
        self.best_config
            .with(p, self.lattice.value_at(p, level))
            .expect("lattice values are in range")
    }

    fn restart(&mut self) {
        self.param_pos = 0;
        self.next_level = 0;
        self.best_for_param = None;
        self.pending_level = None;
        self.done = false;
    }

    /// Writes the tuner's complete sweep state into a snapshot. The
    /// parameter order is a compile-time constant, so only the cursor
    /// into it is serialized.
    pub fn save_state(&self, snap: &mut ckpt::SnapshotWriter) {
        snap.section(SECTION_TAE, |w| {
            w.put_usize(self.lattice.levels());
            crate::persist::encode_config(w, &self.best_config);
            w.put_usize(self.param_pos);
            w.put_usize(self.next_level);
            match self.best_for_param {
                Some((rt, level)) => {
                    w.put_bool(true);
                    w.put_f64(rt);
                    w.put_usize(level);
                }
                None => w.put_bool(false),
            }
            match self.pending_level {
                Some(level) => {
                    w.put_bool(true);
                    w.put_usize(level);
                }
                None => w.put_bool(false),
            }
            w.put_bool(self.done);
            self.detector.encode(w);
        });
    }

    /// Reconstructs a tuner from a snapshot written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ckpt::CkptError`] when the section is missing,
    /// corrupt, or decodes to an impossible sweep position.
    pub fn restore(snap: &ckpt::Snapshot) -> Result<Self, ckpt::CkptError> {
        let corrupt = |detail: String| ckpt::CkptError::Corrupt { detail };
        let mut r = snap.section(SECTION_TAE)?;
        let levels = r.get_usize()?;
        if !(2..=64).contains(&levels) {
            return Err(corrupt(format!("lattice levels {levels} out of range")));
        }
        let best_config = crate::persist::decode_config(&mut r)?;
        let param_pos = r.get_usize()?;
        let next_level = r.get_usize()?;
        if param_pos >= Self::ORDER.len() || next_level > levels {
            return Err(corrupt(format!(
                "sweep cursor param {param_pos}/levels {next_level} out of range"
            )));
        }
        let best_for_param = if r.get_bool()? {
            let rt = r.get_f64()?;
            let level = r.get_usize()?;
            if level >= levels {
                return Err(corrupt(format!("best level {level} out of range")));
            }
            Some((rt, level))
        } else {
            None
        };
        let pending_level = if r.get_bool()? {
            let level = r.get_usize()?;
            if level >= levels {
                return Err(corrupt(format!("pending level {level} out of range")));
            }
            Some(level)
        } else {
            None
        };
        let done = r.get_bool()?;
        let detector = ViolationDetector::decode(&mut r)?;
        r.finish()?;
        Ok(TrialAndError {
            lattice: ConfigLattice::new(levels),
            order: Self::ORDER,
            best_config,
            param_pos,
            next_level,
            best_for_param,
            pending_level,
            done,
            detector,
        })
    }
}

/// Section name of a [`TrialAndError`] snapshot.
pub(crate) const SECTION_TAE: &str = "tae.state";

impl Tuner for TrialAndError {
    fn name(&self) -> &str {
        "trial-and-error"
    }

    fn next_config(&mut self, observed: &PerfSample) -> ServerConfig {
        let rt = observed.mean_response_ms;

        // Score the candidate we asked for last interval.
        if let Some(level) = self.pending_level.take() {
            let better = match self.best_for_param {
                Some((best_rt, _)) => rt < best_rt,
                None => true,
            };
            if better && rt.is_finite() {
                self.best_for_param = Some((rt, level));
            }
        }

        if self.done {
            // Keep watching for a context change; restart the sweep from
            // the current best when one is detected.
            if self.detector.observe(rt) {
                self.restart();
            } else {
                return self.best_config;
            }
        }

        let levels = self.lattice.levels();
        if self.next_level >= levels {
            // Current parameter finished: fix its best value.
            if let Some((_, best_level)) = self.best_for_param.take() {
                self.best_config = self.candidate(best_level);
            }
            self.param_pos += 1;
            self.next_level = 0;
            if self.param_pos >= self.order.len() {
                self.done = true;
                self.param_pos = 0;
                self.detector.reset();
                return self.best_config;
            }
        }

        // Probe the next candidate value.
        let level = self.next_level;
        self.next_level += 1;
        self.pending_level = Some(level);
        self.candidate(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rt: f64) -> PerfSample {
        PerfSample::from_parts(vec![rt; 10], 0, 300.0)
    }

    /// Separable synthetic landscape where trial-and-error succeeds.
    fn separable(cfg: &ServerConfig) -> f64 {
        let m = cfg.max_clients() as f64;
        let t = cfg.max_threads() as f64;
        100.0 + 0.001 * (m - 402.0).powi(2) + 0.001 * (t - 203.0).powi(2)
    }

    /// Landscape with interacting parameters: the global optimum needs
    /// MaxClients and MaxThreads raised *together*; raising either alone
    /// makes things worse, so one-at-a-time tuning gets trapped.
    fn coupled(cfg: &ServerConfig) -> f64 {
        let m = cfg.max_clients() as f64 / 600.0;
        let t = cfg.max_threads() as f64 / 600.0;
        100.0 + 500.0 * (1.0 - m * t) + 300.0 * (m - t).abs()
    }

    fn run(tuner: &mut TrialAndError, landscape: fn(&ServerConfig) -> f64, iters: usize) -> f64 {
        let mut cfg = ServerConfig::default();
        for _ in 0..iters {
            cfg = tuner.next_config(&sample(landscape(&cfg)));
        }
        landscape(&tuner.best_config())
    }

    #[test]
    fn static_default_never_moves() {
        let mut t = StaticDefault::new();
        for rt in [10.0, 10_000.0, f64::INFINITY] {
            assert_eq!(t.next_config(&sample(rt)), ServerConfig::default());
        }
        assert_eq!(t.name(), "static default");
    }

    #[test]
    fn finds_optimum_on_separable_landscape() {
        let mut t = TrialAndError::new(4);
        run(&mut t, separable, 40);
        assert!(t.is_done());
        let best = t.best_config();
        assert_eq!(best.max_clients(), 402, "MaxClients not tuned: {best}");
        assert_eq!(best.max_threads(), 203, "MaxThreads not tuned: {best}");
    }

    #[test]
    fn probes_each_level_of_each_parameter_once() {
        let mut t = TrialAndError::new(3);
        let mut seen = Vec::new();
        let mut cfg = ServerConfig::default();
        for _ in 0..(8 * 3 + 2) {
            cfg = t.next_config(&sample(separable(&cfg)));
            seen.push(cfg);
        }
        assert!(t.is_done());
        // 24 probes then it settles.
        assert_eq!(seen[24], seen[25], "should be stable after the sweep");
    }

    #[test]
    fn stays_at_best_after_done() {
        let mut t = TrialAndError::new(3);
        run(&mut t, separable, 30);
        let best = t.best_config();
        for _ in 0..10 {
            let rt = separable(&best);
            assert_eq!(t.next_config(&sample(rt)), best);
        }
    }

    #[test]
    fn local_optimum_on_coupled_landscape() {
        // The globally best lattice point for the coupled landscape.
        let lattice = ConfigLattice::new(4);
        let mut global_best = f64::INFINITY;
        for s in 0..lattice.num_states() {
            global_best = global_best.min(coupled(&lattice.config_at(s)));
        }
        let mut t = TrialAndError::new(4);
        let achieved = run(&mut t, coupled, 40);
        assert!(
            achieved > global_best * 1.02,
            "one-at-a-time tuning should be trapped: {achieved} vs {global_best}"
        );
    }

    #[test]
    fn trial_and_error_round_trips_mid_sweep() {
        let mut t = TrialAndError::new(3);
        let mut cfg = ServerConfig::default();
        for _ in 0..7 {
            cfg = t.next_config(&sample(separable(&cfg))); // mid-parameter
        }
        let mut snap = ckpt::SnapshotWriter::new();
        t.save_state(&mut snap);
        let restored = ckpt::Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let mut back = TrialAndError::restore(&restored).unwrap();
        // Both copies must make identical decisions from here on.
        for _ in 0..30 {
            let s = sample(separable(&cfg));
            let a = t.next_config(&s);
            assert_eq!(back.next_config(&s), a);
            cfg = a;
        }
        assert_eq!(back.is_done(), t.is_done());
        assert_eq!(back.best_config(), t.best_config());
    }

    #[test]
    fn trial_and_error_restore_rejects_bad_cursor() {
        let mut t = TrialAndError::new(3);
        t.param_pos = 99;
        let mut snap = ckpt::SnapshotWriter::new();
        t.save_state(&mut snap);
        let restored = ckpt::Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(matches!(
            TrialAndError::restore(&restored),
            Err(ckpt::CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn restarts_after_context_change() {
        let mut t = TrialAndError::new(3);
        run(&mut t, separable, 30);
        assert!(t.is_done());
        // Sustained 10× degradation: the detector needs its window plus
        // s_thr consecutive violations.
        let mut cfg = t.best_config();
        for _ in 0..12 {
            cfg = t.next_config(&sample(separable(&cfg)));
        }
        for _ in 0..6 {
            cfg = t.next_config(&sample(separable(&cfg) * 10.0));
        }
        assert!(!t.is_done(), "sweep should restart after a context change");
    }
}
