//! The RAC agent (Sections 3–4, Algorithm 3) and the `Tuner` interface.

use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

use obs::Event;
use rl::{
    batch_value_sweep_report, Backup, Environment, ExperienceLog, QLearning, QTable, SweepReport,
    Transition,
};
use simkernel::Pcg64;
use websim::{PerfSample, ServerConfig};

use crate::action::Action;
use crate::context::{PolicyLibrary, ViolationDetector};
use crate::guardrail::{GuardDecision, RollbackGuard};
use crate::init::InitialPolicy;
use crate::mdp::ConfigMdp;
use crate::measure::GuardMetrics;
use crate::param::ConfigLattice;
use crate::reward::SlaReward;

/// Typed constructor errors for [`RacAgent`].
///
/// The panicking constructors ([`RacAgent::with_initial_policy`],
/// [`RacAgent::with_policy_library`]) are thin wrappers over the
/// `try_` variants that return these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentError {
    /// The initial policy was trained on a lattice of a different size
    /// than `settings.online_levels` implies.
    LatticeMismatch {
        /// States in the supplied policy's performance map.
        policy_states: usize,
        /// States in the agent's online lattice.
        lattice_states: usize,
    },
    /// A policy library was supplied with no entries.
    EmptyLibrary,
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::LatticeMismatch {
                policy_states,
                lattice_states,
            } => write!(
                f,
                "initial policy trained on a different lattice \
                 ({policy_states} states, online lattice has {lattice_states})"
            ),
            AgentError::EmptyLibrary => write!(f, "policy library must not be empty"),
        }
    }
}

impl std::error::Error for AgentError {}

/// Resolved-once handles for the agent's hot-path metrics (the
/// registry lock is only taken on first use).
struct AgentMetrics {
    iterations: obs::Counter,
    switches: obs::Counter,
    sweep_passes: obs::Counter,
    sweep_updates: obs::Counter,
    streak: obs::Gauge,
}

impl AgentMetrics {
    fn get() -> &'static AgentMetrics {
        static METRICS: OnceLock<AgentMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = obs::Registry::global();
            AgentMetrics {
                iterations: r.counter("rac_agent_iterations_total"),
                switches: r.counter("rac_agent_policy_switches_total"),
                sweep_passes: r.counter("rac_agent_sweep_passes_total"),
                sweep_updates: r.counter("rac_agent_sweep_updates_total"),
                streak: r.gauge("rac_agent_violation_streak"),
            }
        })
    }
}

/// Anything that can drive the configuration of a running web system:
/// the RAC agent and the baselines it is compared against.
///
/// The experiment runner calls [`next_config`](Tuner::next_config) once
/// per measurement interval with the performance observed under the
/// previously returned configuration (the first call observes the
/// system's starting configuration, [`ServerConfig::default`]).
pub trait Tuner {
    /// Short name used in figure legends.
    fn name(&self) -> &str;
    /// Decides the configuration for the next interval.
    fn next_config(&mut self, observed: &PerfSample) -> ServerConfig;
    /// Informs the tuner whether the measurement channel is degraded
    /// (circuit breaker open). While degraded the experiment loop holds
    /// configuration and does not call
    /// [`next_config`](Tuner::next_config); tuners that learn online
    /// use this to freeze exploration and suspend updates cleanly.
    /// Baselines ignore it.
    fn set_degraded(&mut self, _degraded: bool) {}
}

/// Hyper-parameters of the online RAC agent.
///
/// Defaults follow the paper: α = 0.1, γ = 0.9, online ε = 0.05,
/// SLA-referenced reward, detector n = 10 / v_thr = 0.3 / s_thr = 5.
#[derive(Debug, Clone, PartialEq)]
pub struct RacSettings {
    /// Grid points per parameter in the online lattice.
    pub online_levels: usize,
    /// SLA reference response time (ms).
    pub sla_ms: f64,
    /// TD learning rate α.
    pub alpha: f64,
    /// Discount rate γ.
    pub gamma: f64,
    /// Online exploration rate ε.
    pub epsilon: f64,
    /// Guard band (in reward units) for exploration: a random action is
    /// only taken among actions whose Q-value is within this margin of
    /// the best one, so a single exploratory step cannot walk into a
    /// configuration the value function already knows to be
    /// catastrophic. The paper's finer online granularity made random
    /// steps inherently small; on a coarse lattice the guard plays that
    /// role. `f64::INFINITY` disables guarding (classic ε-greedy).
    pub exploration_guard: f64,
    /// Convergence threshold θ for each interval's batch retraining.
    pub batch_theta: f64,
    /// Cap on batch-retraining sweep passes per interval.
    pub batch_passes: usize,
    /// Whether online learning (measurement feedback + retraining) is
    /// enabled; disabling reproduces the "w/o online learning" agent of
    /// Figure 6, which follows its initial policy greedily.
    pub online_learning: bool,
    /// RNG seed for exploration.
    pub seed: u64,
}

impl Default for RacSettings {
    fn default() -> Self {
        RacSettings {
            online_levels: 4,
            sla_ms: 1_000.0,
            alpha: 0.1,
            gamma: 0.9,
            epsilon: 0.05,
            exploration_guard: 1.5,
            batch_theta: 1e-3,
            batch_passes: 6,
            online_learning: true,
            seed: 7,
        }
    }
}

/// The RAC auto-configuration agent: performance monitor input, RL-based
/// decision maker, configuration controller output.
///
/// # Example
///
/// ```
/// use rac::{RacAgent, RacSettings, Tuner};
/// use websim::PerfSample;
///
/// let mut agent = RacAgent::new(RacSettings::default());
/// let observed = PerfSample::from_parts(vec![800.0; 10], 0, 300.0);
/// let next = agent.next_config(&observed);
/// println!("reconfigure to: {next}");
/// ```
#[derive(Debug, Clone)]
pub struct RacAgent {
    settings: RacSettings,
    lattice: ConfigLattice,
    mdp: ConfigMdp,
    qtable: QTable,
    learner: QLearning,
    rng: Pcg64,
    current_state: usize,
    last_action: usize,
    detector: ViolationDetector,
    library: Option<PolicyLibrary>,
    experience: ExperienceLog,
    iterations: u64,
    switches: u64,
    /// Base predictions of the active initial policy (ms per state).
    predicted: Vec<f64>,
    /// States measured in the current context, overriding predictions.
    measured: HashMap<usize, f64>,
    /// EWMA multiplicative correction of `predicted` toward observed
    /// reality: offline training cannot anticipate the absolute level of
    /// every live context (e.g. session-store steady state), so the
    /// whole predicted map is rescaled as evidence accumulates — the
    /// paper's "interactions ... calibrate the mapping from
    /// configuration to performance".
    calibration: f64,
    /// Recent `(state, response_ms)` samples; after a policy switch the
    /// violation streak is replayed as measurements of the new context.
    recent: VecDeque<(usize, f64)>,
    /// Whether the measurement channel is degraded: exploration frozen,
    /// Q-updates suspended, configuration held.
    degraded: bool,
    /// Last-known-good rollback guardrail.
    guard: RollbackGuard,
    /// Exploration vetoes from rollbacks: `(state, action, expires_at)`
    /// where `expires_at` is the iteration count past which the veto
    /// lapses.
    vetoes: Vec<(usize, usize, u64)>,
}

impl RacAgent {
    /// Creates an agent with **no** initial policy (the "w/o policy
    /// initialization" configuration of Figure 7): Q-table and
    /// performance map start empty and everything must be learned
    /// online.
    pub fn new(settings: RacSettings) -> Self {
        let lattice = ConfigLattice::new(settings.online_levels);
        let reward = SlaReward::new(settings.sla_ms);
        let mdp = ConfigMdp::new(&lattice, reward);
        let qtable = QTable::new(lattice.num_states(), Action::COUNT);
        Self::assemble(settings, lattice, mdp, qtable, None)
    }

    /// Creates an agent bootstrapped from a single offline-trained
    /// policy (the "static initial policy" agent of Figure 9).
    ///
    /// # Errors
    ///
    /// Returns [`AgentError::LatticeMismatch`] when the policy's
    /// lattice size does not match `settings.online_levels`.
    pub fn try_with_initial_policy(
        settings: RacSettings,
        policy: &InitialPolicy,
    ) -> Result<Self, AgentError> {
        let lattice = ConfigLattice::new(settings.online_levels);
        let reward = SlaReward::new(settings.sla_ms);
        let mut mdp = ConfigMdp::new(&lattice, reward);
        if policy.perf_ms.len() != lattice.num_states() {
            return Err(AgentError::LatticeMismatch {
                policy_states: policy.perf_ms.len(),
                lattice_states: lattice.num_states(),
            });
        }
        mdp.set_perf_map(policy.perf_ms.iter().map(|&p| p as f64).collect());
        let mut qtable = QTable::new(lattice.num_states(), Action::COUNT);
        qtable.copy_from(&policy.qtable);
        Ok(Self::assemble(settings, lattice, mdp, qtable, None))
    }

    /// Panicking convenience wrapper over
    /// [`try_with_initial_policy`](Self::try_with_initial_policy).
    ///
    /// # Panics
    ///
    /// Panics if the policy's lattice size does not match
    /// `settings.online_levels`.
    pub fn with_initial_policy(settings: RacSettings, policy: &InitialPolicy) -> Self {
        Self::try_with_initial_policy(settings, policy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an agent with a library of per-context policies and
    /// adaptive switching (the full RAC agent of Figures 5 and 10).
    ///
    /// The agent starts from the first library entry.
    ///
    /// # Errors
    ///
    /// Returns [`AgentError::EmptyLibrary`] for an empty library and
    /// [`AgentError::LatticeMismatch`] when its policies do not match
    /// the lattice.
    pub fn try_with_policy_library(
        settings: RacSettings,
        library: PolicyLibrary,
    ) -> Result<Self, AgentError> {
        let Some((_, first)) = library.iter().next() else {
            return Err(AgentError::EmptyLibrary);
        };
        let first = first.clone();
        let mut agent = Self::try_with_initial_policy(settings, &first)?;
        agent.library = Some(library);
        Ok(agent)
    }

    /// Panicking convenience wrapper over
    /// [`try_with_policy_library`](Self::try_with_policy_library).
    ///
    /// # Panics
    ///
    /// Panics if the library is empty or its policies do not match the
    /// lattice.
    pub fn with_policy_library(settings: RacSettings, library: PolicyLibrary) -> Self {
        Self::try_with_policy_library(settings, library).unwrap_or_else(|e| panic!("{e}"))
    }

    fn assemble(
        settings: RacSettings,
        lattice: ConfigLattice,
        mdp: ConfigMdp,
        qtable: QTable,
        library: Option<PolicyLibrary>,
    ) -> Self {
        let learner = QLearning::new(settings.alpha, settings.gamma);
        let rng = Pcg64::seed_from_u64(settings.seed);
        let current_state = lattice.state_of(&ServerConfig::default());
        let predicted = mdp.perf_map().to_vec();
        RacAgent {
            settings,
            lattice,
            mdp,
            qtable,
            learner,
            rng,
            current_state,
            last_action: Action::Keep.index(),
            detector: ViolationDetector::paper_defaults().with_outlier_guard(4.0),
            library,
            experience: ExperienceLog::new(1024),
            iterations: 0,
            switches: 0,
            predicted,
            measured: HashMap::new(),
            calibration: 1.0,
            recent: VecDeque::with_capacity(8),
            degraded: false,
            guard: RollbackGuard::default(),
            vetoes: Vec::new(),
        }
    }

    /// The configuration the agent believes the system is running.
    pub fn current_config(&self) -> ServerConfig {
        self.lattice.config_at(self.current_state)
    }

    /// Number of decision iterations so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of policy switches performed (adaptive agents only).
    pub fn policy_switches(&self) -> u64 {
        self.switches
    }

    /// Whether the agent is holding in degraded mode (measurement
    /// channel breaker open).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The last-known-good rollback guardrail (diagnostics).
    pub fn guard(&self) -> &RollbackGuard {
        &self.guard
    }

    /// Whether exploring `action` from `state` is currently vetoed by a
    /// rollback.
    fn is_vetoed(&self, state: usize, action: usize) -> bool {
        self.vetoes
            .iter()
            .any(|&(s, a, _)| s == state && a == action)
    }

    /// The observed transitions so far (oldest first, bounded).
    pub fn experience(&self) -> &ExperienceLog {
        &self.experience
    }

    /// Packages the agent's current learned state as an
    /// [`InitialPolicy`]: the online Q-table plus the performance map
    /// the agent is acting on (measured response times where available,
    /// calibrated predictions elsewhere).
    ///
    /// This is the donor side of cross-run policy transfer — a finished
    /// agent's `learned_policy()` can seed a fresh agent on the same
    /// lattice via [`try_with_initial_policy`](Self::try_with_initial_policy),
    /// generalizing the snapshot warm-start path to transfers that never
    /// touch disk. `fit.samples`/`samples` report how many lattice
    /// states were actually measured online; `passes` is 0 because no
    /// offline sweep produced this table.
    pub fn learned_policy(&self) -> InitialPolicy {
        let states = self.lattice.num_states();
        let mut perf_ms = Vec::with_capacity(states);
        for s in 0..states {
            let v = match self.measured.get(&s) {
                Some(&rt) => rt,
                None => self.predicted[s] * self.calibration,
            };
            perf_ms.push(v as f32);
        }
        InitialPolicy {
            qtable: self.qtable.clone(),
            perf_ms,
            fit: numerics::FitQuality {
                r_squared: 0.0,
                rmse: 0.0,
                samples: self.measured.len(),
            },
            samples: self.measured.len(),
            passes: 0,
        }
    }

    fn maybe_switch_policy(&mut self, measured_ms: f64) {
        let Some(library) = &self.library else {
            return;
        };
        if let Some(best) = library.best_match(self.current_state, measured_ms) {
            self.qtable.copy_from(&best.qtable);
            self.predicted = best.perf_ms.iter().map(|&p| p as f64).collect();
            self.calibration = 1.0;
            // Measurements from before the change no longer describe the
            // system; the violation streak that triggered the switch does.
            self.measured.clear();
            for &(state, rt) in &self.recent {
                self.measured.insert(state, rt);
            }
            self.switches += 1;
        }
    }

    /// Rebuilds the MDP's performance map: measured values where
    /// available, calibrated predictions elsewhere. The map stays in
    /// `f64` end to end — rounding the calibrated products through
    /// `f32` collapsed near-tied states and let the index tie-break
    /// flip the argmin whenever calibration ≠ 1.0.
    fn refresh_perf_map(&mut self) {
        let calib = self.calibration;
        let mut perf: Vec<f64> = self.predicted.iter().map(|&p| p * calib).collect();
        for (&s, &rt) in &self.measured {
            perf[s] = rt;
        }
        self.mdp.set_perf_map(perf);
    }

    /// Current multiplicative calibration of the predicted landscape
    /// (diagnostics; 1.0 means predictions are taken at face value).
    pub fn calibration(&self) -> f64 {
        self.calibration
    }

    /// ε-greedy with a guard band: exploration draws uniformly among
    /// actions whose Q-value is within `exploration_guard` of the best,
    /// so random steps never enter regions the table already values as
    /// disastrous.
    fn choose_action(&mut self, s: usize) -> usize {
        let epsilon = if self.settings.online_learning {
            self.settings.epsilon
        } else {
            0.0
        };
        let best = self.qtable.best_action(s);
        if epsilon <= 0.0 || !self.rng.chance(epsilon) {
            return best;
        }
        let floor = self.qtable.get(s, best) - self.settings.exploration_guard;
        let candidates: Vec<usize> = (0..self.qtable.actions())
            .filter(|&a| self.qtable.get(s, a) >= floor && !self.is_vetoed(s, a))
            .collect();
        if candidates.is_empty() {
            best
        } else {
            candidates[self.rng.below(candidates.len() as u64) as usize]
        }
    }

    /// Writes the agent's complete learned and tuner state into a
    /// snapshot: settings, Q-table, performance knowledge, detector,
    /// experience log, RNG stream position, and (when present) the
    /// policy library. A [`restore`](Self::restore)d agent makes
    /// bit-identical decisions to one that was never serialized.
    pub fn save_state(&self, snap: &mut ckpt::SnapshotWriter) {
        snap.section(SECTION_SETTINGS, |w| {
            w.put_usize(self.settings.online_levels);
            w.put_f64(self.settings.sla_ms);
            w.put_f64(self.settings.alpha);
            w.put_f64(self.settings.gamma);
            w.put_f64(self.settings.epsilon);
            w.put_f64(self.settings.exploration_guard);
            w.put_f64(self.settings.batch_theta);
            w.put_usize(self.settings.batch_passes);
            w.put_bool(self.settings.online_learning);
            w.put_u64(self.settings.seed);
        });
        snap.section(SECTION_QTABLE, |w| {
            crate::persist::encode_qtable(w, &self.qtable);
        });
        snap.section(SECTION_STATE, |w| {
            w.put_u64(self.iterations);
            w.put_u64(self.switches);
            w.put_usize(self.current_state);
            w.put_usize(self.last_action);
            w.put_f64(self.calibration);
            w.put_usize(self.predicted.len());
            for &p in &self.predicted {
                w.put_f64(p);
            }
            // HashMap iteration order is unstable; sort so identical
            // agents encode to identical bytes.
            let mut measured: Vec<(usize, f64)> =
                self.measured.iter().map(|(&s, &rt)| (s, rt)).collect();
            measured.sort_unstable_by_key(|&(s, _)| s);
            w.put_usize(measured.len());
            for (s, rt) in measured {
                w.put_usize(s);
                w.put_f64(rt);
            }
            w.put_usize(self.recent.len());
            for &(s, rt) in &self.recent {
                w.put_usize(s);
                w.put_f64(rt);
            }
        });
        snap.section(SECTION_EXPERIENCE, |w| {
            w.put_usize(self.experience.capacity());
            w.put_usize(self.experience.len());
            for t in self.experience.iter() {
                w.put_usize(t.state);
                w.put_usize(t.action);
                w.put_f64(t.reward);
                w.put_usize(t.next_state);
            }
        });
        snap.section(SECTION_DETECTOR, |w| {
            self.detector.encode(w);
        });
        snap.section(SECTION_GUARD, |w| {
            w.put_bool(self.degraded);
            self.guard.encode(w);
            w.put_usize(self.vetoes.len());
            for &(s, a, exp) in &self.vetoes {
                w.put_usize(s);
                w.put_usize(a);
                w.put_u64(exp);
            }
        });
        snap.section(SECTION_RNG, |w| {
            for word in self.rng.state_words() {
                w.put_u64(word);
            }
        });
        snap.section(SECTION_LIBRARY, |w| {
            match &self.library {
                Some(lib) => {
                    w.put_bool(true);
                    w.put_usize(self.lattice.num_states());
                    w.put_usize(Action::COUNT);
                    crate::persist::encode_library(w, lib);
                }
                None => w.put_bool(false),
            };
        });
    }

    /// Reconstructs an agent from a snapshot written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ckpt::CkptError`] when a section is missing,
    /// fails its CRC, or decodes to values that violate the agent's
    /// invariants (out-of-range states/actions, mismatched table
    /// shapes, invalid hyper-parameters) — a CRC-valid but semantically
    /// impossible snapshot is rejected rather than trusted.
    pub fn restore(snap: &ckpt::Snapshot) -> Result<Self, ckpt::CkptError> {
        let corrupt = |detail: String| ckpt::CkptError::Corrupt { detail };

        let mut r = snap.section(SECTION_SETTINGS)?;
        let settings = RacSettings {
            online_levels: r.get_usize()?,
            sla_ms: r.get_f64()?,
            alpha: r.get_f64()?,
            gamma: r.get_f64()?,
            epsilon: r.get_f64()?,
            exploration_guard: r.get_f64()?,
            batch_theta: r.get_f64()?,
            batch_passes: r.get_usize()?,
            online_learning: r.get_bool()?,
            seed: r.get_u64()?,
        };
        r.finish()?;
        if settings.online_levels < 2 || settings.online_levels > 64 {
            return Err(corrupt(format!(
                "online_levels {} out of range",
                settings.online_levels
            )));
        }
        if settings.sla_ms.is_nan() || settings.sla_ms <= 0.0 {
            return Err(corrupt(format!(
                "sla_ms {} must be positive",
                settings.sla_ms
            )));
        }
        if settings.alpha.is_nan() || settings.alpha <= 0.0 || settings.alpha > 1.0 {
            return Err(corrupt(format!("alpha {} out of (0, 1]", settings.alpha)));
        }
        if settings.gamma.is_nan() || settings.gamma < 0.0 || settings.gamma >= 1.0 {
            return Err(corrupt(format!("gamma {} out of [0, 1)", settings.gamma)));
        }
        if settings.epsilon.is_nan() || settings.epsilon < 0.0 || settings.epsilon > 1.0 {
            return Err(corrupt(format!(
                "epsilon {} out of [0, 1]",
                settings.epsilon
            )));
        }

        let lattice = ConfigLattice::new(settings.online_levels);
        let states = lattice.num_states();
        let reward = SlaReward::new(settings.sla_ms);
        let mdp = ConfigMdp::new(&lattice, reward);

        let mut r = snap.section(SECTION_QTABLE)?;
        let qtable = crate::persist::decode_qtable(&mut r, states, Action::COUNT)?;
        r.finish()?;

        let mut r = snap.section(SECTION_STATE)?;
        let iterations = r.get_u64()?;
        let switches = r.get_u64()?;
        let current_state = r.get_usize()?;
        let last_action = r.get_usize()?;
        let calibration = r.get_f64()?;
        if current_state >= states {
            return Err(corrupt(format!(
                "current state {current_state} out of {states} states"
            )));
        }
        if last_action >= Action::COUNT {
            return Err(corrupt(format!("action index {last_action} out of range")));
        }
        if !calibration.is_finite() || calibration <= 0.0 {
            return Err(corrupt(format!(
                "calibration {calibration} must be positive"
            )));
        }
        let predicted_len = r.get_usize()?;
        if predicted_len != states {
            return Err(ckpt::CkptError::Mismatch {
                detail: format!("predicted map has {predicted_len} states, lattice has {states}"),
            });
        }
        let mut predicted = Vec::with_capacity(states);
        for _ in 0..states {
            predicted.push(r.get_f64()?);
        }
        let measured_len = r.get_usize()?;
        let mut measured = HashMap::with_capacity(measured_len);
        for _ in 0..measured_len {
            let s = r.get_usize()?;
            let rt = r.get_f64()?;
            if s >= states {
                return Err(corrupt(format!("measured state {s} out of range")));
            }
            measured.insert(s, rt);
        }
        let recent_len = r.get_usize()?;
        let mut recent = VecDeque::with_capacity(recent_len.max(8));
        for _ in 0..recent_len {
            let s = r.get_usize()?;
            let rt = r.get_f64()?;
            if s >= states {
                return Err(corrupt(format!("recent state {s} out of range")));
            }
            recent.push_back((s, rt));
        }
        r.finish()?;

        let mut r = snap.section(SECTION_EXPERIENCE)?;
        let capacity = r.get_usize()?;
        let len = r.get_usize()?;
        if capacity == 0 || len > capacity {
            return Err(corrupt(format!(
                "experience log {len}/{capacity} is impossible"
            )));
        }
        let mut experience = ExperienceLog::new(capacity);
        for _ in 0..len {
            let t = Transition {
                state: r.get_usize()?,
                action: r.get_usize()?,
                reward: r.get_f64()?,
                next_state: r.get_usize()?,
            };
            if t.state >= states || t.next_state >= states || t.action >= Action::COUNT {
                return Err(corrupt("experience transition out of range".to_string()));
            }
            experience.record(t);
        }
        r.finish()?;

        let mut r = snap.section(SECTION_DETECTOR)?;
        let detector = ViolationDetector::decode(&mut r)?;
        r.finish()?;

        let mut r = snap.section(SECTION_GUARD)?;
        let degraded = r.get_bool()?;
        let guard = RollbackGuard::decode(&mut r)?;
        if let Some((s, _)) = guard.last_known_good() {
            if s >= states {
                return Err(corrupt(format!("last-known-good state {s} out of range")));
            }
        }
        let veto_len = r.get_usize()?;
        let mut vetoes = Vec::with_capacity(veto_len);
        for _ in 0..veto_len {
            let s = r.get_usize()?;
            let a = r.get_usize()?;
            let exp = r.get_u64()?;
            if s >= states || a >= Action::COUNT {
                return Err(corrupt(format!("veto ({s}, {a}) out of range")));
            }
            vetoes.push((s, a, exp));
        }
        r.finish()?;

        let mut r = snap.section(SECTION_RNG)?;
        let mut words = [0u64; 4];
        for word in &mut words {
            *word = r.get_u64()?;
        }
        r.finish()?;
        let rng = Pcg64::from_state_words(words);

        let mut r = snap.section(SECTION_LIBRARY)?;
        let library = if r.get_bool()? {
            let lib_states = r.get_usize()?;
            let lib_actions = r.get_usize()?;
            if (lib_states, lib_actions) != (states, Action::COUNT) {
                return Err(ckpt::CkptError::Mismatch {
                    detail: format!(
                        "library trained on {lib_states}x{lib_actions}, agent uses {}x{}",
                        states,
                        Action::COUNT
                    ),
                });
            }
            Some(crate::persist::decode_library(
                &mut r,
                states,
                Action::COUNT,
            )?)
        } else {
            None
        };
        r.finish()?;

        let learner = QLearning::new(settings.alpha, settings.gamma);
        let mut agent = RacAgent {
            settings,
            lattice,
            mdp,
            qtable,
            learner,
            rng,
            current_state,
            last_action,
            detector,
            library,
            experience,
            iterations,
            switches,
            predicted,
            measured,
            calibration,
            recent,
            degraded,
            guard,
            vetoes,
        };
        agent.refresh_perf_map();
        Ok(agent)
    }
}

/// Section names of a [`RacAgent`] snapshot.
pub(crate) const SECTION_SETTINGS: &str = "rac.settings";
pub(crate) const SECTION_QTABLE: &str = "rac.qtable";
pub(crate) const SECTION_STATE: &str = "rac.state";
pub(crate) const SECTION_EXPERIENCE: &str = "rac.experience";
pub(crate) const SECTION_DETECTOR: &str = "rac.detector";
pub(crate) const SECTION_RNG: &str = "rac.rng";
pub(crate) const SECTION_LIBRARY: &str = "rac.library";
pub(crate) const SECTION_GUARD: &str = "rac.guard";

impl Tuner for RacAgent {
    fn name(&self) -> &str {
        match (&self.library, self.settings.online_learning) {
            (Some(_), _) => "RAC (adaptive init)",
            (None, true) => "RAC",
            (None, false) => "RAC (w/o online learning)",
        }
    }

    /// Enters or leaves degraded mode. Entering freezes exploration
    /// (ε is never consulted because decisions are suspended entirely),
    /// Q-updates, and configuration; leaving resumes exactly where the
    /// agent stopped — RNG stream, Q-table, and detector state are
    /// untouched by the outage.
    fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// One iteration of Algorithm 3: record the measurement for the
    /// current configuration, detect context changes (switching initial
    /// policies if a library is available), retrain the Q-table in batch,
    /// and pick the next action ε-greedily.
    fn next_config(&mut self, observed: &PerfSample) -> ServerConfig {
        if self.degraded {
            // Measurement channel is open: the sample is untrustworthy.
            // Freeze everything — no exploration, no Q-update, no
            // detector/guard bookkeeping — and hold the configuration.
            return self.lattice.config_at(self.current_state);
        }
        self.iterations += 1;
        self.vetoes.retain(|&(_, _, exp)| exp > self.iterations);
        let measured = observed.mean_response_ms;
        let switches_before = self.switches;
        let mut sweep = SweepReport::default();

        if self.settings.online_learning {
            if measured.is_finite() && measured > 0.0 {
                // Recalibrate the predicted level when this state's value
                // was still a prediction (first visit in this context)
                // AND the error indicates a level mismatch rather than
                // local noise — small errors are handled precisely by
                // the measured-value layer, and folding them into the
                // global factor would churn the whole landscape.
                let base = self.predicted[self.current_state];
                if !self.measured.contains_key(&self.current_state) && base > 0.0 {
                    let target = measured / (base * self.calibration);
                    if !(0.5..=2.0).contains(&target) {
                        let corrected = self.calibration * target;
                        self.calibration =
                            (0.7 * self.calibration + 0.3 * corrected).clamp(0.1, 20.0);
                    }
                }
                // Update the performance knowledge for the current state,
                // keeping older information about every other state.
                self.measured.insert(self.current_state, measured);
                self.recent.push_back((self.current_state, measured));
                if self.recent.len() > self.detector.s_thr() {
                    self.recent.pop_front();
                }
            }

            // Context-change detection and adaptive policy switching.
            // The replacement policy is chosen against the violation
            // streak's mean, not one (possibly transient) sample.
            {
                let _detector = obs::Span::start("detector");
                if self.detector.observe(measured) {
                    let estimate = self.detector.last_streak_mean();
                    let estimate = if estimate.is_finite() {
                        estimate
                    } else {
                        measured
                    };
                    self.maybe_switch_policy(estimate);
                }
            }

            // Batch retraining over measured + calibrated-predicted
            // performance.
            let _sweep_span = obs::Span::start("sweep");
            self.refresh_perf_map();
            sweep = batch_value_sweep_report(
                &self.mdp,
                &mut self.qtable,
                &self.learner,
                Backup::Greedy,
                self.settings.batch_theta,
                self.settings.batch_passes,
            );
        }

        // Guarded ε-greedy action selection from the (re)trained table.
        let mut action = self.choose_action(self.current_state);
        let mut next_state = self.mdp.transition(self.current_state, action);
        let reward = self.mdp.sla_reward().of_response_ms(measured);
        let guard_span = obs::Span::start("guardrail");
        let decision = self
            .guard
            .observe(self.current_state, measured, self.settings.sla_ms);
        let rolled_back = if let GuardDecision::Rollback { state } = decision {
            // Severe violations persisted: veto exploration of the step
            // that led here and restore the last-known-good config. The
            // jump is not a lattice action, so it is not recorded as
            // experience — the Q-table keeps learning from real steps.
            self.vetoes.push((
                self.current_state,
                self.last_action,
                self.iterations + self.guard.settings().veto_ttl,
            ));
            action = Action::Keep.index();
            next_state = state;
            true
        } else {
            self.experience.record(Transition {
                state: self.current_state,
                action,
                reward,
                next_state,
            });
            false
        };
        if rolled_back {
            if obs::enabled() {
                GuardMetrics::get().rollbacks.inc();
            }
            obs::trace::emit(|| {
                Event::new("guardrail")
                    .field("iter", self.iterations)
                    .field("action", "rollback")
                    .field(
                        "detail",
                        format!(
                            "persistent severe violation; restoring last-known-good state \
                             {next_state}"
                        ),
                    )
            });
        }
        drop(guard_span);

        if obs::enabled() {
            let m = AgentMetrics::get();
            m.iterations.inc();
            m.switches.add(self.switches - switches_before);
            m.sweep_passes.add(sweep.passes as u64);
            m.sweep_updates.add(sweep.updates);
            m.streak.set(self.detector.streak() as i64);
        }
        obs::trace::emit(|| {
            let epsilon = if self.settings.online_learning {
                self.settings.epsilon
            } else {
                0.0
            };
            Event::new("decision")
                .field("iter", self.iterations)
                .field("rt_ms", measured)
                .field("p95_ms", observed.p95_response_ms)
                .field("tput_rps", observed.throughput_rps)
                .field("completed", observed.completed)
                .field("refused", observed.refused)
                .field("reward", reward)
                .field("epsilon", epsilon)
                .field("state", self.current_state as u64)
                .field(
                    "action",
                    if rolled_back {
                        "rollback".to_string()
                    } else {
                        Action::from_index(action).to_string()
                    },
                )
                .field("next_state", next_state as u64)
                .field("q_delta", sweep.max_delta)
                .field("sweep_passes", sweep.passes as u64)
                .field("streak", self.detector.streak() as u64)
                .field("switched", self.switches > switches_before)
                .field("switches", self.switches)
                .field("calibration", self.calibration)
        });

        self.last_action = action;
        self.current_state = next_state;
        self.lattice.config_at(next_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SystemContext;
    use crate::init::{train_initial_policy, OfflineSettings};
    use tpcw::Mix;
    use vmstack::ResourceLevel;

    fn sample(rt_ms: f64) -> PerfSample {
        PerfSample::from_parts(vec![rt_ms; 20], 0, 300.0)
    }

    fn settings() -> RacSettings {
        RacSettings {
            online_levels: 3,
            seed: 11,
            ..RacSettings::default()
        }
    }

    /// A synthetic configuration→response-time landscape: a bowl over
    /// MaxClients and KeepAlive.
    fn landscape(cfg: &ServerConfig) -> f64 {
        let m = cfg.max_clients() as f64;
        let k = cfg.keepalive_timeout_secs() as f64;
        150.0 + 0.003 * (m - 600.0).powi(2) + 6.0 * (k - 11.0).powi(2)
    }

    fn drive(agent: &mut RacAgent, iterations: usize) -> Vec<f64> {
        let mut rts = Vec::new();
        let mut cfg = ServerConfig::default();
        for _ in 0..iterations {
            let rt = landscape(&cfg);
            rts.push(rt);
            cfg = agent.next_config(&sample(rt));
        }
        rts
    }

    #[test]
    fn uninitialized_agent_starts_at_default() {
        let agent = RacAgent::new(settings());
        let cfg = agent.current_config();
        // Nearest lattice point to the Table-1 default.
        assert_eq!(
            agent.lattice.state_of(&ServerConfig::default()),
            agent.current_state
        );
        assert!(cfg.max_clients() <= 600);
    }

    #[test]
    fn agent_improves_on_synthetic_landscape() {
        let mut agent = RacAgent::new(settings());
        let rts = drive(&mut agent, 120);
        let early: f64 = rts[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = rts[rts.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(
            late < early,
            "no improvement: early {early:.0} late {late:.0}"
        );
        assert_eq!(agent.iterations(), 120);
    }

    #[test]
    fn initialized_agent_converges_fast() {
        let lattice = ConfigLattice::new(3);
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            landscape,
        )
        .unwrap();
        let mut agent = RacAgent::with_initial_policy(settings(), &policy);
        let rts = drive(&mut agent, 25);
        // With a good initial policy the agent reaches the bowl floor in
        // well under 25 iterations (paper's headline claim).
        let best = rts.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            rts[rts.len() - 1] < rts[0] || best < rts[0] * 0.6,
            "initialized agent failed to improve quickly: {rts:?}"
        );
    }

    #[test]
    fn without_online_learning_is_greedy_and_static_knowledge() {
        let lattice = ConfigLattice::new(3);
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            landscape,
        )
        .unwrap();
        let s = RacSettings {
            online_learning: false,
            ..settings()
        };
        let mut a = RacAgent::with_initial_policy(s.clone(), &policy);
        let mut b = RacAgent::with_initial_policy(s, &policy);
        // Identical observations → identical (greedy, deterministic) paths.
        for i in 0..20 {
            let rt = 100.0 + i as f64;
            assert_eq!(a.next_config(&sample(rt)), b.next_config(&sample(rt)));
        }
        assert_eq!(a.name(), "RAC (w/o online learning)");
    }

    #[test]
    fn library_agent_switches_on_context_change() {
        let lattice = ConfigLattice::new(3);
        let reward = SlaReward::new(1_000.0);
        let fast =
            train_initial_policy(&lattice, reward, OfflineSettings::default(), landscape).unwrap();
        let slow = train_initial_policy(
            &lattice,
            reward,
            OfflineSettings::default(),
            |c: &ServerConfig| landscape(c) * 8.0,
        )
        .unwrap();
        let mut lib = PolicyLibrary::new();
        lib.insert(
            SystemContext::new(Mix::Shopping, ResourceLevel::Level1),
            fast,
        );
        lib.insert(
            SystemContext::new(Mix::Ordering, ResourceLevel::Level3),
            slow,
        );

        let mut agent = RacAgent::with_policy_library(settings(), lib);
        assert_eq!(agent.name(), "RAC (adaptive init)");
        // Steady fast context first…
        for _ in 0..12 {
            agent.next_config(&sample(150.0));
        }
        assert_eq!(agent.policy_switches(), 0);
        // …then an abrupt 8× degradation sustained long enough.
        for _ in 0..8 {
            agent.next_config(&sample(1_600.0));
        }
        assert!(agent.policy_switches() >= 1, "no policy switch detected");
    }

    #[test]
    fn experience_is_recorded() {
        let mut agent = RacAgent::new(settings());
        agent.next_config(&sample(500.0));
        agent.next_config(&sample(400.0));
        assert_eq!(agent.experience().len(), 2);
        let last = agent.experience().last().unwrap();
        assert!(
            last.reward > 0.0,
            "400ms under a 1000ms SLA earns positive reward"
        );
    }

    #[test]
    fn lattice_mismatch_is_a_typed_error() {
        let lattice = ConfigLattice::new(4);
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            |_: &ServerConfig| 100.0,
        )
        .unwrap();
        let err = RacAgent::try_with_initial_policy(settings(), &policy).unwrap_err();
        assert_eq!(
            err,
            AgentError::LatticeMismatch {
                policy_states: lattice.num_states(),
                lattice_states: ConfigLattice::new(3).num_states(),
            }
        );
        assert!(err.to_string().contains("different lattice"));
    }

    #[test]
    fn empty_library_is_a_typed_error() {
        let err = RacAgent::try_with_policy_library(settings(), PolicyLibrary::new()).unwrap_err();
        assert_eq!(err, AgentError::EmptyLibrary);
        assert!(err.to_string().contains("must not be empty"));
    }

    #[test]
    fn degraded_mode_holds_and_resumes_bit_identically() {
        let mut a = RacAgent::new(settings());
        let mut b = RacAgent::new(settings());
        for _ in 0..10 {
            assert_eq!(a.next_config(&sample(700.0)), b.next_config(&sample(700.0)));
        }
        // `a` goes through an outage: the experiment loop would not call
        // a degraded tuner, but even direct calls must be inert.
        a.set_degraded(true);
        assert!(a.is_degraded());
        let held = a.current_config();
        for _ in 0..5 {
            assert_eq!(a.next_config(&PerfSample::empty()), held);
        }
        assert_eq!(a.iterations(), 10, "degraded iterations must not count");
        a.set_degraded(false);
        // Resumed: identical to the never-degraded twin from here on.
        for _ in 0..10 {
            assert_eq!(a.next_config(&sample(650.0)), b.next_config(&sample(650.0)));
        }
    }

    #[test]
    fn persistent_severe_violation_triggers_rollback() {
        let mut agent = RacAgent::new(settings());
        // Establish a last-known-good state under the 1000ms SLA.
        agent.next_config(&sample(300.0));
        let (lkg, _) = agent.guard.last_known_good().expect("lkg recorded");
        // Sustained severe violations (>2× SLA) must eventually fire the
        // guard: configuration jumps back to the last-known-good state
        // and the offending direction is vetoed.
        let mut fired_at = None;
        for i in 0..12 {
            agent.next_config(&sample(5_000.0));
            if !agent.vetoes.is_empty() {
                fired_at = Some(i);
                break;
            }
        }
        assert!(fired_at.is_some(), "guard never fired");
        assert_eq!(agent.current_state, lkg, "rollback must restore lkg");
        // Vetoes expire after their TTL.
        let expiry = agent.vetoes[0].2;
        while agent.iterations() < expiry {
            agent.next_config(&sample(300.0));
        }
        assert!(agent.vetoes.is_empty(), "veto outlived its TTL");
    }

    #[test]
    fn guard_and_detector_state_survive_snapshot_mid_hold() {
        let mut agent = RacAgent::new(settings());
        agent.next_config(&sample(300.0));
        // One extreme sample arms the detector's outlier guard
        // (mid-hold) while severe streaks accumulate in the guard.
        agent.next_config(&sample(300.0 * 100.0));
        for _ in 0..8 {
            agent.next_config(&sample(5_000.0));
        }
        agent.set_degraded(true);

        let mut snap = ckpt::SnapshotWriter::new();
        agent.save_state(&mut snap);
        let bytes = snap.to_bytes();
        let restored = RacAgent::restore(&ckpt::Snapshot::from_bytes(&bytes).unwrap()).unwrap();
        assert!(restored.is_degraded());
        assert_eq!(restored.vetoes, agent.vetoes);
        assert_eq!(restored.guard, agent.guard);
        let mut again = ckpt::SnapshotWriter::new();
        restored.save_state(&mut again);
        assert_eq!(again.to_bytes(), bytes, "restore → save not a fixed point");

        // Both resume and continue identically.
        let mut a = agent;
        let mut b = restored;
        a.set_degraded(false);
        b.set_degraded(false);
        for rt in [4_800.0, 500.0, 900.0, 5_200.0, 410.0] {
            assert_eq!(a.next_config(&sample(rt)), b.next_config(&sample(rt)));
        }
    }

    #[test]
    #[should_panic(expected = "different lattice")]
    fn lattice_mismatch_panics() {
        let lattice = ConfigLattice::new(4);
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            |_: &ServerConfig| 100.0,
        )
        .unwrap();
        // settings() uses 3 levels; the policy was trained on 4.
        RacAgent::with_initial_policy(settings(), &policy);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_library_panics() {
        RacAgent::with_policy_library(settings(), PolicyLibrary::new());
    }
}
