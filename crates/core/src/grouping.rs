//! Parameter grouping for offline training-data collection
//! (Section 4.1).
//!
//! The paper groups parameters with similar characteristics so the
//! sampling grid is 4-dimensional instead of 8-dimensional:
//! `{MaxClients, MaxThreads}` are both bounded by system capacity,
//! `{KeepAlive timeout, session timeout}` by connection/session
//! lifetimes, and the spare-pool bounds pair up naturally. Parameters in
//! a group always take the same *relative* position in their ranges.

use websim::{Param, ServerConfig};

use crate::param::ConfigLattice;

/// The paper's four parameter groups.
pub const GROUPS: [[Param; 2]; 4] = [
    [Param::MaxClients, Param::MaxThreads],
    [Param::KeepaliveTimeout, Param::SessionTimeout],
    [Param::MinSpareServers, Param::MinSpareThreads],
    [Param::MaxSpareServers, Param::MaxSpareThreads],
];

/// Number of groups.
pub const GROUP_COUNT: usize = GROUPS.len();

/// The group index of a parameter.
///
/// # Example
///
/// ```
/// use rac::grouping::{group_of, GROUPS};
/// use websim::Param;
///
/// assert_eq!(group_of(Param::MaxThreads), 0);
/// assert_eq!(GROUPS[group_of(Param::SessionTimeout)][0], Param::KeepaliveTimeout);
/// ```
pub fn group_of(p: Param) -> usize {
    GROUPS
        .iter()
        .position(|g| g.contains(&p))
        .expect("every parameter belongs to a group")
}

/// A coarse sampling plan: every combination of `group_levels` relative
/// positions across the four groups, each mapped to a concrete
/// [`ServerConfig`].
///
/// Returns `(normalized_group_coords, config)` pairs;
/// `group_levels^4` entries in total.
///
/// # Panics
///
/// Panics if `group_levels < 2`.
///
/// # Example
///
/// ```
/// use rac::grouping::sampling_plan;
///
/// let plan = sampling_plan(3);
/// assert_eq!(plan.len(), 81);
/// // First sample: everything at its range minimum.
/// assert_eq!(plan[0].0, vec![0.0; 4]);
/// ```
pub fn sampling_plan(group_levels: usize) -> Vec<(Vec<f64>, ServerConfig)> {
    assert!(group_levels >= 2, "need at least two levels per group");
    let n = group_levels;
    let total = n.pow(GROUP_COUNT as u32);
    let mut plan = Vec::with_capacity(total);
    for idx in 0..total {
        let mut rest = idx;
        let mut coords = [0usize; GROUP_COUNT];
        for c in coords.iter_mut().rev() {
            *c = rest % n;
            rest /= n;
        }
        let normalized: Vec<f64> = coords.iter().map(|&c| c as f64 / (n - 1) as f64).collect();
        let mut values = [0u32; 8];
        for (g, t) in normalized.iter().enumerate() {
            for p in GROUPS[g] {
                let (lo, hi) = p.range();
                values[p.index()] = (lo as f64 + t * (hi - lo) as f64).round() as u32;
            }
        }
        let config = ServerConfig::from_values(values).expect("interpolated values in range");
        plan.push((normalized, config));
    }
    plan
}

/// Projects a full lattice state onto the 4-dimensional group feature
/// space used by the regression predictor.
///
/// The training data only contains configurations whose group members
/// move together, so the *aggregation rule* decides how predictions
/// extrapolate to mixed states:
///
/// * the **capacity group** (`MaxClients`/`MaxThreads`) aggregates by
///   **minimum** — the two caps gate the same request path in series,
///   so the binding constraint is the smaller one. (With a mean,
///   `MaxClients = 5, maxThreads = 600` would be predicted as healthy
///   as `MaxClients = 203, maxThreads = 402`, and the initial policy
///   would happily walk the system into a choked corner.)
/// * the other groups aggregate by **mean** — their members contribute
///   independently (connection vs session lifetimes; two spare pools).
///
/// # Example
///
/// ```
/// use rac::grouping::group_features;
/// use rac::ConfigLattice;
///
/// let lattice = ConfigLattice::new(5);
/// let f = group_features(&lattice, &[4, 0, 0, 0, 4, 0, 0, 0]);
/// assert_eq!(f[0], 1.0); // MaxClients and MaxThreads both at max
/// let g = group_features(&lattice, &[0, 0, 0, 0, 4, 0, 0, 0]);
/// assert_eq!(g[0], 0.0); // the choked MaxClients binds, not the mean
/// ```
pub fn group_features(lattice: &ConfigLattice, coords: &[usize]) -> Vec<f64> {
    let norm = lattice.normalized(coords);
    GROUPS
        .iter()
        .enumerate()
        .map(|(i, g)| {
            if i == 0 {
                g.iter()
                    .map(|p| norm[p.index()])
                    .fold(f64::INFINITY, f64::min)
            } else {
                g.iter().map(|p| norm[p.index()]).sum::<f64>() / g.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_param_in_exactly_one_group() {
        for p in Param::ALL {
            let g = group_of(p);
            let count = GROUPS.iter().filter(|grp| grp.contains(&p)).count();
            assert_eq!(count, 1, "{p}");
            assert!(GROUPS[g].contains(&p));
        }
    }

    #[test]
    fn plan_size_and_extremes() {
        let plan = sampling_plan(3);
        assert_eq!(plan.len(), 81);
        let (first_coords, first_cfg) = &plan[0];
        assert!(first_coords.iter().all(|&c| c == 0.0));
        assert_eq!(first_cfg.get(Param::MaxClients), 5);
        assert_eq!(first_cfg.get(Param::MaxThreads), 5);
        let (last_coords, last_cfg) = &plan[80];
        assert!(last_coords.iter().all(|&c| c == 1.0));
        assert_eq!(last_cfg.get(Param::MaxClients), 600);
        assert_eq!(last_cfg.get(Param::SessionTimeout), 35);
    }

    #[test]
    fn grouped_params_share_relative_position() {
        for (coords, cfg) in sampling_plan(4) {
            for (g, grp) in GROUPS.iter().enumerate() {
                for p in grp {
                    let (lo, hi) = p.range();
                    let t = (cfg.get(*p) - lo) as f64 / (hi - lo) as f64;
                    assert!(
                        (t - coords[g]).abs() < 0.02,
                        "{p} at {} not at group position {}",
                        cfg.get(*p),
                        coords[g]
                    );
                }
            }
        }
    }

    #[test]
    fn plan_configs_are_distinct() {
        let plan = sampling_plan(3);
        let set: std::collections::HashSet<_> = plan.iter().map(|(_, c)| *c).collect();
        assert_eq!(set.len(), plan.len());
    }

    #[test]
    fn capacity_group_aggregates_by_minimum() {
        let lattice = ConfigLattice::new(3);
        // MaxClients at max (1.0), MaxThreads at min (0.0): the choked
        // thread pool binds, so the capacity feature is 0.
        let mut coords = [0usize; 8];
        coords[Param::MaxClients.index()] = 2;
        let f = group_features(&lattice, &coords);
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], 0.0);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn timeout_group_aggregates_by_mean() {
        let lattice = ConfigLattice::new(3);
        // KeepAlive at max, SessionTimeout at min → group 1 = 0.5.
        let mut coords = [0usize; 8];
        coords[Param::KeepaliveTimeout.index()] = 2;
        let f = group_features(&lattice, &coords);
        assert!((f[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two levels")]
    fn tiny_plan_panics() {
        sampling_plan(1);
    }
}
