//! The experiment runner: drives a tuner against the simulated
//! three-tier system through a schedule of system contexts, recording
//! the per-iteration series the paper's figures plot.
//!
//! Tuning sessions ([`Experiment::run`]) are inherently sequential —
//! each decision depends on the previous interval. The *sweeps* the
//! paper's static figures need ([`cross_workload`], [`cross_platform`],
//! [`maxclients_sweep`]) are batches of independent measurements, so
//! they fan out across the global parallel [`Runner`](crate::Runner)
//! and return deterministic, submission-ordered results.

use obs::{trace, Event, Span};
use scenario::{EventKind, Scenario};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{Param, PerfSample, ServerConfig, SystemSpec, ThreeTierSystem};

use crate::agent::Tuner;
use crate::context::SystemContext;
use crate::measure::{note_acquisition, MeasurementChannel};
use crate::runner::{MeasureJob, Runner};

/// One phase of an experiment: a system context held for a number of
/// measurement iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextPhase {
    /// The workload mix and VM level during this phase.
    pub context: SystemContext,
    /// Number of measurement intervals before the next phase.
    pub iterations: usize,
}

impl ContextPhase {
    /// Creates a phase.
    pub fn new(context: SystemContext, iterations: usize) -> Self {
        ContextPhase {
            context,
            iterations,
        }
    }
}

/// What happened during one measurement iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Zero-based iteration number across the whole experiment.
    pub iteration: usize,
    /// Index of the active phase.
    pub phase: usize,
    /// Mean response time observed during the interval (ms).
    pub response_ms: f64,
    /// 95th-percentile response time (ms).
    pub p95_ms: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// The configuration the system ran during this interval.
    pub config: ServerConfig,
}

/// An experiment: a base system specification, a measurement interval,
/// and a schedule of context phases.
///
/// # Example
///
/// ```
/// use rac::{paper_contexts, ContextPhase, Experiment, StaticDefault};
/// use simkernel::SimDuration;
/// use websim::SystemSpec;
///
/// let contexts = paper_contexts();
/// let exp = Experiment::new(SystemSpec::default().with_clients(60))
///     .with_interval(SimDuration::from_secs(60))
///     .with_warmup(SimDuration::from_secs(30))
///     .with_phase(ContextPhase::new(contexts[0], 3));
/// let series = exp.run(&mut StaticDefault::new());
/// assert_eq!(series.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    spec: SystemSpec,
    interval: SimDuration,
    warmup: SimDuration,
    phases: Vec<ContextPhase>,
}

impl Experiment {
    /// Creates an experiment with the paper's 5-minute measurement
    /// interval, a 10-minute warm-up, and an empty schedule.
    pub fn new(spec: SystemSpec) -> Self {
        Experiment {
            spec,
            interval: SimDuration::from_secs(300),
            warmup: SimDuration::from_secs(600),
            phases: Vec::new(),
        }
    }

    /// Sets the measurement interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        self.interval = interval;
        self
    }

    /// Sets the warm-up run before the first iteration (under the
    /// default configuration; discarded from the series).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Appends a phase to the schedule.
    pub fn with_phase(mut self, phase: ContextPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Appends `iterations` of `context`.
    pub fn then(self, context: SystemContext, iterations: usize) -> Self {
        self.with_phase(ContextPhase::new(context, iterations))
    }

    /// The measurement interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The base system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The warm-up run length.
    pub fn warmup(&self) -> SimDuration {
        self.warmup
    }

    /// Total scheduled iterations.
    pub fn total_iterations(&self) -> usize {
        self.phases.iter().map(|p| p.iterations).sum()
    }

    /// Runs the tuner through the schedule and returns the series.
    ///
    /// The system starts at [`ServerConfig::default`]; at each iteration
    /// the observed sample is handed to the tuner and its decision is
    /// applied before the next interval. Context changes take effect at
    /// phase boundaries, exactly like the paper's workload/VM switches.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn run(&self, tuner: &mut dyn Tuner) -> Vec<IterationRecord> {
        assert!(
            !self.phases.is_empty(),
            "experiment needs at least one phase"
        );
        // Each tuning session is one trace *run*: the sim clock restarts
        // at zero, and the run counter keeps events from back-to-back
        // sessions (several tuners per figure) in session order.
        if trace::scoped() {
            trace::begin_run();
            trace::set_sim_time_us(0);
            trace::emit(|| {
                Event::new("experiment")
                    .field("tuner", tuner.name())
                    .field("phases", self.phases.len() as u64)
                    .field("iterations", self.total_iterations() as u64)
                    .field("interval_s", self.interval.as_secs_f64())
                    .field("warmup_s", self.warmup.as_secs_f64())
            });
        }
        let first = self.phases[0].context;
        let spec = self
            .spec
            .clone()
            .with_mix(first.mix)
            .with_level(first.level);
        let mut system = ThreeTierSystem::new(spec);
        let mut config = ServerConfig::default();
        system.set_config(config);
        if !self.warmup.is_zero() {
            let _ = system.run_interval(self.warmup);
        }

        let mut series = Vec::with_capacity(self.total_iterations());
        let mut iteration = 0;
        let mut sim_us = self.warmup.as_micros();
        for (phase_idx, phase) in self.phases.iter().enumerate() {
            trace::set_sim_time_us(sim_us);
            trace::emit(|| {
                Event::new("phase")
                    .field("phase", phase_idx as u64)
                    .field("context", phase.context.to_string())
                    .field("iterations", phase.iterations as u64)
            });
            system.set_workload(system.clients(), phase.context.mix);
            system.set_resource_level(phase.context.level);
            for _ in 0..phase.iterations {
                // Wall-clock spans attribute time to phases of the
                // iteration (metrics/profile only — never the trace).
                let sample: PerfSample = {
                    let _measure = Span::start("measure");
                    system.run_interval(self.interval)
                };
                // Decisions are stamped with the *end* of the interval
                // they observed, so the trace orders by simulated time.
                sim_us = sim_us.saturating_add(self.interval.as_micros());
                trace::set_sim_time_us(sim_us);
                series.push(IterationRecord {
                    iteration,
                    phase: phase_idx,
                    response_ms: sample.mean_response_ms,
                    p95_ms: sample.p95_response_ms,
                    throughput_rps: sample.throughput_rps,
                    config,
                });
                if obs::enabled() {
                    obs::health::global()
                        .set_progress(iteration as u64 + 1, self.total_iterations() as u64);
                }
                let next = {
                    let _tuner = Span::start("tuner");
                    tuner.next_config(&sample)
                };
                if next != config {
                    trace::emit(|| {
                        Event::new("reconfigure")
                            .field("iter", (iteration + 1) as u64)
                            .field("from", config.to_string())
                            .field("to", next.to_string())
                    });
                    system.set_config(next);
                    config = next;
                }
                iteration += 1;
            }
        }
        series
    }

    /// Builds the experiment a scenario prescribes: the scenario's
    /// interval and warm-up, its starting mix and VM level, and its
    /// `clients`/`seed` overrides applied to `base`. The schedule stays
    /// empty — drive it with [`Experiment::run_scenario`].
    pub fn for_scenario(base: SystemSpec, scn: &Scenario) -> Experiment {
        let mut spec = base.with_mix(scn.mix).with_level(scn.level);
        if let Some(clients) = scn.clients {
            spec = spec.with_clients(clients);
        }
        if let Some(seed) = scn.seed {
            spec = spec.with_seed(seed);
        }
        Experiment::new(spec)
            .with_interval(scn.interval)
            .with_warmup(scn.warmup)
    }

    /// Runs the tuner through a compiled scenario timeline and returns
    /// the series.
    ///
    /// Each timeline event is applied at the start of the measurement
    /// interval containing it (events are authored relative to the end
    /// of warm-up); the interval is then simulated, measurement faults
    /// (outlier corruption, dropped intervals) are applied to the
    /// observed sample, and the possibly-corrupted sample is what the
    /// tuner sees — exactly the feedback a live monitor would deliver.
    ///
    /// The run is sequential and uses no shared state, so the series is
    /// a pure function of (spec, scenario) and bit-identical at any
    /// `RAC_THREADS` setting.
    pub fn run_scenario(&self, scn: &Scenario, tuner: &mut dyn Tuner) -> Vec<IterationRecord> {
        let timeline = scn.compile();
        let iterations = scn.iterations();
        if trace::scoped() {
            trace::begin_run();
            trace::set_sim_time_us(0);
            trace::emit(|| {
                Event::new("experiment")
                    .field("tuner", tuner.name())
                    .field("phases", 1u64)
                    .field("iterations", iterations as u64)
                    .field("interval_s", self.interval.as_secs_f64())
                    .field("warmup_s", self.warmup.as_secs_f64())
            });
            trace::emit(|| {
                Event::new("phase")
                    .field("phase", 0u64)
                    .field("context", format!("scenario {}", scn.name))
                    .field("iterations", iterations as u64)
            });
        }
        let mut system = ThreeTierSystem::new(self.spec.clone());
        let mut config = ServerConfig::default();
        system.set_config(config);
        if !self.warmup.is_zero() {
            let _ = system.run_interval(self.warmup);
        }

        let warmup_us = self.warmup.as_micros();
        let mut series = Vec::with_capacity(iterations);
        let mut next_event = 0usize;
        let mut outlier: Option<f64> = None;
        let mut drop_next = false;
        let mut channel = MeasurementChannel::default();
        for iteration in 0..iterations {
            let start_us = iteration as u64 * self.interval.as_micros();
            while let Some(ev) = timeline.events().get(next_event) {
                if ev.t.as_micros() > start_us {
                    break;
                }
                trace::set_sim_time_us(warmup_us + ev.t.as_micros());
                trace::emit(|| {
                    Event::new("scenario_event")
                        .field("event", ev.kind.label())
                        .field("detail", ev.kind.to_string())
                });
                match &ev.kind {
                    EventKind::Intensity(scale) => system.set_intensity(*scale),
                    EventKind::MixStep(mix) => system.set_workload(system.clients(), *mix),
                    EventKind::MixBlend { from, to, frac } => {
                        system.set_mix_blend(*from, *to, *frac)
                    }
                    EventKind::Level(level) => system.set_resource_level(*level),
                    EventKind::Stall { tier, dur } => system.inject_stall(sim_tier(*tier), *dur),
                    EventKind::Noise(factor) => system.set_latency_factor(*factor),
                    EventKind::Outlier(factor) => outlier = Some(*factor),
                    EventKind::Drop => drop_next = true,
                    EventKind::Blackout(on) => channel.set_blackout(*on),
                    EventKind::Timeout => channel.arm_timeout(),
                    EventKind::ThinkTail(sigma) => system.set_think_tail(*sigma),
                    EventKind::ServiceTail(sigma) => system.set_service_tail(*sigma),
                }
                next_event += 1;
            }
            let acq = {
                let _measure = Span::start("measure");
                channel.acquire(system.run_interval(self.interval))
            };
            let sample = if drop_next {
                // A dropped interval loses the outlier corruption too —
                // there is nothing left to corrupt.
                drop_next = false;
                outlier = None;
                PerfSample::empty()
            } else {
                match acq.sample {
                    // Failed acquisition: the sample (and any pending
                    // outlier corruption of it) is lost.
                    None => {
                        outlier = None;
                        PerfSample::empty()
                    }
                    Some(raw) => {
                        if let Some(factor) = outlier.take() {
                            PerfSample {
                                mean_response_ms: raw.mean_response_ms * factor,
                                p95_response_ms: raw.p95_response_ms * factor,
                                ..raw
                            }
                        } else {
                            raw
                        }
                    }
                }
            };
            let sim_us = warmup_us + (iteration as u64 + 1) * self.interval.as_micros();
            trace::set_sim_time_us(sim_us);
            note_acquisition(&acq, iteration, channel.is_open());
            series.push(IterationRecord {
                iteration,
                phase: 0,
                response_ms: sample.mean_response_ms,
                p95_ms: sample.p95_response_ms,
                throughput_rps: sample.throughput_rps,
                config,
            });
            if obs::enabled() {
                obs::health::global().set_progress(iteration as u64 + 1, iterations as u64);
            }
            tuner.set_degraded(channel.is_open());
            if !channel.is_open() {
                let next = {
                    let _tuner = Span::start("tuner");
                    tuner.next_config(&sample)
                };
                if next != config {
                    trace::emit(|| {
                        Event::new("reconfigure")
                            .field("iter", (iteration + 1) as u64)
                            .field("from", config.to_string())
                            .field("to", next.to_string())
                    });
                    system.set_config(next);
                    config = next;
                }
            }
        }
        series
    }
}

/// Maps the scenario crate's tier naming onto the simulator's.
pub(crate) fn sim_tier(tier: scenario::Tier) -> websim::Tier {
    match tier {
        scenario::Tier::Web => websim::Tier::Web,
        scenario::Tier::AppDb => websim::Tier::AppDb,
    }
}

/// Summary statistics over (part of) a series.
///
/// # Example
///
/// ```
/// use rac::series_mean;
///
/// // (used with `IterationRecord` slices in practice)
/// assert_eq!(series_mean(&[]), f64::INFINITY);
/// ```
pub fn series_mean(records: &[IterationRecord]) -> f64 {
    let finite: Vec<f64> = records
        .iter()
        .map(|r| r.response_ms)
        .filter(|rt| rt.is_finite())
        .collect();
    if finite.is_empty() {
        return f64::INFINITY;
    }
    finite.iter().sum::<f64>() / finite.len() as f64
}

/// Measures one configuration under every TPC-W mix (workload
/// heterogeneity, the axis of the paper's Figure 3), as one parallel
/// batch through the global runner.
///
/// # Example
///
/// ```
/// use rac::cross_workload;
/// use simkernel::SimDuration;
/// use websim::{ServerConfig, SystemSpec};
///
/// let rows = cross_workload(
///     &SystemSpec::default().with_clients(30),
///     ServerConfig::default(),
///     SimDuration::from_secs(10),
///     SimDuration::from_secs(30),
/// );
/// assert_eq!(rows.len(), 3);
/// assert!(rows.iter().all(|(_, s)| s.is_measurable()));
/// ```
pub fn cross_workload(
    spec: &SystemSpec,
    config: ServerConfig,
    warmup: SimDuration,
    measure: SimDuration,
) -> Vec<(Mix, PerfSample)> {
    let jobs: Vec<MeasureJob> = Mix::ALL
        .iter()
        .map(|&mix| MeasureJob::new(spec.clone().with_mix(mix), config, warmup, measure))
        .collect();
    let samples = Runner::global().run(&jobs);
    Mix::ALL.into_iter().zip(samples).collect()
}

/// Measures one configuration at every app/db VM resource level
/// (platform heterogeneity, the paper's Figure 4 axis), as one parallel
/// batch through the global runner.
pub fn cross_platform(
    spec: &SystemSpec,
    config: ServerConfig,
    warmup: SimDuration,
    measure: SimDuration,
) -> Vec<(ResourceLevel, PerfSample)> {
    let jobs: Vec<MeasureJob> = ResourceLevel::ALL
        .iter()
        .map(|&level| MeasureJob::new(spec.clone().with_level(level), config, warmup, measure))
        .collect();
    let samples = Runner::global().run(&jobs);
    ResourceLevel::ALL.into_iter().zip(samples).collect()
}

/// Sweeps `MaxClients` (the paper's single most sensitive parameter,
/// Figure 2) across the given values at each of the given resource
/// levels — the full `levels × values` grid submitted as one parallel
/// batch. Rows come back grouped by level, values in the given order.
///
/// # Panics
///
/// Panics if any value is outside the `MaxClients` parameter range.
pub fn maxclients_sweep(
    spec: &SystemSpec,
    levels: &[ResourceLevel],
    values: &[u32],
    warmup: SimDuration,
    measure: SimDuration,
) -> Vec<(ResourceLevel, u32, PerfSample)> {
    let points: Vec<(ResourceLevel, u32)> = levels
        .iter()
        .flat_map(|&level| values.iter().map(move |&v| (level, v)))
        .collect();
    let jobs: Vec<MeasureJob> = points
        .iter()
        .map(|&(level, v)| {
            let config = ServerConfig::default()
                .with(Param::MaxClients, v)
                .expect("MaxClients value in range");
            MeasureJob::new(spec.clone().with_level(level), config, warmup, measure)
        })
        .collect();
    let samples = Runner::global().run(&jobs);
    points
        .into_iter()
        .zip(samples)
        .map(|((level, v), s)| (level, v, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::StaticDefault;
    use crate::context::paper_contexts;
    use tpcw::Mix;
    use vmstack::ResourceLevel;

    fn quick_experiment() -> Experiment {
        Experiment::new(SystemSpec::default().with_clients(60).with_seed(3))
            .with_interval(SimDuration::from_secs(60))
            .with_warmup(SimDuration::from_secs(60))
    }

    #[test]
    fn runs_the_scheduled_iterations() {
        let contexts = paper_contexts();
        let exp = quick_experiment().then(contexts[0], 4).then(contexts[1], 3);
        let series = exp.run(&mut StaticDefault::new());
        assert_eq!(series.len(), 7);
        assert_eq!(exp.total_iterations(), 7);
        assert_eq!(series[3].phase, 0);
        assert_eq!(series[4].phase, 1);
        assert!(series.iter().all(|r| r.response_ms.is_finite()));
        assert!((0..7).all(|i| series[i].iteration == i));
    }

    #[test]
    fn static_default_config_never_changes() {
        let contexts = paper_contexts();
        let exp = quick_experiment().then(contexts[0], 3);
        let series = exp.run(&mut StaticDefault::new());
        assert!(series.iter().all(|r| r.config == ServerConfig::default()));
    }

    #[test]
    fn context_change_shifts_performance() {
        // Strong VM vs weak VM with a heavier client load.
        let strong = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
        let weak = SystemContext::new(Mix::Shopping, ResourceLevel::Level3);
        let exp = Experiment::new(SystemSpec::default().with_clients(400).with_seed(5))
            .with_interval(SimDuration::from_secs(120))
            .with_warmup(SimDuration::from_secs(600))
            .then(strong, 3)
            .then(weak, 3);
        let series = exp.run(&mut StaticDefault::new());
        let strong_mean = series_mean(&series[..3]);
        let weak_mean = series_mean(&series[3..]);
        assert!(
            weak_mean > strong_mean,
            "Level-3 should be slower: {strong_mean:.0} vs {weak_mean:.0}"
        );
    }

    #[test]
    fn series_mean_skips_infinite() {
        let r = |rt: f64| IterationRecord {
            iteration: 0,
            phase: 0,
            response_ms: rt,
            p95_ms: rt,
            throughput_rps: 0.0,
            config: ServerConfig::default(),
        };
        assert_eq!(series_mean(&[r(100.0), r(f64::INFINITY), r(300.0)]), 200.0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        quick_experiment().run(&mut StaticDefault::new());
    }

    fn mini_scenario(faults: bool) -> Scenario {
        let fault_lines = if faults {
            "fault at 120s drop\nfault at 180s outlier 4\n"
        } else {
            ""
        };
        let src = format!(
            "name mini\nduration 240s\ninterval 60s\nwarmup 60s\nclients 60\nseed 3\n\
             at 60s intensity 1.5\n{fault_lines}"
        );
        Scenario::parse(&src).unwrap()
    }

    #[test]
    fn scenario_run_is_deterministic_and_applies_measurement_faults() {
        let scn = mini_scenario(true);
        let exp = Experiment::for_scenario(SystemSpec::default(), &scn);
        let a = exp.run_scenario(&scn, &mut StaticDefault::new());
        let b = exp.run_scenario(&scn, &mut StaticDefault::new());
        assert_eq!(a, b, "scenario runs must be reproducible");
        assert_eq!(a.len(), 4);
        assert!((0..4).all(|i| a[i].iteration == i));

        // Measurement faults never touch the system itself, so a run of
        // the same scenario minus the faults sees identical raw
        // samples; the faults only corrupt what the tuner/series sees.
        let clean_scn = mini_scenario(false);
        let clean = Experiment::for_scenario(SystemSpec::default(), &clean_scn)
            .run_scenario(&clean_scn, &mut StaticDefault::new());
        assert!(a[2].response_ms.is_infinite(), "dropped interval");
        assert!(clean[2].response_ms.is_finite());
        assert!(
            (a[3].response_ms - 4.0 * clean[3].response_ms).abs() < 1e-9,
            "outlier corruption: {} vs 4 x {}",
            a[3].response_ms,
            clean[3].response_ms
        );
        assert_eq!(a[0].response_ms, clean[0].response_ms);
        assert_eq!(a[1].response_ms, clean[1].response_ms);
    }

    #[test]
    fn for_scenario_applies_header_overrides() {
        let scn = Scenario::parse(
            "name o\nduration 600s\ninterval 300s\nclients 123\nseed 77\nmix ordering\nlevel 3\n",
        )
        .unwrap();
        let exp = Experiment::for_scenario(SystemSpec::default(), &scn);
        assert_eq!(exp.spec.clients, 123);
        assert_eq!(exp.spec.seed, 77);
        assert_eq!(exp.spec.mix, Mix::Ordering);
        assert_eq!(exp.spec.appdb_level, ResourceLevel::Level3);
        assert_eq!(exp.interval(), SimDuration::from_secs(300));
    }

    #[test]
    fn cross_platform_orders_levels_and_degrades() {
        let spec = SystemSpec::default().with_clients(300).with_seed(11);
        let rows = cross_platform(
            &spec,
            ServerConfig::default(),
            SimDuration::from_secs(120),
            SimDuration::from_secs(120),
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, ResourceLevel::Level1);
        assert_eq!(rows[2].0, ResourceLevel::Level3);
        assert!(
            rows[2].1.mean_response_ms > rows[0].1.mean_response_ms,
            "Level 3 ({:.0}ms) should be slower than Level 1 ({:.0}ms)",
            rows[2].1.mean_response_ms,
            rows[0].1.mean_response_ms
        );
    }

    #[test]
    fn maxclients_sweep_covers_the_grid_in_order() {
        let spec = SystemSpec::default().with_clients(40).with_seed(13);
        let values = [5, 300, 600];
        let rows = maxclients_sweep(
            &spec,
            &[ResourceLevel::Level1, ResourceLevel::Level2],
            &values,
            SimDuration::from_secs(10),
            SimDuration::from_secs(30),
        );
        assert_eq!(rows.len(), 6);
        for (i, &(level, v, _)) in rows.iter().enumerate() {
            assert_eq!(level, [ResourceLevel::Level1, ResourceLevel::Level2][i / 3]);
            assert_eq!(v, values[i % 3]);
        }
    }

    #[test]
    fn cross_workload_covers_all_mixes() {
        let spec = SystemSpec::default().with_clients(30).with_seed(17);
        let rows = cross_workload(
            &spec,
            ServerConfig::default(),
            SimDuration::from_secs(10),
            SimDuration::from_secs(30),
        );
        let mixes: Vec<Mix> = rows.iter().map(|&(m, _)| m).collect();
        assert_eq!(mixes, Mix::ALL.to_vec());
        assert!(rows.iter().all(|(_, s)| s.is_measurable()));
    }
}
