//! Shared wire codecs for the crate's checkpointable values.
//!
//! Everything here is a thin layer over [`ckpt::wire`]: each codec
//! writes a value's complete logical state in a fixed field order and
//! reads it back with validation, so a decoded value either equals the
//! encoded one or the caller gets a typed [`CkptError`] — never a
//! half-restored structure. Types whose fields are private to another
//! module ([`RacAgent`](crate::RacAgent), the violation detector, the
//! baselines) implement their codecs in their own modules; this one
//! holds the building blocks they share.

use ckpt::wire::{Reader, Writer};
use ckpt::{CkptError, Snapshot, SnapshotWriter};
use rl::QTable;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::ServerConfig;

use crate::context::{PolicyLibrary, SystemContext};
use crate::init::InitialPolicy;

/// Encodes a server configuration as its eight raw parameter values.
pub(crate) fn encode_config(w: &mut Writer, config: &ServerConfig) {
    for v in config.values() {
        w.put_u32(v);
    }
}

/// Decodes a server configuration, validating every parameter range.
pub(crate) fn decode_config(r: &mut Reader<'_>) -> Result<ServerConfig, CkptError> {
    let mut values = [0u32; 8];
    for v in &mut values {
        *v = r.get_u32()?;
    }
    ServerConfig::from_values(values).map_err(|e| CkptError::Corrupt {
        detail: format!("invalid server configuration in checkpoint: {e}"),
    })
}

/// Encodes a system context as indices into the canonical mix/level
/// orders.
pub(crate) fn encode_context(w: &mut Writer, ctx: &SystemContext) {
    let mix = Mix::ALL.iter().position(|&m| m == ctx.mix).unwrap_or(0);
    let level = ResourceLevel::ALL
        .iter()
        .position(|&l| l == ctx.level)
        .unwrap_or(0);
    w.put_u8(mix as u8);
    w.put_u8(level as u8);
}

/// Decodes a system context.
pub(crate) fn decode_context(r: &mut Reader<'_>) -> Result<SystemContext, CkptError> {
    let mix = r.get_u8()? as usize;
    let level = r.get_u8()? as usize;
    let mix = *Mix::ALL.get(mix).ok_or_else(|| CkptError::Corrupt {
        detail: format!("mix index {mix} out of range"),
    })?;
    let level = *ResourceLevel::ALL
        .get(level)
        .ok_or_else(|| CkptError::Corrupt {
            detail: format!("resource level index {level} out of range"),
        })?;
    Ok(SystemContext::new(mix, level))
}

/// Encodes a Q-table with its shape.
pub(crate) fn encode_qtable(w: &mut Writer, q: &QTable) {
    w.put_usize(q.states());
    w.put_usize(q.actions());
    for &v in q.raw() {
        w.put_f32(v);
    }
}

/// Decodes a Q-table, enforcing the expected shape.
pub(crate) fn decode_qtable(
    r: &mut Reader<'_>,
    states: usize,
    actions: usize,
) -> Result<QTable, CkptError> {
    let got_states = r.get_usize()?;
    let got_actions = r.get_usize()?;
    if (got_states, got_actions) != (states, actions) {
        return Err(CkptError::Mismatch {
            detail: format!(
                "Q-table shape {got_states}x{got_actions} in checkpoint, expected {states}x{actions}"
            ),
        });
    }
    let len = states
        .checked_mul(actions)
        .ok_or_else(|| CkptError::Corrupt {
            detail: "Q-table shape overflows".to_string(),
        })?;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(r.get_f32()?);
    }
    Ok(QTable::from_raw(states, actions, values))
}

/// Encodes one offline-trained initial policy.
///
/// Public because the fleet transfer store persists donor policies
/// outside any [`PolicyLibrary`]; the field order is part of the
/// checkpoint wire format.
pub fn encode_policy(w: &mut Writer, p: &InitialPolicy) {
    encode_qtable(w, &p.qtable);
    w.put_usize(p.perf_ms.len());
    for &v in &p.perf_ms {
        w.put_f32(v);
    }
    w.put_f64(p.fit.r_squared);
    w.put_f64(p.fit.rmse);
    w.put_usize(p.fit.samples);
    w.put_usize(p.samples);
    w.put_usize(p.passes);
}

/// Decodes one initial policy trained on a `states`-state lattice.
///
/// Returns [`CkptError::Mismatch`] when the encoded policy's shape
/// disagrees with `states`/`actions` — the caller's lattice, not the
/// snapshot, is authoritative.
pub fn decode_policy(
    r: &mut Reader<'_>,
    states: usize,
    actions: usize,
) -> Result<InitialPolicy, CkptError> {
    let qtable = decode_qtable(r, states, actions)?;
    let len = r.get_usize()?;
    if len != states {
        return Err(CkptError::Mismatch {
            detail: format!("policy performance map has {len} states, expected {states}"),
        });
    }
    let mut perf_ms = Vec::with_capacity(len);
    for _ in 0..len {
        perf_ms.push(r.get_f32()?);
    }
    let fit = numerics::FitQuality {
        r_squared: r.get_f64()?,
        rmse: r.get_f64()?,
        samples: r.get_usize()?,
    };
    let samples = r.get_usize()?;
    let passes = r.get_usize()?;
    Ok(InitialPolicy {
        qtable,
        perf_ms,
        fit,
        samples,
        passes,
    })
}

/// Encodes a policy library (contexts in insertion order).
pub(crate) fn encode_library(w: &mut Writer, lib: &PolicyLibrary) {
    w.put_usize(lib.len());
    for (ctx, policy) in lib.iter() {
        encode_context(w, ctx);
        encode_policy(w, policy);
    }
}

/// Decodes a policy library of `states`-state policies.
pub(crate) fn decode_library(
    r: &mut Reader<'_>,
    states: usize,
    actions: usize,
) -> Result<PolicyLibrary, CkptError> {
    let len = r.get_usize()?;
    let mut lib = PolicyLibrary::new();
    for _ in 0..len {
        let ctx = decode_context(r)?;
        let policy = decode_policy(r, states, actions)?;
        lib.insert(ctx, policy);
    }
    Ok(lib)
}

/// Extracts the policy library embedded in a [`RacAgent`] snapshot —
/// the warm-start path: a fresh run seeds its agent with the library a
/// previous run learned with, without restoring any online state.
///
/// # Errors
///
/// Returns [`CkptError::MissingSection`] when the snapshot has no
/// agent library section, [`CkptError::Mismatch`] when the agent ran
/// without a policy library, and decoding errors as usual.
/// Writes a policy library into a snapshot under the same section and
/// layout a [`RacAgent`](crate::RacAgent) saves its own library with,
/// so [`library_from_snapshot`] reads either source. The bench lineup
/// checkpoint uses this to keep the library warm-startable even in
/// snapshots taken while a library-less tuner is active.
///
/// # Panics
///
/// Panics if the snapshot already has an agent library section (the
/// caller mixed this with [`RacAgent::save_state`](crate::RacAgent)).
pub fn library_to_snapshot(snap: &mut SnapshotWriter, lib: &PolicyLibrary) {
    snap.section(crate::agent::SECTION_LIBRARY, |w| {
        match lib.iter().next() {
            Some((_, policy)) => {
                w.put_bool(true);
                w.put_usize(policy.qtable.states());
                w.put_usize(policy.qtable.actions());
                encode_library(w, lib);
            }
            None => w.put_bool(false),
        };
    });
}

pub fn library_from_snapshot(snap: &Snapshot) -> Result<PolicyLibrary, CkptError> {
    let mut r = snap.section(crate::agent::SECTION_LIBRARY)?;
    if !r.get_bool()? {
        return Err(CkptError::Mismatch {
            detail: "checkpointed agent had no policy library to warm-start from".to_string(),
        });
    }
    let states = r.get_usize()?;
    let actions = r.get_usize()?;
    let lib = decode_library(&mut r, states, actions)?;
    r.finish()?;
    Ok(lib)
}

/// Like [`library_from_snapshot`], but additionally requires the stored
/// library's lattice shape to match the lattice the caller is about to
/// seed — the warm-start seeding boundary.
///
/// A snapshot from a run with different `online_levels` decodes cleanly
/// (its shape header is self-consistent) but would blow up later inside
/// agent construction; checking here turns that into a typed
/// [`CkptError::Mismatch`] before any policy is handed out.
pub fn library_from_snapshot_checked(
    snap: &Snapshot,
    states: usize,
    actions: usize,
) -> Result<PolicyLibrary, CkptError> {
    let mut r = snap.section(crate::agent::SECTION_LIBRARY)?;
    if !r.get_bool()? {
        return Err(CkptError::Mismatch {
            detail: "checkpointed agent had no policy library to warm-start from".to_string(),
        });
    }
    let got_states = r.get_usize()?;
    let got_actions = r.get_usize()?;
    if (got_states, got_actions) != (states, actions) {
        return Err(CkptError::Mismatch {
            detail: format!(
                "warm-start library trained on a {got_states}x{got_actions} lattice, \
                 this run's lattice is {states}x{actions}"
            ),
        });
    }
    let lib = decode_library(&mut r, states, actions)?;
    r.finish()?;
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{train_initial_policy, OfflineSettings};
    use crate::param::ConfigLattice;
    use crate::reward::SlaReward;
    use crate::Action;

    #[test]
    fn config_round_trips() {
        let cfg = ServerConfig::default();
        let mut w = Writer::new();
        encode_config(&mut w, &cfg);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        assert_eq!(decode_config(&mut r).unwrap(), cfg);
        r.finish().unwrap();
    }

    #[test]
    fn context_round_trips_all_combinations() {
        for &mix in &Mix::ALL {
            for &level in &ResourceLevel::ALL {
                let ctx = SystemContext::new(mix, level);
                let mut w = Writer::new();
                encode_context(&mut w, &ctx);
                let bytes = w.into_bytes();
                let mut r = Reader::new(&bytes, "t");
                assert_eq!(decode_context(&mut r).unwrap(), ctx);
            }
        }
    }

    #[test]
    fn bad_context_index_is_corrupt() {
        let mut r = Reader::new(&[9, 0], "t");
        assert!(matches!(
            decode_context(&mut r),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn qtable_round_trips_and_rejects_shape_drift() {
        let mut q = QTable::new(3, 2);
        q.set(1, 1, -2.5);
        let mut w = Writer::new();
        encode_qtable(&mut w, &q);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        assert_eq!(decode_qtable(&mut r, 3, 2).unwrap(), q);
        let mut r = Reader::new(&bytes, "t");
        assert!(matches!(
            decode_qtable(&mut r, 4, 2),
            Err(CkptError::Mismatch { .. })
        ));
    }

    #[test]
    fn policy_and_library_round_trip() {
        let lattice = ConfigLattice::new(2);
        let policy = train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings {
                group_levels: 2,
                ..OfflineSettings::default()
            },
            |c: &ServerConfig| 100.0 + c.max_clients() as f64 * 0.1,
        )
        .unwrap();
        let mut lib = PolicyLibrary::new();
        lib.insert(
            SystemContext::new(Mix::Shopping, ResourceLevel::Level1),
            policy,
        );
        let mut w = Writer::new();
        encode_library(&mut w, &lib);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        let back = decode_library(&mut r, lattice.num_states(), Action::COUNT).unwrap();
        r.finish().unwrap();
        assert_eq!(back, lib);
    }
}
