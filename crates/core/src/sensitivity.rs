//! Automatic parameter selection by sensitivity analysis.
//!
//! The paper selects its eight tunables by hand and names automatic
//! selection as future work ("configurable parameters need to be
//! selected automatically in a more efficient way"). This module
//! implements the natural baseline: a one-at-a-time sensitivity sweep —
//! vary each parameter across its range with everything else at the
//! defaults, and rank parameters by how much the response time moves.

use websim::{Param, ServerConfig};

use crate::param::ConfigLattice;
use crate::runner::Measure;

/// Sensitivity of one parameter: how strongly it moves performance when
/// swept alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSensitivity {
    /// The parameter.
    pub param: Param,
    /// Worst/best response-time ratio across the sweep (≥ 1; 1 means the
    /// parameter is performance-irrelevant in this context).
    pub span_ratio: f64,
    /// The best value observed in the sweep.
    pub best_value: u32,
    /// Response time at the best value (ms).
    pub best_response_ms: f64,
    /// Response time at the worst value (ms).
    pub worst_response_ms: f64,
}

/// Sweeps every parameter one at a time (others at Table-1 defaults)
/// and returns sensitivities sorted most-sensitive first.
///
/// `measure` supplies the observed mean response time in milliseconds
/// per probed configuration; all `8 × levels` probes are submitted as a
/// single batch, so runner-backed measurers
/// ([`SimMeasurer`](crate::SimMeasurer)) evaluate them in parallel.
/// Non-finite measurements are skipped.
///
/// # Panics
///
/// Panics if `levels < 2`.
///
/// # Example
///
/// ```
/// use rac::{analyze_sensitivity, ConfigLattice};
/// use websim::Param;
///
/// // Synthetic system where only MaxClients matters.
/// let ranked = analyze_sensitivity(&ConfigLattice::new(4), |cfg: &websim::ServerConfig| {
///     2_000.0 - 2.0 * cfg.max_clients() as f64
/// });
/// assert_eq!(ranked[0].param, Param::MaxClients);
/// assert!(ranked[0].span_ratio > ranked[7].span_ratio);
/// ```
pub fn analyze_sensitivity(
    lattice: &ConfigLattice,
    mut measure: impl Measure,
) -> Vec<ParamSensitivity> {
    let base = ServerConfig::default();
    // One flat batch over all probes (params outer, levels inner) so
    // the whole sweep fans out across the runner's workers at once.
    let probes: Vec<(u32, ServerConfig)> = Param::ALL
        .iter()
        .flat_map(|&param| {
            (0..lattice.levels()).map(move |level| {
                let value = lattice.value_at(param, level);
                (
                    value,
                    base.with(param, value).expect("lattice values in range"),
                )
            })
        })
        .collect();
    let configs: Vec<ServerConfig> = probes.iter().map(|&(_, cfg)| cfg).collect();
    let measured = measure.measure_batch(&configs);

    let mut out: Vec<ParamSensitivity> = Param::ALL
        .iter()
        .enumerate()
        .map(|(p, &param)| {
            let mut best = (base.get(param), f64::INFINITY);
            let mut worst = f64::NEG_INFINITY;
            for level in 0..lattice.levels() {
                let i = p * lattice.levels() + level;
                let (value, rt) = (probes[i].0, measured[i]);
                if !rt.is_finite() {
                    continue;
                }
                if rt < best.1 {
                    best = (value, rt);
                }
                worst = worst.max(rt);
            }
            let span_ratio = if best.1.is_finite() && best.1 > 0.0 && worst.is_finite() {
                (worst / best.1).max(1.0)
            } else {
                1.0
            };
            ParamSensitivity {
                param,
                span_ratio,
                best_value: best.0,
                best_response_ms: best.1,
                worst_response_ms: worst,
            }
        })
        .collect();
    out.sort_by(|a, b| b.span_ratio.total_cmp(&a.span_ratio));
    out
}

/// Returns the `k` most performance-critical parameters for a context,
/// per [`analyze_sensitivity`].
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the parameter count.
pub fn select_parameters(lattice: &ConfigLattice, k: usize, measure: impl Measure) -> Vec<Param> {
    assert!(k > 0 && k <= Param::ALL.len(), "k must be in 1..=8");
    analyze_sensitivity(lattice, measure)
        .into_iter()
        .take(k)
        .map(|s| s.param)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two parameters matter, six do not.
    fn two_knob_landscape(cfg: &ServerConfig) -> f64 {
        let m = cfg.max_clients() as f64;
        let k = cfg.keepalive_timeout_secs() as f64;
        300.0 + 0.01 * (m - 400.0).powi(2) + 20.0 * (k - 9.0).powi(2)
    }

    #[test]
    fn ranks_relevant_parameters_first() {
        let lattice = ConfigLattice::new(4);
        let ranked = analyze_sensitivity(&lattice, two_knob_landscape);
        assert_eq!(ranked.len(), 8);
        let top2: Vec<Param> = ranked[..2].iter().map(|s| s.param).collect();
        assert!(top2.contains(&Param::MaxClients), "{top2:?}");
        assert!(top2.contains(&Param::KeepaliveTimeout), "{top2:?}");
        // Irrelevant parameters have unit span.
        for s in &ranked[2..] {
            assert!((s.span_ratio - 1.0).abs() < 1e-9, "{:?}", s.param);
        }
    }

    #[test]
    fn best_value_is_the_sweep_minimum() {
        let lattice = ConfigLattice::new(4);
        let ranked = analyze_sensitivity(&lattice, two_knob_landscape);
        let mc = ranked
            .iter()
            .find(|s| s.param == Param::MaxClients)
            .expect("present");
        // Grid 5, 203, 402, 600 — the bowl minimum (400) is nearest 402.
        assert_eq!(mc.best_value, 402);
        assert!(mc.best_response_ms < mc.worst_response_ms);
    }

    #[test]
    fn select_parameters_takes_top_k() {
        let lattice = ConfigLattice::new(3);
        let top = select_parameters(&lattice, 2, two_knob_landscape);
        assert_eq!(top.len(), 2);
        assert!(top.contains(&Param::MaxClients));
    }

    #[test]
    fn non_finite_measurements_are_skipped() {
        let lattice = ConfigLattice::new(3);
        let mut calls = 0;
        let ranked = analyze_sensitivity(&lattice, |cfg: &ServerConfig| {
            calls += 1;
            if calls % 3 == 0 {
                f64::NAN
            } else {
                two_knob_landscape(cfg)
            }
        });
        assert_eq!(ranked.len(), 8);
        assert!(ranked.iter().all(|s| s.span_ratio >= 1.0));
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn zero_k_panics() {
        select_parameters(&ConfigLattice::new(3), 0, |_: &ServerConfig| 1.0);
    }
}
