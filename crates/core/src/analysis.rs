//! Series analysis: convergence detection and summary statistics for
//! experiment series (the numbers the paper reports about its figures —
//! "stabilized in fewer than 25 iterations", "30% better than …",
//! "4 spikes at rate 0.3").

use crate::experiment::IterationRecord;

/// Summary of one tuner's series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Mean response time over finite samples (ms).
    pub mean_ms: f64,
    /// Median response time (ms).
    pub median_ms: f64,
    /// Mean over the final quarter of the series — the "stable state"
    /// performance (ms).
    pub stable_ms: f64,
    /// Iteration after which the series stays within the stability band,
    /// if it ever does.
    pub converged_after: Option<usize>,
    /// Number of spikes: samples exceeding twice the median.
    pub spikes: usize,
}

/// Extracts the response-time series from records.
pub fn response_series(records: &[IterationRecord]) -> Vec<f64> {
    records.iter().map(|r| r.response_ms).collect()
}

/// The iteration after which the series stays within `band` (relative)
/// of its final plateau (mean of the last 5 samples), or `None` if it
/// never settles. This is the notion behind the paper's "drive the
/// system to a stable state in fewer than 25 iterations".
///
/// # Panics
///
/// Panics if `band` is not positive.
///
/// # Example
///
/// ```
/// use rac::convergence_iteration;
///
/// let series: Vec<f64> = (0..20).map(|i| if i < 7 { 1_000.0 - 100.0 * i as f64 } else { 300.0 }).collect();
/// assert_eq!(convergence_iteration(&series, 0.2), Some(7));
/// ```
pub fn convergence_iteration(series: &[f64], band: f64) -> Option<usize> {
    assert!(band > 0.0, "band must be positive");
    if series.len() < 6 {
        return None;
    }
    let tail: f64 = series[series.len() - 5..].iter().sum::<f64>() / 5.0;
    if !tail.is_finite() {
        return None;
    }
    let ok = |v: f64| v.is_finite() && (v - tail).abs() <= band * tail.abs().max(1.0);
    let mut candidate = None;
    for (i, &v) in series.iter().enumerate() {
        if ok(v) {
            candidate.get_or_insert(i);
        } else {
            candidate = None;
        }
    }
    candidate
}

/// Summarizes a series with a 20% stability band.
///
/// # Example
///
/// ```
/// use rac::summarize_series;
///
/// let s = summarize_series(&[100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 500.0, 100.0]);
/// assert_eq!(s.spikes, 1);
/// assert_eq!(s.median_ms, 100.0);
/// ```
pub fn summarize_series(series: &[f64]) -> SeriesSummary {
    let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return SeriesSummary {
            mean_ms: f64::INFINITY,
            median_ms: f64::INFINITY,
            stable_ms: f64::INFINITY,
            converged_after: None,
            spikes: 0,
        };
    }
    let mean_ms = finite.iter().sum::<f64>() / finite.len() as f64;
    let median_ms = {
        let mut v = finite.clone();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let tail_start = series.len() - (series.len() / 4).max(1);
    let tail: Vec<f64> = series[tail_start..]
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    let stable_ms = if tail.is_empty() {
        f64::INFINITY
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    SeriesSummary {
        mean_ms,
        median_ms,
        stable_ms,
        converged_after: convergence_iteration(series, 0.2),
        spikes: finite.iter().filter(|&&v| v > 2.0 * median_ms).count(),
    }
}

/// Relative improvement of `ours` over `theirs` in percent, computed on
/// means: `100 · (theirs − ours) / theirs`. Positive means `ours` is
/// faster.
///
/// # Example
///
/// ```
/// use rac::improvement_percent;
///
/// assert_eq!(improvement_percent(400.0, 1_000.0), 60.0);
/// ```
pub fn improvement_percent(ours: f64, theirs: f64) -> f64 {
    if !theirs.is_finite() || theirs <= 0.0 {
        return 0.0;
    }
    100.0 * (theirs - ours) / theirs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_finds_the_settle_point() {
        let mut series = vec![2_000.0, 1_500.0, 900.0, 650.0];
        series.extend(vec![500.0; 16]);
        // 650 is outside the 20% band around 500; the run counts as
        // settled from the first in-band sample.
        assert_eq!(convergence_iteration(&series, 0.2), Some(4));
    }

    #[test]
    fn convergence_none_for_unstable_series() {
        // Alternates forever between two far-apart levels.
        let series: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 100.0 } else { 10_000.0 })
            .collect();
        assert_eq!(convergence_iteration(&series, 0.2), None);
    }

    #[test]
    fn convergence_needs_enough_samples() {
        assert_eq!(convergence_iteration(&[1.0; 5], 0.2), None);
    }

    #[test]
    fn convergence_tolerates_infinite_prefix() {
        let mut series = vec![f64::INFINITY; 3];
        series.extend(vec![100.0; 12]);
        assert_eq!(convergence_iteration(&series, 0.2), Some(3));
    }

    #[test]
    fn summary_counts_spikes_and_stable_tail() {
        let mut series = vec![1_000.0, 800.0];
        series.extend(vec![500.0; 16]);
        series[10] = 2_000.0; // spike
        let s = summarize_series(&series);
        assert_eq!(s.spikes, 1);
        assert!((s.median_ms - 500.0).abs() < 1e-9);
        assert!(s.stable_ms < 600.0);
        assert!(s.converged_after.is_some());
    }

    #[test]
    fn summary_of_empty_and_infinite() {
        let s = summarize_series(&[]);
        assert!(s.mean_ms.is_infinite());
        let s2 = summarize_series(&[f64::INFINITY; 10]);
        assert!(s2.mean_ms.is_infinite());
        assert_eq!(s2.spikes, 0);
    }

    #[test]
    fn improvement_edge_cases() {
        assert_eq!(improvement_percent(500.0, 1_000.0), 50.0);
        assert!(improvement_percent(1_500.0, 1_000.0) < 0.0);
        assert_eq!(improvement_percent(1.0, 0.0), 0.0);
        assert_eq!(improvement_percent(1.0, f64::INFINITY), 0.0);
    }

    #[test]
    #[should_panic(expected = "band must be positive")]
    fn zero_band_panics() {
        convergence_iteration(&[1.0; 10], 0.0);
    }
}
