//! **RAC** — a Reinforcement-learning approach to online web-system
//! Auto-Configuration.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Bu, Rao & Xu, ICDCS 2009): an agent that automatically tunes the
//! performance-critical parameters of a multi-tier web system, online,
//! adapting both to workload changes and to VM resource reallocation.
//!
//! # Architecture
//!
//! The agent has the paper's three components:
//!
//! * a **performance monitor** — application-level response time per
//!   measurement interval (supplied by the [`Experiment`] runner from
//!   the [`websim`] simulator; nothing OS- or hypervisor-level),
//! * an **RL-based decision maker** — a Q-table over the discretized
//!   configuration lattice ([`ConfigLattice`], [`ConfigMdp`]), retrained
//!   in batch every interval and queried ε-greedily,
//! * a **configuration controller** — emits the next [`websim::ServerConfig`].
//!
//! Cold-started RL explores disastrously online, so RAC is bootstrapped
//! by **policy initialization** ([`train_initial_policy`]): parameter
//! grouping → coarse sampling → polynomial-regression prediction →
//! offline RL. Per-context policies form a [`PolicyLibrary`]; an online
//! [`ViolationDetector`] notices context changes and switches to the
//! best-matching policy (Algorithm 3).
//!
//! # Quickstart
//!
//! ```
//! use rac::{ContextPhase, Experiment, RacAgent, RacSettings, SystemContext};
//! use simkernel::SimDuration;
//! use tpcw::Mix;
//! use vmstack::ResourceLevel;
//! use websim::SystemSpec;
//!
//! // A (small, fast) tuning session on the simulated testbed.
//! let context = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
//! let experiment = Experiment::new(SystemSpec::default().with_clients(80))
//!     .with_interval(SimDuration::from_secs(60))
//!     .with_warmup(SimDuration::from_secs(60))
//!     .then(context, 5);
//!
//! let mut agent = RacAgent::new(RacSettings { online_levels: 3, ..RacSettings::default() });
//! let series = experiment.run(&mut agent);
//! assert_eq!(series.len(), 5);
//! for r in &series {
//!     println!("iter {:>2}: {:.0} ms under {}", r.iteration, r.response_ms, r.config);
//! }
//! ```
//!
//! See the repository's `examples/` for realistic scenarios (adaptive
//! tuning across context changes, the offline initialization pipeline,
//! capacity planning) and the `rac-bench` crate for the full
//! reproduction of the paper's tables and figures.

mod action;
mod agent;
mod analysis;
mod baseline;
mod checkpoint;
mod context;
mod experiment;
pub mod grouping;
mod guardrail;
mod init;
mod mdp;
mod measure;
mod param;
mod persist;
mod reward;
pub mod runner;
mod sensitivity;
mod training;

pub use action::Action;
pub use agent::{AgentError, RacAgent, RacSettings, Tuner};
pub use analysis::{
    convergence_iteration, improvement_percent, response_series, summarize_series, SeriesSummary,
};
pub use baseline::{StaticDefault, TrialAndError};
pub use checkpoint::{
    decode_series, encode_series, BoundaryAction, PersistTuner, ScenarioProgress,
    ScenarioRunOutcome,
};
pub use context::{paper_contexts, PolicyLibrary, SystemContext, ViolationDetector};
pub use experiment::{
    cross_platform, cross_workload, maxclients_sweep, series_mean, ContextPhase, Experiment,
    IterationRecord,
};
pub use guardrail::{GuardDecision, GuardSettings, RollbackGuard};
pub use init::{train_initial_policy, InitialPolicy, OfflineSettings};
pub use mdp::ConfigMdp;
pub use measure::{
    Acquisition, BreakerState, BreakerTransition, ChannelSettings, MeasurementChannel,
};
pub use param::ConfigLattice;
pub use persist::{
    decode_policy, encode_policy, library_from_snapshot, library_from_snapshot_checked,
    library_to_snapshot,
};
pub use reward::SlaReward;
pub use runner::{Measure, MeasureJob, Runner, SimMeasurer};
pub use sensitivity::{analyze_sensitivity, select_parameters, ParamSensitivity};
pub use training::{build_policy_library, train_policy_for_context, TrainingOptions};
