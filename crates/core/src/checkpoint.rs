//! Crash-safe scenario runs: boundary callbacks for periodic
//! snapshots, and deterministic resume by replay.
//!
//! A full discrete-event-simulator state dump would be enormous and
//! fragile; instead a checkpoint records only the *learned* state (the
//! tuner, via [`PersistTuner`]) plus the run's recorded series
//! ([`ScenarioProgress`]). Resuming rebuilds the simulated system from
//! its spec and deterministically replays the completed intervals —
//! applying timeline events and the recorded configuration transitions
//! in the exact order of the live run, with no tuner calls and no trace
//! emissions — then hands control back to the restored tuner. Because
//! the simulator is a pure function of (spec, inputs), the replayed
//! system is bit-identical to the one the interrupted run had, and the
//! continued run produces byte-identical series and trace output to an
//! uninterrupted one.

use ckpt::wire::{Reader, Writer};
use ckpt::{CkptError, SnapshotWriter};
use obs::trace;
use scenario::{EventKind, Scenario};
use websim::{PerfSample, ServerConfig, ThreeTierSystem};

use crate::agent::{RacAgent, Tuner};
use crate::baseline::{StaticDefault, TrialAndError};
use crate::experiment::{sim_tier, Experiment, IterationRecord};
use crate::measure::{note_acquisition, MeasurementChannel};

/// A tuner whose complete decision-relevant state can be serialized
/// into a snapshot. Restoration is type-specific (each tuner has its
/// own `restore` constructor); this trait covers the saving side so a
/// checkpoint sink can snapshot whatever tuner it is driving.
pub trait PersistTuner: Tuner {
    /// Writes the tuner's state into the snapshot under construction.
    fn save_state(&self, snap: &mut SnapshotWriter);
}

impl PersistTuner for RacAgent {
    fn save_state(&self, snap: &mut SnapshotWriter) {
        RacAgent::save_state(self, snap);
    }
}

impl PersistTuner for TrialAndError {
    fn save_state(&self, snap: &mut SnapshotWriter) {
        TrialAndError::save_state(self, snap);
    }
}

impl PersistTuner for StaticDefault {
    fn save_state(&self, _snap: &mut SnapshotWriter) {
        // Stateless: a fresh StaticDefault is already fully restored.
    }
}

/// How far a scenario run has progressed: everything the resume replay
/// needs besides the tuner's own state.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioProgress {
    /// Number of completed measurement iterations.
    pub iterations_done: usize,
    /// The records of those iterations, in order.
    pub series: Vec<IterationRecord>,
    /// The configuration the *next* interval will run under (the
    /// tuner's last decision, already applied to the system).
    pub next_config: ServerConfig,
    /// The measurement channel (circuit breaker) state at the
    /// boundary. Resume rebuilds the channel by replay and validates it
    /// against this record, so a kill inside an open-breaker window
    /// resumes exactly where it left off.
    pub channel: MeasurementChannel,
}

/// Serializes an iteration series (shared by [`ScenarioProgress`] and
/// the bench crate's whole-lineup checkpoint, which stores the series
/// of every already-finished tuner).
pub fn encode_series(w: &mut Writer, series: &[IterationRecord]) {
    w.put_usize(series.len());
    for rec in series {
        w.put_usize(rec.iteration);
        w.put_usize(rec.phase);
        w.put_f64(rec.response_ms);
        w.put_f64(rec.p95_ms);
        w.put_f64(rec.throughput_rps);
        crate::persist::encode_config(w, &rec.config);
    }
}

/// Restores a series written by [`encode_series`].
///
/// # Errors
///
/// Returns [`CkptError::Corrupt`] when the records are not numbered
/// `0..len` (a scenario series always is).
pub fn decode_series(r: &mut Reader<'_>) -> Result<Vec<IterationRecord>, CkptError> {
    let len = r.get_usize()?;
    let mut series = Vec::with_capacity(len.min(1 << 20));
    for i in 0..len {
        let rec = IterationRecord {
            iteration: r.get_usize()?,
            phase: r.get_usize()?,
            response_ms: r.get_f64()?,
            p95_ms: r.get_f64()?,
            throughput_rps: r.get_f64()?,
            config: crate::persist::decode_config(r)?,
        };
        if rec.iteration != i {
            return Err(CkptError::Corrupt {
                detail: format!("record {i} carries iteration number {}", rec.iteration),
            });
        }
        series.push(rec);
    }
    Ok(series)
}

impl ScenarioProgress {
    /// Serializes the progress record.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.iterations_done);
        encode_series(w, &self.series);
        crate::persist::encode_config(w, &self.next_config);
        self.channel.encode(w);
    }

    /// Restores a progress record written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Corrupt`] when the series is internally
    /// inconsistent (length or iteration numbering).
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let iterations_done = r.get_usize()?;
        let series = decode_series(r)?;
        if series.len() != iterations_done {
            return Err(CkptError::Corrupt {
                detail: format!(
                    "progress says {iterations_done} iterations but has {} records",
                    series.len()
                ),
            });
        }
        let next_config = crate::persist::decode_config(r)?;
        let channel = MeasurementChannel::decode(r)?;
        Ok(ScenarioProgress {
            iterations_done,
            series,
            next_config,
            channel,
        })
    }
}

/// What the boundary callback tells the runner to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryAction {
    /// Keep running.
    Continue,
    /// Stop cleanly after this iteration (the caller has persisted the
    /// progress it needs to resume later).
    Stop,
}

/// How a resumable scenario run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioRunOutcome {
    /// The full timeline ran; the complete series is returned.
    Complete(Vec<IterationRecord>),
    /// The boundary callback requested a stop; the progress describes
    /// the prefix that ran.
    Interrupted(ScenarioProgress),
}

impl Experiment {
    /// [`run_scenario`](Experiment::run_scenario) with checkpoint
    /// hooks: `on_boundary` is called after every completed iteration
    /// with the progress so far and the tuner (to snapshot), and may
    /// stop the run; `resume` continues a previous run's progress by
    /// deterministic replay.
    ///
    /// A run that is stopped at a boundary and later resumed produces
    /// byte-identical series and trace output to one that ran straight
    /// through, provided the caller restored the trace buffer and run
    /// counter before resuming (the bench crate's checkpoint sink does
    /// both).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Mismatch`] when `resume` does not fit this
    /// scenario (more iterations recorded than the timeline has), and
    /// propagates errors from `on_boundary`.
    pub fn run_scenario_resumable(
        &self,
        scn: &Scenario,
        tuner: &mut dyn PersistTuner,
        resume: Option<ScenarioProgress>,
        mut on_boundary: impl FnMut(
            &ScenarioProgress,
            &dyn PersistTuner,
        ) -> Result<BoundaryAction, CkptError>,
    ) -> Result<ScenarioRunOutcome, CkptError> {
        let timeline = scn.compile();
        let iterations = scn.iterations();
        let mut progress = match resume {
            Some(p) => {
                if p.iterations_done > iterations {
                    return Err(CkptError::Mismatch {
                        detail: format!(
                            "checkpoint has {} iterations, scenario only runs {iterations}",
                            p.iterations_done
                        ),
                    });
                }
                p
            }
            None => {
                // Fresh run: emit the same session header run_scenario
                // writes, so the trace is indistinguishable.
                if trace::scoped() {
                    trace::begin_run();
                    trace::set_sim_time_us(0);
                    trace::emit(|| {
                        obs::Event::new("experiment")
                            .field("tuner", tuner.name())
                            .field("phases", 1u64)
                            .field("iterations", iterations as u64)
                            .field("interval_s", self.interval().as_secs_f64())
                            .field("warmup_s", self.warmup().as_secs_f64())
                    });
                    trace::emit(|| {
                        obs::Event::new("phase")
                            .field("phase", 0u64)
                            .field("context", format!("scenario {}", scn.name))
                            .field("iterations", iterations as u64)
                    });
                }
                ScenarioProgress {
                    iterations_done: 0,
                    series: Vec::with_capacity(iterations),
                    next_config: ServerConfig::default(),
                    channel: MeasurementChannel::default(),
                }
            }
        };

        let mut system = ThreeTierSystem::new(self.spec().clone());
        let mut config = ServerConfig::default();
        system.set_config(config);
        if !self.warmup().is_zero() {
            let _ = system.run_interval(self.warmup());
        }

        let warmup_us = self.warmup().as_micros();
        let interval_us = self.interval().as_micros();
        let mut next_event = 0usize;
        let mut outlier: Option<f64> = None;
        let mut drop_next = false;
        let mut channel = MeasurementChannel::default();

        // Replay the completed prefix: identical system mutations in
        // identical order, but silently — no tuner calls (its state
        // came from the snapshot) and no trace emissions (the restored
        // trace buffer already holds these iterations' events).
        for iteration in 0..progress.iterations_done {
            let start_us = iteration as u64 * interval_us;
            while let Some(ev) = timeline.events().get(next_event) {
                if ev.t.as_micros() > start_us {
                    break;
                }
                apply_event(
                    &mut system,
                    &ev.kind,
                    &mut outlier,
                    &mut drop_next,
                    &mut channel,
                );
                next_event += 1;
            }
            // The breaker state machine advances every interval, so the
            // replay must step it too (silently — no metrics or trace).
            let _ = channel.acquire(system.run_interval(self.interval()));
            // Measurement faults only corrupt samples, which the
            // recorded series already holds; clear them like the live
            // loop does.
            drop_next = false;
            outlier = None;
            let next = if iteration + 1 < progress.iterations_done {
                progress.series[iteration + 1].config
            } else {
                progress.next_config
            };
            if next != config {
                system.set_config(next);
                config = next;
            }
        }
        if channel != progress.channel {
            return Err(CkptError::Mismatch {
                detail: "measurement-channel state diverged on replay".to_string(),
            });
        }

        // Live from here: byte-for-byte the run_scenario loop, plus the
        // boundary callback.
        for iteration in progress.iterations_done..iterations {
            let start_us = iteration as u64 * interval_us;
            while let Some(ev) = timeline.events().get(next_event) {
                if ev.t.as_micros() > start_us {
                    break;
                }
                trace::set_sim_time_us(warmup_us + ev.t.as_micros());
                trace::emit(|| {
                    obs::Event::new("scenario_event")
                        .field("event", ev.kind.label())
                        .field("detail", ev.kind.to_string())
                });
                apply_event(
                    &mut system,
                    &ev.kind,
                    &mut outlier,
                    &mut drop_next,
                    &mut channel,
                );
                next_event += 1;
            }
            let acq = {
                let _measure = obs::Span::start("measure");
                channel.acquire(system.run_interval(self.interval()))
            };
            let sample = if drop_next {
                drop_next = false;
                outlier = None;
                PerfSample::empty()
            } else {
                match acq.sample {
                    None => {
                        outlier = None;
                        PerfSample::empty()
                    }
                    Some(raw) => {
                        if let Some(factor) = outlier.take() {
                            PerfSample {
                                mean_response_ms: raw.mean_response_ms * factor,
                                p95_response_ms: raw.p95_response_ms * factor,
                                ..raw
                            }
                        } else {
                            raw
                        }
                    }
                }
            };
            let sim_us = warmup_us + (iteration as u64 + 1) * interval_us;
            trace::set_sim_time_us(sim_us);
            note_acquisition(&acq, iteration, channel.is_open());
            progress.series.push(IterationRecord {
                iteration,
                phase: 0,
                response_ms: sample.mean_response_ms,
                p95_ms: sample.p95_response_ms,
                throughput_rps: sample.throughput_rps,
                config,
            });
            if obs::enabled() {
                obs::health::global().set_progress(iteration as u64 + 1, iterations as u64);
            }
            tuner.set_degraded(channel.is_open());
            if !channel.is_open() {
                let next = {
                    let _tuner = obs::Span::start("tuner");
                    tuner.next_config(&sample)
                };
                if next != config {
                    trace::emit(|| {
                        obs::Event::new("reconfigure")
                            .field("iter", (iteration + 1) as u64)
                            .field("from", config.to_string())
                            .field("to", next.to_string())
                    });
                    system.set_config(next);
                    config = next;
                }
            }
            progress.iterations_done = iteration + 1;
            progress.next_config = config;
            progress.channel = channel.clone();
            if on_boundary(&progress, &*tuner)? == BoundaryAction::Stop
                && progress.iterations_done < iterations
            {
                return Ok(ScenarioRunOutcome::Interrupted(progress));
            }
        }
        Ok(ScenarioRunOutcome::Complete(progress.series))
    }
}

/// Applies one timeline event to the simulated system — the shared
/// mutation core of the live loop and the resume replay.
fn apply_event(
    system: &mut ThreeTierSystem,
    kind: &EventKind,
    outlier: &mut Option<f64>,
    drop_next: &mut bool,
    channel: &mut MeasurementChannel,
) {
    match kind {
        EventKind::Intensity(scale) => system.set_intensity(*scale),
        EventKind::MixStep(mix) => system.set_workload(system.clients(), *mix),
        EventKind::MixBlend { from, to, frac } => system.set_mix_blend(*from, *to, *frac),
        EventKind::Level(level) => system.set_resource_level(*level),
        EventKind::Stall { tier, dur } => system.inject_stall(sim_tier(*tier), *dur),
        EventKind::Noise(factor) => system.set_latency_factor(*factor),
        EventKind::Outlier(factor) => *outlier = Some(*factor),
        EventKind::Drop => *drop_next = true,
        EventKind::Blackout(on) => channel.set_blackout(*on),
        EventKind::Timeout => channel.arm_timeout(),
        EventKind::ThinkTail(sigma) => system.set_think_tail(*sigma),
        EventKind::ServiceTail(sigma) => system.set_service_tail(*sigma),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::SystemSpec;

    fn scenario() -> Scenario {
        Scenario::parse(
            "name mini\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 3\n\
             at 60s intensity 1.5\nfault at 150s outlier 4\nfault at 200s drop\n",
        )
        .unwrap()
    }

    fn experiment(scn: &Scenario) -> Experiment {
        Experiment::for_scenario(SystemSpec::default(), scn)
    }

    #[test]
    fn resumable_matches_run_scenario_when_uninterrupted() {
        let scn = scenario();
        let exp = experiment(&scn);
        let plain = exp.run_scenario(&scn, &mut StaticDefault::new());
        let outcome = exp
            .run_scenario_resumable(&scn, &mut StaticDefault::new(), None, |_, _| {
                Ok(BoundaryAction::Continue)
            })
            .unwrap();
        assert_eq!(outcome, ScenarioRunOutcome::Complete(plain));
    }

    #[test]
    fn stop_resume_is_bit_identical_for_every_boundary() {
        let scn = scenario();
        let exp = experiment(&scn);
        let full = exp.run_scenario(&scn, &mut StaticDefault::new());
        for stop_after in 1..scn.iterations() {
            let outcome = exp
                .run_scenario_resumable(&scn, &mut StaticDefault::new(), None, |p, _| {
                    Ok(if p.iterations_done >= stop_after {
                        BoundaryAction::Stop
                    } else {
                        BoundaryAction::Continue
                    })
                })
                .unwrap();
            let ScenarioRunOutcome::Interrupted(progress) = outcome else {
                panic!("run should stop after {stop_after} iterations");
            };
            assert_eq!(progress.iterations_done, stop_after);
            let resumed = exp
                .run_scenario_resumable(&scn, &mut StaticDefault::new(), Some(progress), |_, _| {
                    Ok(BoundaryAction::Continue)
                })
                .unwrap();
            assert_eq!(
                resumed,
                ScenarioRunOutcome::Complete(full.clone()),
                "resume after iteration {stop_after} diverged"
            );
        }
    }

    #[test]
    fn rac_agent_survives_stop_and_snapshot_resume() {
        let scn = scenario();
        let exp = experiment(&scn);
        let settings = crate::RacSettings {
            online_levels: 3,
            ..crate::RacSettings::default()
        };
        let full = exp.run_scenario(&scn, &mut RacAgent::new(settings.clone()));

        let stop_after = 3;
        let mut snapshot_bytes = Vec::new();
        let outcome = exp
            .run_scenario_resumable(&scn, &mut RacAgent::new(settings), None, |p, tuner| {
                if p.iterations_done == stop_after {
                    let mut snap = SnapshotWriter::new();
                    tuner.save_state(&mut snap);
                    snapshot_bytes = snap.to_bytes();
                    Ok(BoundaryAction::Stop)
                } else {
                    Ok(BoundaryAction::Continue)
                }
            })
            .unwrap();
        let ScenarioRunOutcome::Interrupted(progress) = outcome else {
            panic!("run should have stopped");
        };
        // Rebuild the agent purely from the snapshot bytes, as a new
        // process would.
        let snap = ckpt::Snapshot::from_bytes(&snapshot_bytes).unwrap();
        let mut agent = RacAgent::restore(&snap).unwrap();
        let resumed = exp
            .run_scenario_resumable(&scn, &mut agent, Some(progress), |_, _| {
                Ok(BoundaryAction::Continue)
            })
            .unwrap();
        assert_eq!(resumed, ScenarioRunOutcome::Complete(full));
    }

    #[test]
    fn stop_resume_through_an_open_breaker_window_is_bit_identical() {
        // A blackout long enough to trip the breaker and keep it open
        // across several boundaries, plus a one-shot timeout later.
        let scn = Scenario::parse(
            "name outage\nduration 600s\ninterval 60s\nwarmup 60s\nclients 60\nseed 3\n\
             fault at 120s blackout for 180s\nfault at 420s timeout\n",
        )
        .unwrap();
        let exp = experiment(&scn);
        let settings = crate::RacSettings {
            online_levels: 3,
            ..crate::RacSettings::default()
        };
        let full = exp.run_scenario(&scn, &mut RacAgent::new(settings.clone()));
        for stop_after in 1..scn.iterations() {
            let mut snapshot_bytes = Vec::new();
            let outcome = exp
                .run_scenario_resumable(
                    &scn,
                    &mut RacAgent::new(settings.clone()),
                    None,
                    |p, tuner| {
                        if p.iterations_done == stop_after {
                            let mut snap = SnapshotWriter::new();
                            tuner.save_state(&mut snap);
                            snapshot_bytes = snap.to_bytes();
                            Ok(BoundaryAction::Stop)
                        } else {
                            Ok(BoundaryAction::Continue)
                        }
                    },
                )
                .unwrap();
            let ScenarioRunOutcome::Interrupted(progress) = outcome else {
                panic!("run should stop after {stop_after} iterations");
            };
            // The breaker state is part of the progress record and
            // round-trips with it.
            let mut w = Writer::new();
            progress.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes, "t");
            let back = ScenarioProgress::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, progress);

            let snap = ckpt::Snapshot::from_bytes(&snapshot_bytes).unwrap();
            let mut agent = RacAgent::restore(&snap).unwrap();
            let resumed = exp
                .run_scenario_resumable(&scn, &mut agent, Some(back), |_, _| {
                    Ok(BoundaryAction::Continue)
                })
                .unwrap();
            assert_eq!(
                resumed,
                ScenarioRunOutcome::Complete(full.clone()),
                "resume after iteration {stop_after} diverged"
            );
        }
    }

    #[test]
    fn resume_past_the_timeline_is_a_mismatch() {
        let scn = scenario();
        let exp = experiment(&scn);
        let bogus = ScenarioProgress {
            iterations_done: 99,
            series: Vec::new(),
            next_config: ServerConfig::default(),
            channel: MeasurementChannel::default(),
        };
        let err = exp
            .run_scenario_resumable(&scn, &mut StaticDefault::new(), Some(bogus), |_, _| {
                Ok(BoundaryAction::Continue)
            })
            .unwrap_err();
        assert!(matches!(err, CkptError::Mismatch { .. }));
    }

    #[test]
    fn progress_round_trips() {
        let scn = scenario();
        let exp = experiment(&scn);
        let outcome = exp
            .run_scenario_resumable(&scn, &mut StaticDefault::new(), None, |p, _| {
                Ok(if p.iterations_done >= 2 {
                    BoundaryAction::Stop
                } else {
                    BoundaryAction::Continue
                })
            })
            .unwrap();
        let ScenarioRunOutcome::Interrupted(progress) = outcome else {
            panic!("expected interruption");
        };
        let mut w = Writer::new();
        progress.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        let back = ScenarioProgress::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, progress);
    }
}
