//! The fleet-wide policy transfer store.
//!
//! Generalizes the one-to-one `--warm-start` snapshot machinery
//! (`rac::library_from_snapshot`) into a shared library: every finished
//! tenant donates its learned policy ([`rac::RacAgent::learned_policy`])
//! tagged with the tenant's feature vector, and a new tenant is seeded
//! from the *nearest* donor under squared-Euclidean feature distance.
//!
//! Determinism: donors are kept in insertion order; nearest-neighbor
//! scans that order and only replaces the best candidate on a *strictly*
//! smaller distance, so equal-distance ties always resolve to the
//! earliest-inserted (lowest-id) donor. Distances are exact `f64`
//! arithmetic over the tenants' feature vectors — no ordering ambiguity,
//! no dependence on thread count.

use ckpt::wire::{Reader, Writer};
use ckpt::{CkptError, Snapshot};
use rac::InitialPolicy;

/// Typed errors at the policy-transfer seeding boundary.
#[derive(Debug)]
pub enum TransferError {
    /// A donor policy's lattice shape disagrees with the store's. Warm
    /// starting an agent from it would panic deep inside construction;
    /// the boundary rejects it instead.
    LatticeMismatch {
        /// States × actions of the offered policy.
        policy_states: usize,
        /// Actions of the offered policy.
        policy_actions: usize,
        /// States the store's lattice has.
        store_states: usize,
        /// Actions the store's lattice has.
        store_actions: usize,
    },
    /// The snapshot could not be read or validated.
    Snapshot(CkptError),
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::LatticeMismatch {
                policy_states,
                policy_actions,
                store_states,
                store_actions,
            } => write!(
                f,
                "policy trained on a {policy_states}x{policy_actions} lattice cannot seed a \
                 {store_states}x{store_actions} transfer store"
            ),
            TransferError::Snapshot(e) => write!(f, "transfer store snapshot: {e}"),
        }
    }
}

impl std::error::Error for TransferError {}

impl From<CkptError> for TransferError {
    fn from(e: CkptError) -> Self {
        TransferError::Snapshot(e)
    }
}

/// One donated policy: who it came from, where that system sits in
/// feature space, and the learned policy itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Donor {
    /// Provenance label (a tenant name like `t042`, or `library:<ctx>`
    /// for entries seeded from a warm-start snapshot).
    pub name: String,
    /// The donor system's feature vector.
    pub features: [f64; 4],
    /// The donated policy.
    pub policy: InitialPolicy,
}

/// The shared policy library (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferStore {
    states: usize,
    actions: usize,
    donors: Vec<Donor>,
}

impl TransferStore {
    /// An empty store for policies on a `states` × `actions` lattice.
    pub fn new(states: usize, actions: usize) -> Self {
        TransferStore {
            states,
            actions,
            donors: Vec::new(),
        }
    }

    /// Number of donors.
    pub fn len(&self) -> usize {
        self.donors.len()
    }

    /// Whether no donor has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.donors.is_empty()
    }

    /// The donors, in insertion order.
    pub fn donors(&self) -> &[Donor] {
        &self.donors
    }

    /// Inserts a donated policy — **the** seeding boundary: a policy
    /// whose lattice shape disagrees with the store's is rejected with a
    /// typed error here, before it can reach any agent constructor.
    ///
    /// # Errors
    ///
    /// [`TransferError::LatticeMismatch`] when the policy's Q-table or
    /// performance map does not match the store's lattice.
    pub fn insert(
        &mut self,
        name: String,
        features: [f64; 4],
        policy: InitialPolicy,
    ) -> Result<(), TransferError> {
        if policy.qtable.states() != self.states
            || policy.qtable.actions() != self.actions
            || policy.perf_ms.len() != self.states
        {
            return Err(TransferError::LatticeMismatch {
                policy_states: policy.qtable.states(),
                policy_actions: policy.qtable.actions(),
                store_states: self.states,
                store_actions: self.actions,
            });
        }
        self.donors.push(Donor {
            name,
            features,
            policy,
        });
        Ok(())
    }

    /// Seeds the store from a warm-start snapshot's embedded policy
    /// library (the one-to-one `--warm-start` machinery, fleet-ified):
    /// each per-context policy becomes a donor labeled
    /// `library:<context>`, placed in feature space by its context's mix
    /// and resource level at neutral client/SLA coordinates.
    ///
    /// Returns the number of donors added.
    ///
    /// # Errors
    ///
    /// [`TransferError::Snapshot`] when the snapshot has no readable
    /// library, and [`TransferError::LatticeMismatch`] when the library
    /// was trained on a different lattice than the store's — the
    /// satellite regression case: a mismatched warm start must fail
    /// typed at this boundary, not panic later.
    pub fn seed_from_snapshot(&mut self, snap: &Snapshot) -> Result<usize, TransferError> {
        let library = rac::library_from_snapshot(snap)?;
        let mut added = 0;
        for (ctx, policy) in library.iter() {
            let level = vmstack::ResourceLevel::ALL
                .iter()
                .position(|&l| l == ctx.level)
                .unwrap_or(0);
            let features = [ctx.mix.order_fraction(), level as f64 / 2.0, 0.5, 2.0 / 3.0];
            self.insert(format!("library:{ctx}"), features, policy.clone())?;
            added += 1;
        }
        Ok(added)
    }

    /// The nearest donor to `features` (squared Euclidean distance),
    /// with ties broken toward the earliest-inserted donor. `None` only
    /// when the store is empty.
    pub fn nearest(&self, features: [f64; 4]) -> Option<(&Donor, f64)> {
        let mut best: Option<(&Donor, f64)> = None;
        for donor in &self.donors {
            let d = distance(donor.features, features);
            match best {
                // Strict less-than: an equal distance keeps the earlier
                // donor, which is the deterministic tie-break.
                Some((_, best_d)) if d.total_cmp(&best_d).is_lt() => best = Some((donor, d)),
                None => best = Some((donor, d)),
                _ => {}
            }
        }
        best
    }

    /// Writes the store into a wire payload (fleet checkpoint section).
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.states);
        w.put_usize(self.actions);
        w.put_usize(self.donors.len());
        for donor in &self.donors {
            w.put_str(&donor.name);
            for f in donor.features {
                w.put_f64(f);
            }
            rac::encode_policy(w, &donor.policy);
        }
    }

    /// Reads a store back, enforcing the expected lattice shape.
    ///
    /// # Errors
    ///
    /// [`TransferError::LatticeMismatch`] when the stored lattice shape
    /// differs from `states` × `actions`; [`TransferError::Snapshot`]
    /// for wire-level corruption.
    pub fn decode(
        r: &mut Reader<'_>,
        states: usize,
        actions: usize,
    ) -> Result<Self, TransferError> {
        let got_states = r.get_usize()?;
        let got_actions = r.get_usize()?;
        if (got_states, got_actions) != (states, actions) {
            return Err(TransferError::LatticeMismatch {
                policy_states: got_states,
                policy_actions: got_actions,
                store_states: states,
                store_actions: actions,
            });
        }
        let len = r.get_usize()?;
        let mut store = TransferStore::new(states, actions);
        for _ in 0..len {
            let name = r.get_str()?;
            let mut features = [0.0; 4];
            for f in &mut features {
                *f = r.get_f64()?;
            }
            let policy = rac::decode_policy(r, states, actions)?;
            store.insert(name, features, policy)?;
        }
        Ok(store)
    }
}

/// Squared Euclidean distance between two feature vectors.
pub fn distance(a: [f64; 4], b: [f64; 4]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rac::{Action, ConfigLattice, OfflineSettings, SlaReward};

    fn policy_for(levels: usize) -> (InitialPolicy, usize) {
        let lattice = ConfigLattice::new(levels);
        let policy = rac::train_initial_policy(
            &lattice,
            SlaReward::new(1_000.0),
            OfflineSettings {
                group_levels: 2,
                ..OfflineSettings::default()
            },
            |c: &websim::ServerConfig| 100.0 + c.max_clients() as f64 * 0.1,
        )
        .unwrap();
        (policy, lattice.num_states())
    }

    #[test]
    fn insert_rejects_mismatched_lattice_with_typed_error() {
        let (small, _) = policy_for(2);
        let (_, big_states) = policy_for(3);
        let mut store = TransferStore::new(big_states, Action::COUNT);
        let err = store
            .insert("t000".into(), [0.0; 4], small.clone())
            .unwrap_err();
        match err {
            TransferError::LatticeMismatch {
                policy_states,
                store_states,
                ..
            } => {
                assert_eq!(policy_states, small.qtable.states());
                assert_eq!(store_states, big_states);
            }
            other => panic!("expected LatticeMismatch, got {other:?}"),
        }
        assert!(store.is_empty(), "rejected policy must not be stored");
    }

    #[test]
    fn seed_from_snapshot_with_mismatched_lattice_is_typed_not_panic() {
        // Regression (satellite): a warm-start snapshot whose library
        // was trained on a different parameter lattice must surface a
        // typed error at the seeding boundary.
        let (policy, states) = policy_for(2);
        let mut lib = rac::PolicyLibrary::new();
        lib.insert(rac::paper_contexts()[0], policy);
        let mut snap = ckpt::SnapshotWriter::new();
        rac::library_to_snapshot(&mut snap, &lib);
        let snap = ckpt::Snapshot::from_bytes(&snap.to_bytes()).unwrap();

        // Same lattice seeds fine...
        let mut ok_store = TransferStore::new(states, Action::COUNT);
        assert_eq!(ok_store.seed_from_snapshot(&snap).unwrap(), 1);

        // ...a 3-level store rejects the 2-level library, typed.
        let bigger = ConfigLattice::new(3).num_states();
        let mut store = TransferStore::new(bigger, Action::COUNT);
        let err = store.seed_from_snapshot(&snap).unwrap_err();
        assert!(
            matches!(err, TransferError::LatticeMismatch { .. }),
            "got {err:?}"
        );
        assert!(store.is_empty());
    }

    #[test]
    fn nearest_picks_minimum_and_breaks_ties_by_insertion_order() {
        let (policy, states) = policy_for(2);
        let mut store = TransferStore::new(states, Action::COUNT);
        // Two donors equidistant from the query (mirror images), one
        // farther away.
        store
            .insert("t000".into(), [0.0, 0.0, 0.0, 0.0], policy.clone())
            .unwrap();
        store
            .insert("t001".into(), [0.2, 0.0, 0.0, 0.0], policy.clone())
            .unwrap();
        store
            .insert("t002".into(), [0.9, 0.9, 0.9, 0.9], policy.clone())
            .unwrap();
        let query = [0.1, 0.0, 0.0, 0.0];
        assert_eq!(
            distance([0.0; 4], query),
            distance([0.2, 0.0, 0.0, 0.0], query)
        );
        let (donor, d) = store.nearest(query).unwrap();
        assert_eq!(
            donor.name, "t000",
            "equal distance must keep the earliest donor"
        );
        assert!((d - 0.01).abs() < 1e-12);

        // A strictly closer donor still wins regardless of position.
        store
            .insert("t003".into(), [0.1, 0.0, 0.0, 0.0], policy)
            .unwrap();
        assert_eq!(store.nearest(query).unwrap().0.name, "t003");
    }

    #[test]
    fn store_round_trips_through_the_wire() {
        let (policy, states) = policy_for(2);
        let mut store = TransferStore::new(states, Action::COUNT);
        store
            .insert("t007".into(), [0.5, 1.0, 0.25, 0.6], policy)
            .unwrap();
        let mut w = Writer::new();
        store.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        let back = TransferStore::decode(&mut r, states, Action::COUNT).unwrap();
        r.finish().unwrap();
        assert_eq!(back, store);

        // Decoding under a different lattice is a typed mismatch.
        let mut r = Reader::new(&bytes, "t");
        let err = TransferStore::decode(&mut r, states + 1, Action::COUNT).unwrap_err();
        assert!(matches!(err, TransferError::LatticeMismatch { .. }));
    }
}
