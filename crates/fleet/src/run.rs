//! The fleet driver: sharded tenant experiments with policy transfer.
//!
//! A fleet run proceeds in **steps**. The first step is the *cold wave*:
//! the first [`FleetConfig::cold`] tenants tune from scratch
//! ([`rac::RacAgent::new`]) in parallel over the shared work-queue
//! ([`rac::Runner::run_tasks`]). Every later step is a *chunk* of up to
//! [`FleetConfig::chunk`] warm tenants, each seeded from the nearest
//! finished donor in the [`TransferStore`] — provided that donor sits
//! within the transfer radius ([`FleetConfig::radius`]); a tenant with
//! no sufficiently similar donor tunes from scratch rather than risk
//! negative transfer. Donors are chosen on the
//! calling thread *before* the chunk is dispatched, and learned policies
//! join the store in tenant-index order *after* the chunk returns, so a
//! tenant's inputs — spec, scenario, donor policy — are fixed regardless
//! of worker interleaving:
//!
//! > **Fleet results are bit-identical at any `RAC_THREADS`.**
//!
//! Step boundaries are also the checkpoint boundaries: [`FleetRun::save`]
//! writes three sections (`fleet.meta`, `fleet.results`, `fleet.store`)
//! and [`FleetRun::resume`] restores them, validating the roster
//! fingerprint so a drifted generator or different `(count, seed)` is a
//! typed mismatch rather than a silently mixed fleet.

use ckpt::{CkptError, Snapshot, SnapshotWriter};
use rac::runner::Runner;
use rac::{Action, ConfigLattice, Experiment, IterationRecord, RacAgent, RacSettings};
use scenario::{bundled, Scenario};

use crate::tenant::{self, TenantSpec};
use crate::transfer::{TransferError, TransferStore};

/// Wire-format version of the fleet checkpoint sections.
const FLEET_FORMAT: u32 = 1;

const SECTION_META: &str = "fleet.meta";
const SECTION_RESULTS: &str = "fleet.results";
const SECTION_STORE: &str = "fleet.store";

/// An SLA-compliant streak must reach this length before its first
/// iteration counts as the tenant's time-to-SLA.
pub const SLA_STREAK: usize = 3;

/// A donor picked for a tenant before dispatch: name, squared feature
/// distance, and the policy to seed from.
type SelectedDonor = (String, f64, rac::InitialPolicy);

/// Errors a fleet run can surface.
#[derive(Debug)]
pub enum FleetError {
    /// The configuration is unusable (zero tenants, cold > tenants, …).
    Config(String),
    /// A checkpoint could not be read, or disagrees with this run's
    /// configuration or roster.
    Ckpt(CkptError),
    /// The policy-transfer seeding boundary rejected a policy.
    Transfer(TransferError),
    /// A tenant's assigned scenario failed to parse (bundled scenarios
    /// only fail if the generator and the bundle drift apart).
    Scenario(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "fleet config: {msg}"),
            FleetError::Ckpt(e) => write!(f, "fleet checkpoint: {e}"),
            FleetError::Transfer(e) => write!(f, "policy transfer: {e}"),
            FleetError::Scenario(msg) => write!(f, "scenario: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CkptError> for FleetError {
    fn from(e: CkptError) -> Self {
        FleetError::Ckpt(e)
    }
}

impl From<TransferError> for FleetError {
    fn from(e: TransferError) -> Self {
        FleetError::Transfer(e)
    }
}

/// Shape of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Fleet size.
    pub tenants: usize,
    /// Registry seed (drives every tenant draw).
    pub seed: u64,
    /// Tenants in the cold wave (tuned from scratch; they become the
    /// initial donor pool).
    pub cold: usize,
    /// Warm tenants dispatched per step; the store grows between
    /// chunks, so later chunks pick from a richer donor pool.
    pub chunk: usize,
    /// Scenario timeline compression: every bundled scenario runs
    /// `scaled(1, scale_den)`, keeping its iteration count but
    /// shrinking simulated time per interval.
    pub scale_den: u64,
    /// Grid points per parameter in each agent's online lattice.
    pub online_levels: usize,
    /// Run a matched cold control for every warm tenant: the same
    /// tenant, same scenario, same seeds, but a from-scratch agent.
    /// This is what makes the cold-vs-warm comparison fair — cohort
    /// means compare *different* tenants (composition noise easily
    /// swamps the transfer effect), while the control pairs each warm
    /// tenant with itself. Costs one extra experiment per warm tenant.
    pub control: bool,
    /// Transfer radius: a tenant warm-starts only when its nearest
    /// donor sits within this squared feature distance; otherwise it
    /// tunes from scratch. Guards against *negative transfer* — a donor
    /// from a sufficiently different system misdirects early
    /// exploration and settles slower than a cold start. Feature
    /// distances span roughly 0..1.4, so a radius ≥ 2.0 disables the
    /// gate.
    pub radius: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 200,
            seed: 42,
            cold: 50,
            chunk: 25,
            scale_den: 5,
            online_levels: 4,
            control: true,
            radius: 0.005,
        }
    }
}

impl FleetConfig {
    fn validate(&self) -> Result<(), FleetError> {
        let fail = |msg: String| Err(FleetError::Config(msg));
        if self.tenants == 0 {
            return fail("fleet needs at least 1 tenant".into());
        }
        if self.cold == 0 {
            return fail("cold wave needs at least 1 tenant (the first donor)".into());
        }
        if self.cold > self.tenants {
            return fail(format!(
                "cold wave of {} exceeds fleet size {}",
                self.cold, self.tenants
            ));
        }
        if self.chunk == 0 {
            return fail("chunk size must be at least 1".into());
        }
        if self.scale_den == 0 {
            return fail("scale denominator must be positive".into());
        }
        if self.online_levels < 2 {
            return fail("online lattice needs at least 2 levels per parameter".into());
        }
        if self.radius.is_nan() || self.radius <= 0.0 {
            return fail(format!(
                "transfer radius must be positive, got {}",
                self.radius
            ));
        }
        Ok(())
    }
}

/// What one tenant's experiment produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Roster index.
    pub id: usize,
    /// Donor the tenant warm-started from. `None` for the cold wave and
    /// for tenants whose nearest donor fell outside the transfer
    /// radius.
    pub donor: Option<DonorRef>,
    /// Measured iterations the scenario spanned.
    pub iterations: usize,
    /// First iteration opening an [`SLA_STREAK`]-long compliant streak;
    /// `iterations` when the tenant never settled.
    pub iters_to_sla: usize,
    /// Iterations meeting the tenant's SLA.
    pub attained: usize,
    /// Mean response time across the whole series (ms).
    pub mean_ms: f64,
    /// The matched cold control (same tenant, from-scratch agent).
    /// `None` for cold-wave tenants (they *are* their own control) and
    /// when [`FleetConfig::control`] is off.
    pub control: Option<ControlOutcome>,
}

/// Outcome of a warm tenant's matched cold-control run.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlOutcome {
    /// Iterations-to-SLA without the donor policy.
    pub iters_to_sla: usize,
    /// SLA-compliant iterations without the donor policy.
    pub attained: usize,
    /// Mean response time without the donor policy (ms).
    pub mean_ms: f64,
}

/// Donor provenance on a warm-started tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct DonorRef {
    /// The donor tenant's name.
    pub name: String,
    /// Squared feature distance at selection time.
    pub distance: f64,
}

/// A fleet run in progress (see the [module docs](self)).
#[derive(Debug)]
pub struct FleetRun {
    config: FleetConfig,
    roster: Vec<TenantSpec>,
    store: TransferStore,
    outcomes: Vec<TenantOutcome>,
}

impl FleetRun {
    /// A fresh run: generates the roster and an empty transfer store.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate()?;
        let roster = tenant::generate(config.tenants, config.seed);
        let states = ConfigLattice::new(config.online_levels).num_states();
        Ok(FleetRun {
            store: TransferStore::new(states, Action::COUNT),
            outcomes: Vec::new(),
            config,
            roster,
        })
    }

    /// A fresh run whose store is pre-seeded from a warm-start snapshot
    /// (an offline-trained policy library): even the "cold" wave then
    /// warm-starts, and the library donors compete with finished tenants
    /// for nearest-neighbor selection.
    pub fn with_library(config: FleetConfig, snap: &Snapshot) -> Result<Self, FleetError> {
        let mut run = FleetRun::new(config)?;
        run.store.seed_from_snapshot(snap)?;
        Ok(run)
    }

    /// Restores a run from its checkpoint sections.
    ///
    /// # Errors
    ///
    /// [`FleetError::Ckpt`] with [`CkptError::Mismatch`] when the
    /// checkpoint was written by a different configuration or roster.
    pub fn resume(config: FleetConfig, snap: &Snapshot) -> Result<Self, FleetError> {
        config.validate()?;
        let roster = tenant::generate(config.tenants, config.seed);

        let mut r = snap.section(SECTION_META)?;
        let format = r.get_u32()?;
        if format != FLEET_FORMAT {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "fleet checkpoint format {format}, this build reads {FLEET_FORMAT}"
                ),
            }
            .into());
        }
        let saved = FleetConfig {
            tenants: r.get_usize()?,
            seed: r.get_u64()?,
            cold: r.get_usize()?,
            chunk: r.get_usize()?,
            scale_den: r.get_u64()?,
            online_levels: r.get_usize()?,
            control: r.get_bool()?,
            radius: r.get_f64()?,
        };
        if saved != config {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "fleet checkpoint was written by {saved:?}, this run is {config:?}"
                ),
            }
            .into());
        }
        let fingerprint = r.get_u64()?;
        if fingerprint != tenant::roster_fingerprint(&roster) {
            return Err(CkptError::Mismatch {
                detail: "fleet checkpoint roster fingerprint does not match this generator; \
                         the tenant registry has drifted"
                    .to_string(),
            }
            .into());
        }
        r.finish()?;

        let states = ConfigLattice::new(config.online_levels).num_states();
        let mut r = snap.section(SECTION_STORE)?;
        let store = TransferStore::decode(&mut r, states, Action::COUNT)?;
        r.finish()?;

        let mut r = snap.section(SECTION_RESULTS)?;
        let count = r.get_usize()?;
        if count > config.tenants {
            return Err(CkptError::Corrupt {
                detail: format!(
                    "section `{SECTION_RESULTS}` holds {count} outcomes for a {}-tenant fleet",
                    config.tenants
                ),
            }
            .into());
        }
        let mut outcomes = Vec::with_capacity(count);
        for _ in 0..count {
            let id = r.get_usize()?;
            let donor = if r.get_bool()? {
                Some(DonorRef {
                    name: r.get_str()?,
                    distance: r.get_f64()?,
                })
            } else {
                None
            };
            let iterations = r.get_usize()?;
            let iters_to_sla = r.get_usize()?;
            let attained = r.get_usize()?;
            let mean_ms = r.get_f64()?;
            let control = if r.get_bool()? {
                Some(ControlOutcome {
                    iters_to_sla: r.get_usize()?,
                    attained: r.get_usize()?,
                    mean_ms: r.get_f64()?,
                })
            } else {
                None
            };
            outcomes.push(TenantOutcome {
                id,
                donor,
                iterations,
                iters_to_sla,
                attained,
                mean_ms,
                control,
            });
        }
        r.finish()?;

        Ok(FleetRun {
            config,
            roster,
            store,
            outcomes,
        })
    }

    /// Writes the run's checkpoint sections into `snap`.
    pub fn save(&self, snap: &mut SnapshotWriter) {
        snap.section(SECTION_META, |w| {
            w.put_u32(FLEET_FORMAT);
            w.put_usize(self.config.tenants);
            w.put_u64(self.config.seed);
            w.put_usize(self.config.cold);
            w.put_usize(self.config.chunk);
            w.put_u64(self.config.scale_den);
            w.put_usize(self.config.online_levels);
            w.put_bool(self.config.control);
            w.put_f64(self.config.radius);
            w.put_u64(tenant::roster_fingerprint(&self.roster));
        });
        snap.section(SECTION_RESULTS, |w| {
            w.put_usize(self.outcomes.len());
            for o in &self.outcomes {
                w.put_usize(o.id);
                match &o.donor {
                    Some(d) => {
                        w.put_bool(true);
                        w.put_str(&d.name);
                        w.put_f64(d.distance);
                    }
                    None => w.put_bool(false),
                }
                w.put_usize(o.iterations);
                w.put_usize(o.iters_to_sla);
                w.put_usize(o.attained);
                w.put_f64(o.mean_ms);
                match &o.control {
                    Some(c) => {
                        w.put_bool(true);
                        w.put_usize(c.iters_to_sla);
                        w.put_usize(c.attained);
                        w.put_f64(c.mean_ms);
                    }
                    None => w.put_bool(false),
                }
            }
        });
        snap.section(SECTION_STORE, |w| self.store.encode(w));
    }

    /// The run's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The generated roster, in tenant-id order.
    pub fn roster(&self) -> &[TenantSpec] {
        &self.roster
    }

    /// Finished-tenant outcomes, in tenant-id order.
    pub fn outcomes(&self) -> &[TenantOutcome] {
        &self.outcomes
    }

    /// The donor pool as it stands.
    pub fn store(&self) -> &TransferStore {
        &self.store
    }

    /// Tenants finished so far.
    pub fn done(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether every tenant has run.
    pub fn is_complete(&self) -> bool {
        self.outcomes.len() == self.config.tenants
    }

    /// Runs the next step — the remaining cold wave if any cold tenant
    /// is unfinished, otherwise the next warm chunk — sharded over
    /// `runner`. Returns the number of tenants that finished (0 when the
    /// run was already complete).
    ///
    /// # Errors
    ///
    /// [`FleetError::Scenario`] if a tenant's bundled scenario fails to
    /// parse, [`FleetError::Transfer`] if a learned policy is rejected
    /// at the store boundary (both indicate internal drift, not user
    /// error).
    pub fn step(&mut self, runner: &Runner) -> Result<usize, FleetError> {
        let done = self.outcomes.len();
        let (from, to) = if done < self.config.cold {
            (done, self.config.cold)
        } else {
            (done, (done + self.config.chunk).min(self.config.tenants))
        };
        if from >= to {
            return Ok(0);
        }

        // Donor selection happens here, on the calling thread, against
        // the store as of the previous step — never inside a worker. A
        // nearest donor outside the transfer radius is discarded: the
        // tenant tunes from scratch rather than risk negative transfer.
        let batch: Vec<(TenantSpec, Option<SelectedDonor>)> = self.roster[from..to]
            .iter()
            .map(|t| {
                let donor = self
                    .store
                    .nearest(t.features())
                    .filter(|&(_, dist)| dist <= self.config.radius)
                    .map(|(d, dist)| (d.name.clone(), dist, d.policy.clone()));
                (t.clone(), donor)
            })
            .collect();

        let results = runner.run_tasks(batch.len(), |i| {
            let (t, donor) = &batch[i];
            run_tenant(t, donor.as_ref(), &self.config)
        });

        for result in results {
            let (outcome, policy, spec) = result?;
            self.record(outcome, policy, &spec);
        }
        Ok(to - from)
    }

    /// Appends one finished tenant: outcome to the results, learned
    /// policy to the donor pool, progress to the live health cell.
    fn record(&mut self, outcome: TenantOutcome, policy: rac::InitialPolicy, spec: &TenantSpec) {
        self.store
            .insert(spec.name(), spec.features(), policy)
            .expect("a tenant's learned policy matches its own lattice");
        if obs::enabled() {
            let registry = obs::Registry::global();
            let name = spec.name();
            let labels = [("tenant", name.as_str())];
            registry
                .gauge(&obs::export::labeled(
                    "rac_fleet_tenant_iters_to_sla",
                    &labels,
                ))
                .set(outcome.iters_to_sla as i64);
            registry
                .gauge(&obs::export::labeled(
                    "rac_fleet_tenant_sla_attained",
                    &labels,
                ))
                .set(outcome.attained as i64);
            registry.counter("rac_fleet_tenants_done_total").inc();
        }
        self.outcomes.push(outcome);
        obs::health::global()
            .set_fleet_progress(self.outcomes.len() as u64, self.config.tenants as u64);
    }
}

/// Runs one tenant's full experiment. Pure in `(spec, donor, config)`:
/// the simulator stream is pinned by the tenant seed, the agent stream
/// by its settings seed, and the donor was fixed by the caller — so this
/// is safe to shard at any thread count.
#[allow(clippy::type_complexity)]
fn run_tenant(
    t: &TenantSpec,
    donor: Option<&SelectedDonor>,
    config: &FleetConfig,
) -> Result<(TenantOutcome, rac::InitialPolicy, TenantSpec), FleetError> {
    let src = bundled::by_name(t.scenario).ok_or_else(|| {
        FleetError::Scenario(format!(
            "tenant {} assigned unknown scenario {}",
            t.name(),
            t.scenario
        ))
    })?;
    let scn = Scenario::parse(src)
        .map_err(|e| FleetError::Scenario(format!("bundled scenario {}: {e}", t.scenario)))?
        .scaled(1, config.scale_den);

    let settings = RacSettings {
        online_levels: config.online_levels,
        sla_ms: t.sla_ms,
        seed: t.seed,
        ..RacSettings::default()
    };
    // The tenant's own spec wins over scenario header defaults (clients,
    // mix, level, seed): the scenario contributes only its timeline.
    let experiment = Experiment::new(t.system_spec())
        .with_interval(scn.interval)
        .with_warmup(scn.warmup);

    let mut agent = match donor {
        Some((_, _, policy)) => RacAgent::try_with_initial_policy(settings.clone(), policy)
            .map_err(|_| {
                FleetError::Transfer(TransferError::LatticeMismatch {
                    policy_states: policy.qtable.states(),
                    policy_actions: policy.qtable.actions(),
                    store_states: ConfigLattice::new(config.online_levels).num_states(),
                    store_actions: Action::COUNT,
                })
            })?,
        None => RacAgent::new(settings.clone()),
    };

    let series = experiment.run_scenario(&scn, &mut agent);
    let mut outcome = summarize(t, donor, &series);

    // The matched control: the identical tenant tuned from scratch.
    // Runs after the warm session, but both are pure functions of their
    // inputs, so ordering cannot couple them.
    if config.control && donor.is_some() {
        let mut cold_agent = RacAgent::new(settings);
        let control_series = experiment.run_scenario(&scn, &mut cold_agent);
        let (iters_to_sla, attained, mean_ms) = fold_series(t.sla_ms, &control_series);
        outcome.control = Some(ControlOutcome {
            iters_to_sla,
            attained,
            mean_ms,
        });
    }
    Ok((outcome, agent.learned_policy(), t.clone()))
}

/// Folds an iteration series into `(iters_to_sla, attained, mean_ms)`.
fn fold_series(sla_ms: f64, series: &[IterationRecord]) -> (usize, usize, f64) {
    let iterations = series.len();
    let attained = series.iter().filter(|r| r.response_ms <= sla_ms).count();
    let mut iters_to_sla = iterations;
    let mut streak = 0usize;
    for (i, r) in series.iter().enumerate() {
        if r.response_ms <= sla_ms {
            streak += 1;
            if streak == SLA_STREAK {
                iters_to_sla = i + 1 - SLA_STREAK;
                break;
            }
        } else {
            streak = 0;
        }
    }
    // Dropped intervals record an infinite response time; the mean is
    // taken over the finite samples (infinite only if nothing survived)
    // so one overloaded interval cannot poison the whole row.
    let finite: Vec<f64> = series
        .iter()
        .map(|r| r.response_ms)
        .filter(|x| x.is_finite())
        .collect();
    let mean_ms = if finite.is_empty() {
        f64::INFINITY
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };
    (iters_to_sla, attained, mean_ms)
}

/// Folds an iteration series into the tenant's outcome row.
fn summarize(
    t: &TenantSpec,
    donor: Option<&SelectedDonor>,
    series: &[IterationRecord],
) -> TenantOutcome {
    let (iters_to_sla, attained, mean_ms) = fold_series(t.sla_ms, series);
    TenantOutcome {
        id: t.id,
        donor: donor.map(|(name, distance, _)| DonorRef {
            name: name.clone(),
            distance: *distance,
        }),
        iterations: series.len(),
        iters_to_sla,
        attained,
        mean_ms,
        control: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FleetConfig {
        FleetConfig {
            tenants: 6,
            seed: 42,
            cold: 2,
            chunk: 2,
            // Aggressive compression keeps the unit suite fast: 7200 s
            // scenarios shrink to 24 intervals of 7.5 s.
            scale_den: 40,
            online_levels: 3,
            control: true,
            // Ungated: feature distances max out around 1.4, so every
            // warm tenant keeps its nearest donor.
            radius: 2.0,
        }
    }

    #[test]
    fn radius_gates_out_distant_donors() {
        let mut gated = FleetRun::new(FleetConfig {
            // No donor pair in a 6-tenant roster sits this close.
            radius: 1e-12,
            ..tiny_config()
        })
        .unwrap();
        let runner = Runner::new(2);
        while !gated.is_complete() {
            gated.step(&runner).unwrap();
        }
        for o in gated.outcomes() {
            assert!(
                o.donor.is_none(),
                "tenant {} warm-started through the gate",
                o.id
            );
            assert!(o.control.is_none(), "controls only pair with warm starts");
        }
        // Every tenant still donates: the pool grows even when nobody
        // inside this fleet is close enough to borrow from it.
        assert_eq!(gated.store().len(), gated.config().tenants);
    }

    #[test]
    fn config_validation_catches_degenerate_shapes() {
        let bad = [
            FleetConfig {
                tenants: 0,
                ..tiny_config()
            },
            FleetConfig {
                cold: 0,
                ..tiny_config()
            },
            FleetConfig {
                cold: 7,
                ..tiny_config()
            },
            FleetConfig {
                chunk: 0,
                ..tiny_config()
            },
            FleetConfig {
                scale_den: 0,
                ..tiny_config()
            },
            FleetConfig {
                online_levels: 1,
                ..tiny_config()
            },
        ];
        for config in bad {
            assert!(
                matches!(FleetRun::new(config.clone()), Err(FleetError::Config(_))),
                "{config:?} should be rejected"
            );
        }
    }

    #[test]
    fn fleet_is_bit_identical_across_thread_counts() {
        let mut runs = Vec::new();
        for threads in [1, 8] {
            let runner = Runner::new(threads);
            let mut run = FleetRun::new(tiny_config()).unwrap();
            while !run.is_complete() {
                run.step(&runner).unwrap();
            }
            runs.push(run);
        }
        let (serial, parallel) = (&runs[0], &runs[1]);
        assert_eq!(serial.outcomes(), parallel.outcomes());
        assert_eq!(serial.store().donors(), parallel.store().donors());
    }

    #[test]
    fn warm_tenants_record_their_donor_and_cold_do_not() {
        let runner = Runner::new(4);
        let mut run = FleetRun::new(tiny_config()).unwrap();
        while !run.is_complete() {
            run.step(&runner).unwrap();
        }
        let outcomes = run.outcomes();
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes[..2] {
            assert!(o.donor.is_none(), "cold tenant t{:03} got a donor", o.id);
        }
        for o in &outcomes[2..] {
            let donor = o.donor.as_ref().expect("warm tenant without donor");
            assert!(donor.name.starts_with('t'));
            assert!(donor.distance.is_finite());
            // A donor must have finished before the borrowing tenant's
            // chunk was dispatched.
            let donor_id: usize = donor.name[1..].parse().unwrap();
            assert!(donor_id < o.id || donor_id < run.config().cold);
        }
        // Every tenant donated: the pool ends at fleet size.
        assert_eq!(run.store().len(), 6);
    }

    #[test]
    fn checkpoint_resume_reproduces_an_uninterrupted_run() {
        let runner = Runner::new(2);
        let config = tiny_config();

        let mut straight = FleetRun::new(config.clone()).unwrap();
        while !straight.is_complete() {
            straight.step(&runner).unwrap();
        }

        // Interrupt after the first step, round-trip through bytes.
        let mut interrupted = FleetRun::new(config.clone()).unwrap();
        interrupted.step(&runner).unwrap();
        let mut snap = SnapshotWriter::new();
        interrupted.save(&mut snap);
        let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let mut resumed = FleetRun::resume(config, &snap).unwrap();
        while !resumed.is_complete() {
            resumed.step(&runner).unwrap();
        }

        assert_eq!(straight.outcomes(), resumed.outcomes());
        assert_eq!(straight.store().donors(), resumed.store().donors());
    }

    #[test]
    fn resume_rejects_mismatched_config_or_roster() {
        let runner = Runner::new(2);
        let mut run = FleetRun::new(tiny_config()).unwrap();
        run.step(&runner).unwrap();
        let mut snap = SnapshotWriter::new();
        run.save(&mut snap);
        let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();

        let other_seed = FleetConfig {
            seed: 43,
            ..tiny_config()
        };
        match FleetRun::resume(other_seed, &snap) {
            Err(FleetError::Ckpt(CkptError::Mismatch { .. })) => {}
            other => panic!("expected config mismatch, got {other:?}"),
        }

        let other_size = FleetConfig {
            tenants: 8,
            ..tiny_config()
        };
        assert!(matches!(
            FleetRun::resume(other_size, &snap),
            Err(FleetError::Ckpt(CkptError::Mismatch { .. }))
        ));
    }

    #[test]
    fn library_seeded_run_gives_cold_wave_donors_too() {
        let lattice = ConfigLattice::new(3);
        let policy = rac::train_initial_policy(
            &lattice,
            rac::SlaReward::new(1_000.0),
            rac::OfflineSettings {
                group_levels: 2,
                ..rac::OfflineSettings::default()
            },
            |c: &websim::ServerConfig| 100.0 + c.max_clients() as f64 * 0.1,
        )
        .unwrap();
        let mut lib = rac::PolicyLibrary::new();
        lib.insert(rac::paper_contexts()[0], policy);
        let mut snap = SnapshotWriter::new();
        rac::library_to_snapshot(&mut snap, &lib);
        let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();

        let config = FleetConfig {
            tenants: 2,
            cold: 1,
            ..tiny_config()
        };
        let mut run = FleetRun::with_library(config, &snap).unwrap();
        assert_eq!(run.store().len(), 1);
        let runner = Runner::new(2);
        run.step(&runner).unwrap();
        let first = &run.outcomes()[0];
        let donor = first.donor.as_ref().expect("library-seeded cold tenant");
        assert!(donor.name.starts_with("library:"));
    }

    #[test]
    fn library_with_wrong_lattice_is_rejected_at_construction() {
        let lattice = ConfigLattice::new(2);
        let policy = rac::train_initial_policy(
            &lattice,
            rac::SlaReward::new(1_000.0),
            rac::OfflineSettings {
                group_levels: 2,
                ..rac::OfflineSettings::default()
            },
            |c: &websim::ServerConfig| 100.0 + c.max_clients() as f64 * 0.1,
        )
        .unwrap();
        let mut lib = rac::PolicyLibrary::new();
        lib.insert(rac::paper_contexts()[0], policy);
        let mut snap = SnapshotWriter::new();
        rac::library_to_snapshot(&mut snap, &lib);
        let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();

        // tiny_config runs 3-level agents; the 2-level library must be
        // rejected with the typed transfer error, before any tenant runs.
        match FleetRun::with_library(tiny_config(), &snap) {
            Err(FleetError::Transfer(TransferError::LatticeMismatch { .. })) => {}
            other => panic!("expected typed lattice mismatch, got {other:?}"),
        }
    }
}
