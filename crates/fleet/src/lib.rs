//! **fleet** — multi-tenant simulation with cross-tenant policy
//! transfer.
//!
//! The paper tunes *one* web system. This crate asks the operator's
//! question: what changes when you run *hundreds*? A seeded
//! [tenant registry](tenant::generate) stamps out N heterogeneous
//! tenants — each its own hardware allocation, TPC-W mix, client
//! population, SLA target, and bundled scenario — and the
//! [fleet driver](FleetRun) shards their full RAC experiments over the
//! existing deterministic work-queue ([`rac::Runner`]).
//!
//! The payoff is the [`TransferStore`]: every finished tenant donates
//! its learned policy, and each new tenant warm-starts from the most
//! similar donor (nearest neighbor over spec/workload features) instead
//! of tuning from scratch. This generalizes the repo's one-to-one
//! `--warm-start` snapshot machinery into fleet-wide transfer, and it
//! is where the headline claim lives: warm-started tenants reach SLA
//! compliance in measurably fewer iterations than cold-started ones.
//!
//! Everything stays inside the repo's determinism contract — rosters,
//! donor selection, and tenant results are bit-identical at any
//! `RAC_THREADS` — and fleet state checkpoints/resumes through
//! dedicated [`ckpt`] sections at step boundaries.
//!
//! # Quickstart
//!
//! ```
//! use fleet::{FleetConfig, FleetRun};
//! use rac::runner::Runner;
//!
//! let mut run = FleetRun::new(FleetConfig {
//!     tenants: 4,
//!     cold: 2,
//!     chunk: 2,
//!     scale_den: 60, // heavily compressed timeline: doctest speed
//!     radius: 2.0,   // accept any donor, however distant
//!     ..FleetConfig::default()
//! })
//! .unwrap();
//! let runner = Runner::new(2);
//! while !run.is_complete() {
//!     run.step(&runner).unwrap();
//! }
//! // The cold wave tuned from scratch; later tenants borrowed policies.
//! assert!(run.outcomes()[0].donor.is_none());
//! assert!(run.outcomes()[3].donor.is_some());
//! ```

mod run;
pub mod tenant;
pub mod transfer;

pub use run::{
    ControlOutcome, DonorRef, FleetConfig, FleetError, FleetRun, TenantOutcome, SLA_STREAK,
};
pub use tenant::{generate, roster_fingerprint, TenantSpec};
pub use transfer::{Donor, TransferError, TransferStore};
