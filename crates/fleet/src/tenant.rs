//! The tenant registry: a seeded generator that stamps out N
//! heterogeneous tenant systems.
//!
//! Each tenant is an independent three-tier web system with its own
//! hardware allocation (app/db VM resource level), workload mix, client
//! population, SLA target, scenario assignment (one of the bundled
//! `.scn` workloads), and simulation seed. The whole roster is a pure
//! function of `(count, seed)`: tenant `i` of a 500-tenant fleet equals
//! tenant `i` of a 200-tenant fleet under the same seed, because each
//! tenant's draws come from a dedicated forked RNG stream.

use scenario::bundled;
use simkernel::Pcg64;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::SystemSpec;

/// Client populations are drawn uniformly from this inclusive range.
/// The floor sits where configuration starts to genuinely matter (the
/// paper's testbed uses 600); below ~300 the default configuration
/// already meets every SLA choice and the cold-vs-warm comparison
/// degenerates to zero iterations-to-SLA for both cohorts.
pub const CLIENT_RANGE: (usize, usize) = (420, 600);

/// SLA targets (ms) tenants contract for, drawn uniformly. Deliberately
/// tight for the client range above: a freshly-started agent usually
/// violates until it tunes, a well-configured system complies, so
/// iterations-to-SLA discriminates between cold and warm starts.
pub const SLA_CHOICES: [f64; 4] = [800.0, 1_000.0, 1_200.0, 1_400.0];

/// One generated tenant system.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Position in the roster (0-based); doubles as the deterministic
    /// tie-break key for policy transfer.
    pub id: usize,
    /// Base client population (scenario intensity curves scale it).
    pub clients: usize,
    /// TPC-W traffic mix.
    pub mix: Mix,
    /// App/db VM hardware allocation.
    pub level: ResourceLevel,
    /// Contracted SLA response time (ms).
    pub sla_ms: f64,
    /// Bundled scenario driving the tenant's workload dynamics.
    pub scenario: &'static str,
    /// Simulation + agent RNG seed.
    pub seed: u64,
}

impl TenantSpec {
    /// Display name (`t042`), used in CSVs, metrics labels, and donor
    /// provenance columns.
    pub fn name(&self) -> String {
        format!("t{:03}", self.id)
    }

    /// The tenant's feature vector for policy-transfer distance: order
    /// fraction of the mix, resource level, client population, and SLA
    /// target, each scaled to comparable magnitude. Exact `f64`
    /// arithmetic over these draws is deterministic, so so is every
    /// distance comparison built on them.
    pub fn features(&self) -> [f64; 4] {
        let level = ResourceLevel::ALL
            .iter()
            .position(|&l| l == self.level)
            .unwrap_or(0);
        [
            self.mix.order_fraction(),
            level as f64 / 2.0,
            self.clients as f64 / CLIENT_RANGE.1 as f64,
            self.sla_ms / 1_500.0,
        ]
    }

    /// The simulated system this tenant runs on.
    pub fn system_spec(&self) -> SystemSpec {
        SystemSpec::default()
            .with_clients(self.clients)
            .with_mix(self.mix)
            .with_level(self.level)
            .with_seed(self.seed)
    }
}

/// Generates the fleet roster: `count` tenants from `seed`.
pub fn generate(count: usize, seed: u64) -> Vec<TenantSpec> {
    // Domain-separate the registry stream from simulation seeds so a
    // fleet seed equal to a tenant seed cannot correlate their draws.
    let mut registry = Pcg64::seed_from_u64(seed ^ 0x666c_6565_745f_7631); // "fleet_v1"
    let scenarios: Vec<&'static str> = bundled::all().iter().map(|&(name, _)| name).collect();
    (0..count)
        .map(|id| {
            let mut rng = registry.fork(id as u64);
            let clients =
                rng.range_inclusive(CLIENT_RANGE.0 as u64, CLIENT_RANGE.1 as u64) as usize;
            let mix = Mix::ALL[rng.below(Mix::ALL.len() as u64) as usize];
            let level = ResourceLevel::ALL[rng.below(ResourceLevel::ALL.len() as u64) as usize];
            let sla_ms = SLA_CHOICES[rng.below(SLA_CHOICES.len() as u64) as usize];
            let scenario = scenarios[rng.below(scenarios.len() as u64) as usize];
            let seed = rng.next_u64();
            TenantSpec {
                id,
                clients,
                mix,
                level,
                sla_ms,
                scenario,
                seed,
            }
        })
        .collect()
}

/// FNV-1a fingerprint of a roster — stored in fleet checkpoints so a
/// resume under a drifted generator (or different count/seed) is
/// rejected as a mismatch instead of silently mixing fleets.
pub fn roster_fingerprint(roster: &[TenantSpec]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for t in roster {
        eat(&(t.id as u64).to_le_bytes());
        eat(&(t.clients as u64).to_le_bytes());
        eat(&[Mix::ALL.iter().position(|&m| m == t.mix).unwrap_or(0) as u8]);
        eat(&[ResourceLevel::ALL
            .iter()
            .position(|&l| l == t.level)
            .unwrap_or(0) as u8]);
        eat(&t.sla_ms.to_bits().to_le_bytes());
        eat(t.scenario.as_bytes());
        eat(&t.seed.to_le_bytes());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_heterogeneous() {
        let a = generate(64, 42);
        let b = generate(64, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        // Heterogeneity: every mix, level, SLA choice, and scenario
        // shows up somewhere in a 64-tenant roster.
        for mix in Mix::ALL {
            assert!(a.iter().any(|t| t.mix == mix), "{mix:?} never drawn");
        }
        for level in ResourceLevel::ALL {
            assert!(a.iter().any(|t| t.level == level), "{level:?} never drawn");
        }
        for sla in SLA_CHOICES {
            assert!(a.iter().any(|t| t.sla_ms == sla), "SLA {sla} never drawn");
        }
        for (name, _) in bundled::all() {
            assert!(
                a.iter().any(|t| t.scenario == name),
                "{name} never assigned"
            );
        }
        let different = generate(64, 43);
        assert_ne!(a, different, "seed must matter");
    }

    #[test]
    fn roster_is_a_prefix_stable_stream() {
        // Growing the fleet must not reshuffle existing tenants.
        let small = generate(10, 7);
        let large = generate(50, 7);
        assert_eq!(small[..], large[..10]);
    }

    #[test]
    fn fingerprint_detects_any_field_drift() {
        let roster = generate(8, 1);
        let fp = roster_fingerprint(&roster);
        assert_eq!(fp, roster_fingerprint(&generate(8, 1)));
        assert_ne!(fp, roster_fingerprint(&generate(8, 2)));
        assert_ne!(fp, roster_fingerprint(&generate(7, 1)));
        let mut bumped = roster.clone();
        bumped[3].sla_ms += 1.0;
        assert_ne!(fp, roster_fingerprint(&bumped));
    }

    #[test]
    fn features_are_bounded_and_distinct_per_field() {
        for t in generate(32, 9) {
            for f in t.features() {
                assert!((0.0..=1.1).contains(&f), "feature {f} out of band");
            }
        }
    }
}
