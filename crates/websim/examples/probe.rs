//! Calibration probe: per-parameter effects and mix dependence.

use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{measure_config, Param, ServerConfig, SystemSpec};

fn measure(mix: Mix, level: ResourceLevel, cfg: ServerConfig) -> f64 {
    let spec = SystemSpec::default()
        .with_mix(mix)
        .with_level(level)
        .with_seed(11);
    measure_config(
        &spec,
        cfg,
        SimDuration::from_secs(900),
        SimDuration::from_secs(300),
    )
    .mean_response_ms
}

fn main() {
    let dflt = ServerConfig::default();
    println!("== KeepAlive sweep (shopping, L1 / L3), MaxClients=300 ==");
    for ka in [1u32, 3, 5, 9, 15, 21] {
        let cfg = dflt
            .with(Param::MaxClients, 300)
            .unwrap()
            .with(Param::KeepaliveTimeout, ka)
            .unwrap();
        println!(
            "  ka={ka:>2}  L1={:>8.1}  L3={:>8.1}",
            measure(Mix::Shopping, ResourceLevel::Level1, cfg),
            measure(Mix::Shopping, ResourceLevel::Level3, cfg)
        );
    }
    println!("== MaxThreads sweep (shopping, L1 / L3), MaxClients=300 ==");
    for mt in [5u32, 25, 75, 150, 300, 450, 600] {
        let cfg = dflt
            .with(Param::MaxClients, 300)
            .unwrap()
            .with(Param::MaxThreads, mt)
            .unwrap();
        println!(
            "  mt={mt:>3}  L1={:>8.1}  L3={:>8.1}",
            measure(Mix::Shopping, ResourceLevel::Level1, cfg),
            measure(Mix::Shopping, ResourceLevel::Level3, cfg)
        );
    }
    println!("== SessionTimeout sweep (ordering, L1 / L3), MaxClients=300 ==");
    for st in [1u32, 5, 15, 25, 35] {
        let cfg = dflt
            .with(Param::MaxClients, 300)
            .unwrap()
            .with(Param::SessionTimeout, st)
            .unwrap();
        println!(
            "  st={st:>2}  L1={:>8.1}  L3={:>8.1}",
            measure(Mix::Ordering, ResourceLevel::Level1, cfg),
            measure(Mix::Ordering, ResourceLevel::Level3, cfg)
        );
    }
    println!("== Mix effect at default config (L1) ==");
    for mix in Mix::ALL {
        println!(
            "  {mix:<9} rt={:>8.1}",
            measure(mix, ResourceLevel::Level1, dflt)
        );
    }
}
