//! Calibration probe: sweep MaxClients at each VM level (Figure-2 shape).

use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{Param, ServerConfig, SystemSpec};

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    println!("clients={clients}");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "MaxClients", "Level-1", "Level-2", "Level-3"
    );
    for mc in [
        5u32, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600,
    ] {
        let mut row = format!("{mc:>10}");
        for level in ResourceLevel::ALL {
            let spec = SystemSpec::default()
                .with_clients(clients)
                .with_mix(Mix::Shopping)
                .with_level(level)
                .with_seed(11);
            let cfg = ServerConfig::default().with(Param::MaxClients, mc).unwrap();
            let mut sys = websim::ThreeTierSystem::new(spec);
            sys.set_config(cfg);
            let _ = sys.run_interval(SimDuration::from_secs(180));
            let s = sys.run_interval(SimDuration::from_secs(300));
            row.push_str(&format!(
                " {:>9.1} if={:<4} ss={:<5}",
                s.mean_response_ms,
                sys.in_flight(),
                sys.live_sessions()
            ));
        }
        println!("{row}");
    }
}
