//! The three-tier web system simulator.

use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

use simkernel::rng::{Exponential, LogNormal};
use simkernel::{EventQueue, Pcg64, SimDuration, SimTime};
use tpcw::{DemandProfile, Fleet, Mix, SessionId, ThinkDist};
use vmstack::{Host, ResourceLevel, VmId, VmSpec};

use crate::config::ServerConfig;
use crate::cpu::PsCpu;
use crate::disk::Disk;
use crate::metrics::PerfSample;
use crate::model::ModelParams;
use crate::pool::WorkerPool;

/// Resolved-once obs handles for interval-level simulator metrics (the
/// registry mutex is taken once, not per interval).
struct SimMetrics {
    intervals: obs::Counter,
    completed: obs::Counter,
    refused: obs::Counter,
    response_ms: obs::Histogram,
}

impl SimMetrics {
    fn get() -> &'static SimMetrics {
        static METRICS: OnceLock<SimMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = obs::Registry::global();
            SimMetrics {
                intervals: r.counter("websim_intervals_total"),
                completed: r.counter("websim_requests_completed_total"),
                refused: r.counter("websim_requests_refused_total"),
                response_ms: r.histogram("websim_interval_mean_rt_ms"),
            }
        })
    }
}

/// Static description of the simulated testbed: hardware, VM placement,
/// workload and model calibration.
///
/// Mirrors the paper's setup: one physical machine (two quad-core Xeons,
/// 8 GB) running Xen, with Apache on one VM and Tomcat + MySQL on a
/// second VM whose resources are varied between Levels 1–3.
///
/// # Example
///
/// ```
/// use websim::SystemSpec;
/// use vmstack::ResourceLevel;
/// use tpcw::Mix;
///
/// let spec = SystemSpec::default()
///     .with_clients(300)
///     .with_mix(Mix::Ordering)
///     .with_level(ResourceLevel::Level2);
/// assert_eq!(spec.clients, 300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Physical cores on the host.
    pub host_cores: u32,
    /// Physical memory on the host (MiB).
    pub host_memory_mb: u64,
    /// The web-tier VM (fixed; the paper varies only the app/db VM).
    pub web_vm: VmSpec,
    /// Resource level of the app/db VM.
    pub appdb_level: ResourceLevel,
    /// Number of emulated browsers.
    pub clients: usize,
    /// TPC-W traffic mix.
    pub mix: Mix,
    /// Performance-model calibration.
    pub model: ModelParams,
    /// RNG seed; equal seeds reproduce runs bit-for-bit.
    pub seed: u64,
}

impl Default for SystemSpec {
    fn default() -> Self {
        SystemSpec {
            host_cores: 8,
            host_memory_mb: 8_192,
            web_vm: VmSpec::new(2, 1_536),
            appdb_level: ResourceLevel::Level1,
            clients: 600,
            mix: Mix::Shopping,
            model: ModelParams::default(),
            seed: 42,
        }
    }
}

impl SystemSpec {
    /// Sets the number of emulated browsers.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the traffic mix.
    pub fn with_mix(mut self, mix: Mix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the app/db VM resource level.
    pub fn with_level(mut self, level: ResourceLevel) -> Self {
        self.appdb_level = level;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A 64-bit FNV-1a fingerprint of the complete spec — hardware, VM
    /// placement, workload, every model-calibration constant, and the
    /// seed. Two specs with equal fingerprints produce bit-identical
    /// simulations, which is what makes memoizing measurement results
    /// safe (see `rac::runner`).
    ///
    /// The hash covers the spec's canonical `Debug` rendering. Rust
    /// renders floats with shortest-round-trip formatting, so the
    /// rendering is lossless; the fingerprint is stable within a
    /// process, which is all the in-memory cache needs.
    ///
    /// # Example
    ///
    /// ```
    /// use websim::SystemSpec;
    ///
    /// let a = SystemSpec::default();
    /// assert_eq!(a.fingerprint(), SystemSpec::default().fingerprint());
    /// assert_ne!(a.fingerprint(), a.clone().with_seed(7).fingerprint());
    /// assert_ne!(a.fingerprint(), a.clone().with_clients(10).fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

// Send audit: measurement jobs move specs and whole systems across
// worker threads (`rac::runner`). Every constituent of the simulator is
// owned data (no Rc, no raw pointers, no thread-locals), so these hold
// structurally; the assertions turn any future regression into a
// compile error at the definition site rather than an inference failure
// at a distant spawn site.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SystemSpec>();
    assert_send_sync::<ServerConfig>();
    assert_send_sync::<PerfSample>();
    assert_send::<ThreeTierSystem>();
};

type ReqId = usize;

const WEB: usize = 0;
const APPDB: usize = 1;

/// Effective core count of a stalled tier. `PsCpu` requires a strictly
/// positive capacity, so a stall is modelled as a capacity so small that
/// no task completes within any realistic stall window.
const STALLED_CORES: f64 = 1e-6;

/// A tier of the simulated system, addressable by fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The web (Apache) VM.
    Web,
    /// The app/db (Tomcat + MySQL) VM.
    AppDb,
}

impl Tier {
    fn index(self) -> usize {
        match self {
            Tier::Web => WEB,
            Tier::AppDb => APPDB,
        }
    }
}

const PHASE_WEB: u8 = 0;
const PHASE_APP_FIRST: u8 = 1;
const PHASE_DB: u8 = 2;
const PHASE_APP_SECOND: u8 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Browser `b` issues its next request.
    Issue(usize),
    /// A previously refused request retries admission.
    Retry(ReqId),
    /// Web-tier page-in wait (memory pressure) finished.
    WebSwap(ReqId),
    /// App-tier page-in wait finished.
    AppSwap(ReqId),
    /// The database disk completed the in-service aggregated I/O.
    DiskDone(ReqId),
    /// A processor-sharing CPU may have completed tasks (generation-
    /// checked; stale ticks are ignored).
    CpuTick(usize, u64),
    /// A keep-alive hold for browser `b` (generation `g`) timed out.
    KeepaliveExpire(usize, u64),
    /// Once-per-second pool maintenance (spawn/kill, scheduler rebalance).
    Maintain,
    /// Periodic expired-session sweep.
    SessionSweep,
    /// An injected tier stall (generation-checked) ends.
    FaultClear(usize, u64),
}

#[derive(Debug, Clone, Copy)]
struct ReqState {
    browser: usize,
    issued_at: SimTime,
    demand: DemandProfile,
    session: SessionId,
    new_session: bool,
    reused_connection: bool,
    /// Per-request service-time jitter (heavy-tail scenario regimes);
    /// exactly 1.0 — and costing zero RNG draws — when tails are off,
    /// so default runs stay bit-identical.
    jitter: f64,
}

/// The simulated three-tier web system.
///
/// Drive it in *measurement intervals*: configure, then call
/// [`run_interval`](ThreeTierSystem::run_interval) repeatedly; each call
/// advances simulated time and returns the application-level
/// [`PerfSample`] for that interval. System state (pools, sessions,
/// in-flight requests) persists across intervals and reconfigurations,
/// exactly like the live system the RAC agent tunes.
///
/// # Example
///
/// ```
/// use simkernel::SimDuration;
/// use websim::{ServerConfig, SystemSpec, ThreeTierSystem};
///
/// let mut sys = ThreeTierSystem::new(SystemSpec::default().with_clients(60));
/// sys.set_config(ServerConfig::default());
/// let sample = sys.run_interval(SimDuration::from_secs(120));
/// assert!(sample.is_measurable());
/// assert!(sample.mean_response_ms > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThreeTierSystem {
    model: ModelParams,
    host: Host,
    web_vm: VmId,
    appdb_vm: VmId,
    appdb_level: ResourceLevel,
    config: ServerConfig,
    fleet: Fleet,
    rng: Pcg64,
    queue: EventQueue<Ev>,
    apache: WorkerPool,
    tomcat: WorkerPool,
    cpus: [PsCpu; 2],
    tick_gen: [u64; 2],
    scheduled_tick: [Option<SimTime>; 2],
    db_busy: u32,
    db_queue: VecDeque<ReqId>,
    disk: Disk,
    accept_queue: VecDeque<ReqId>,
    app_queue: VecDeque<ReqId>,
    requests: Vec<Option<ReqState>>,
    free_ids: Vec<ReqId>,
    holds: HashMap<usize, u64>,
    hold_gen: u64,
    sessions: HashMap<SessionId, SimTime>,
    response_ms: Vec<f64>,
    refused: u64,
    started: bool,
    /// Client population the spec started with; intensity scaling is
    /// always relative to this, not to the current fleet size.
    base_clients: usize,
    /// Multiplier on every CPU service demand (scenario latency noise;
    /// 1.0 = nominal).
    latency_factor: f64,
    /// Whether each tier's CPU is currently frozen by a fault.
    stalled: [bool; 2],
    /// Stall generations; a `FaultClear` only applies if its generation
    /// is current (overlapping stalls extend, not truncate).
    stall_gen: [u64; 2],
    /// Heavy-tail service regime: when set, each new request draws one
    /// mean-1 log-normal jitter multiplied into its CPU demands. `None`
    /// (the default) draws nothing and is bit-exact.
    service_tail: Option<LogNormal>,
}

impl ThreeTierSystem {
    /// Builds the system (VMs placed, pools at their configured spare
    /// levels, browsers idle). Nothing runs until the first
    /// [`run_interval`](ThreeTierSystem::run_interval).
    ///
    /// # Panics
    ///
    /// Panics if the VMs do not fit on the host (the default spec always
    /// fits).
    pub fn new(spec: SystemSpec) -> Self {
        let mut host = Host::new(spec.host_cores, spec.host_memory_mb);
        let web_vm = host.create_vm(spec.web_vm).expect("web VM fits host");
        let appdb_vm = host
            .create_vm(spec.appdb_level.vm_spec())
            .expect("app/db VM fits host");
        let config = ServerConfig::default();
        let apache = WorkerPool::new(
            config.max_clients(),
            config.min_spare_servers(),
            config.max_spare_servers(),
            config.min_spare_servers(),
        );
        let tomcat = WorkerPool::new(
            config.max_threads(),
            config.min_spare_threads(),
            config.max_spare_threads(),
            config.min_spare_threads(),
        );
        let overhead = Host::DEFAULT_CONCURRENCY_OVERHEAD;
        let cpus = [
            PsCpu::new(host.vm(web_vm).effective_cores(), overhead),
            PsCpu::new(host.vm(appdb_vm).effective_cores(), overhead),
        ];
        ThreeTierSystem {
            model: spec.model,
            host,
            web_vm,
            appdb_vm,
            appdb_level: spec.appdb_level,
            config,
            fleet: Fleet::new(spec.clients, spec.mix),
            rng: Pcg64::seed_from_u64(spec.seed),
            queue: EventQueue::new(),
            apache,
            tomcat,
            cpus,
            tick_gen: [0, 0],
            scheduled_tick: [None, None],
            db_busy: 0,
            db_queue: VecDeque::new(),
            disk: Disk::new(spec.model.disk_elevator_gain, spec.model.disk_max_depth),
            accept_queue: VecDeque::new(),
            app_queue: VecDeque::new(),
            requests: Vec::new(),
            free_ids: Vec::new(),
            holds: HashMap::new(),
            hold_gen: 0,
            sessions: HashMap::new(),
            response_ms: Vec::new(),
            refused: 0,
            started: false,
            base_clients: spec.clients,
            latency_factor: 1.0,
            stalled: [false, false],
            stall_gen: [0, 0],
            service_tail: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Current traffic mix.
    pub fn mix(&self) -> Mix {
        self.fleet.mix()
    }

    /// Current number of emulated browsers.
    pub fn clients(&self) -> usize {
        self.fleet.len()
    }

    /// Current app/db VM resource level.
    pub fn resource_level(&self) -> ResourceLevel {
        self.appdb_level
    }

    /// Applies a new configuration at runtime (the paper's graceful
    /// restart): pool limits are re-clamped, keep-alive connections are
    /// dropped, sessions survive.
    pub fn set_config(&mut self, config: ServerConfig) {
        self.config = config;
        self.apache.set_limits(
            config.max_clients(),
            config.min_spare_servers(),
            config.max_spare_servers(),
        );
        self.tomcat.set_limits(
            config.max_threads(),
            config.min_spare_threads(),
            config.max_spare_threads(),
        );
        // Graceful restart drops idle keep-alive connections; their
        // expiry events become stale no-ops.
        for _ in 0..self.holds.len() {
            self.apache.unhold_to_idle();
        }
        self.holds.clear();
        // New worker generations start small and ramp back up.
        self.apache.restart(self.model.start_servers);
        self.tomcat.restart(self.model.start_servers);
        self.serve_accept_queue();
        self.resync_cpu_ticks();
    }

    /// Changes the client population and/or mix (a workload change in the
    /// paper's system contexts).
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero.
    pub fn set_workload(&mut self, clients: usize, mix: Mix) {
        assert!(clients > 0, "workload needs at least one client");
        if mix != self.fleet.mix() {
            self.fleet.set_mix(mix);
        }
        let old = self.fleet.len();
        self.fleet.resize(clients);
        if self.started && clients > old {
            let now = self.queue.now();
            let think = Exponential::with_mean(tpcw::MEAN_THINK_TIME_SECS);
            for b in old..clients {
                let offset = SimDuration::from_secs_f64(think.sample(&mut self.rng));
                self.queue.schedule(now + offset, Ev::Issue(b));
            }
        }
    }

    /// Changes the app/db VM's resource allocation at runtime (the
    /// paper's VM reconfiguration events).
    pub fn set_resource_level(&mut self, level: ResourceLevel) {
        self.host
            .reallocate(self.appdb_vm, level.vm_spec())
            .expect("paper levels always fit the host");
        self.appdb_level = level;
        let now = self.queue.now();
        self.apply_effective_cores(now);
        self.resync_cpu_ticks();
    }

    // ----- scenario hooks ---------------------------------------------

    /// Scales the offered client population to `scale ×` the spec's
    /// base population (scenario intensity curves). The mix is kept.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn set_intensity(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "intensity must be finite and positive, got {scale}"
        );
        let clients = ((self.base_clients as f64 * scale).round() as usize).max(1);
        self.set_workload(clients, self.fleet.mix());
    }

    /// Multiplies every CPU service demand by `factor` until the next
    /// call (scenario latency noise; 1.0 restores nominal service).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_latency_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "latency factor must be finite and positive, got {factor}"
        );
        self.latency_factor = factor;
    }

    /// Current latency-noise factor (diagnostics).
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Switches browser think times to a mean-preserving log-normal
    /// with the given σ, or back to the exponential TPC-W default
    /// (`None`) — the scenario `tail ... think` directive. Initial
    /// issue offsets (bootstrap and population growth) always stay
    /// exponential: they only desynchronize browsers, and keeping them
    /// fixed keeps tail-free runs bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not finite and non-negative.
    pub fn set_think_tail(&mut self, sigma: Option<f64>) {
        self.fleet.set_think_dist(match sigma {
            Some(s) => ThinkDist::lognormal(s),
            None => ThinkDist::exponential(),
        });
    }

    /// Applies mean-1 log-normal jitter with the given σ to every new
    /// request's CPU demands, or restores the deterministic default
    /// (`None`) — the scenario `tail ... service` directive. In-flight
    /// requests keep the jitter they were issued with.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not finite and non-negative.
    pub fn set_service_tail(&mut self, sigma: Option<f64>) {
        self.service_tail = sigma.map(|s| LogNormal::with_mean(1.0, s));
    }

    /// Drifts the traffic mix: installs the transition matrix `frac` of
    /// the way from `from` to `to` on every browser, preserving their
    /// sessions. The fleet reports whichever endpoint the blend is
    /// closer to as its nominal mix.
    pub fn set_mix_blend(&mut self, from: Mix, to: Mix, frac: f64) {
        let matrix = tpcw::MixMatrix::interpolate(&from.matrix(), &to.matrix(), frac);
        let nominal = if frac < 0.5 { from } else { to };
        self.fleet.set_matrix(matrix, nominal);
    }

    /// Freezes a tier's CPU for `duration` of simulated time (scenario
    /// stall fault); in-flight and arriving work queues up and drains
    /// when the stall clears. Overlapping stalls extend the freeze.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn inject_stall(&mut self, tier: Tier, duration: SimDuration) {
        assert!(!duration.is_zero(), "stall duration must be positive");
        let vm = tier.index();
        self.stalled[vm] = true;
        self.stall_gen[vm] += 1;
        let now = self.queue.now();
        self.queue
            .schedule(now + duration, Ev::FaultClear(vm, self.stall_gen[vm]));
        self.apply_effective_cores(now);
        self.resync_cpu_ticks();
    }

    /// Whether a tier is currently stalled by an injected fault.
    pub fn is_stalled(&self, tier: Tier) -> bool {
        self.stalled[tier.index()]
    }

    fn on_fault_clear(&mut self, now: SimTime, vm: usize, gen: u64) {
        if gen == self.stall_gen[vm] {
            self.stalled[vm] = false;
            self.apply_effective_cores(now);
        }
    }

    /// Applies the host's current effective core allocation to both
    /// tier CPUs, respecting active stall faults — the single place
    /// core capacity is written, so the per-second rebalance cannot
    /// silently lift a stall.
    fn apply_effective_cores(&mut self, now: SimTime) {
        for (vm, id) in [(WEB, self.web_vm), (APPDB, self.appdb_vm)] {
            let cores = if self.stalled[vm] {
                STALLED_CORES
            } else {
                self.host.vm(id).effective_cores()
            };
            self.cpus[vm].set_cores(now, cores);
        }
    }

    /// Runs the simulation for `interval` of simulated time and returns
    /// the application-level performance observed during it.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn run_interval(&mut self, interval: SimDuration) -> PerfSample {
        assert!(!interval.is_zero(), "interval must be positive");
        if !self.started {
            self.bootstrap();
        }
        let horizon = self.queue.now() + interval;
        while let Some((now, ev)) = self.queue.pop_before(horizon) {
            self.dispatch(now, ev);
            self.resync_cpu_ticks();
        }
        let sample = PerfSample::from_parts(
            std::mem::take(&mut self.response_ms),
            std::mem::take(&mut self.refused),
            interval.as_secs_f64(),
        );
        if obs::enabled() {
            let m = SimMetrics::get();
            m.intervals.inc();
            m.completed.add(sample.completed);
            m.refused.add(sample.refused);
            m.response_ms.record_ms(sample.mean_response_ms);
        }
        sample
    }

    fn bootstrap(&mut self) {
        self.started = true;
        let think = Exponential::with_mean(tpcw::MEAN_THINK_TIME_SECS);
        for b in 0..self.fleet.len() {
            let offset = SimDuration::from_secs_f64(think.sample(&mut self.rng));
            self.queue.schedule(SimTime::ZERO + offset, Ev::Issue(b));
        }
        self.queue.schedule(SimTime::from_secs(1), Ev::Maintain);
        self.queue
            .schedule(SimTime::from_secs(10), Ev::SessionSweep);
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Issue(b) => self.on_issue(now, b),
            Ev::Retry(id) => self.admit(now, id),
            Ev::WebSwap(id) => self.push_web_work(now, id),
            Ev::AppSwap(id) => self.push_app_first_work(now, id),
            Ev::DiskDone(id) => self.on_disk_done(now, id),
            Ev::CpuTick(vm, gen) => self.on_cpu_tick(now, vm, gen),
            Ev::KeepaliveExpire(b, gen) => self.on_keepalive_expire(b, gen),
            Ev::Maintain => self.on_maintain(now),
            Ev::SessionSweep => self.on_session_sweep(now),
            Ev::FaultClear(vm, gen) => self.on_fault_clear(now, vm, gen),
        }
    }

    // ----- processor-sharing plumbing ---------------------------------

    fn resync_cpu_ticks(&mut self) {
        let now = self.queue.now();
        for vm in [WEB, APPDB] {
            let eta = self.cpus[vm].next_completion(now);
            match (eta, self.scheduled_tick[vm]) {
                (None, _) => self.scheduled_tick[vm] = None,
                (Some(e), Some(t)) if t == e => {}
                (Some(e), _) => {
                    self.tick_gen[vm] += 1;
                    self.scheduled_tick[vm] = Some(e);
                    self.queue.schedule(e, Ev::CpuTick(vm, self.tick_gen[vm]));
                }
            }
        }
    }

    fn on_cpu_tick(&mut self, now: SimTime, vm: usize, gen: u64) {
        if gen != self.tick_gen[vm] {
            return; // superseded by a later arrival/departure
        }
        self.scheduled_tick[vm] = None;
        for (id, phase) in self.cpus[vm].pop_ready(now) {
            match phase {
                PHASE_WEB => self.on_web_done(now, id),
                PHASE_APP_FIRST => self.on_app_first_done(now, id),
                PHASE_DB => self.on_db_cpu_done(now, id),
                PHASE_APP_SECOND => self.on_app_second_done(now, id),
                other => unreachable!("unknown phase {other}"),
            }
        }
    }

    // ----- request lifecycle ------------------------------------------

    fn on_issue(&mut self, now: SimTime, browser: usize) {
        if browser >= self.fleet.len() {
            return; // browser removed by a workload change
        }
        let request = self.fleet.browser_mut(browser).next_request(&mut self.rng);
        let jitter = match &self.service_tail {
            Some(dist) => dist.sample(&mut self.rng),
            None => 1.0,
        };
        let id = self.alloc_request(ReqState {
            browser,
            issued_at: now,
            demand: request.interaction.demand(),
            session: request.session,
            new_session: request.new_session,
            reused_connection: false,
            jitter,
        });
        self.admit(now, id);
    }

    fn admit(&mut self, now: SimTime, id: ReqId) {
        let (browser, new_session) = {
            let req = self.req(id);
            (req.browser, req.new_session)
        };
        if new_session {
            // A fresh session opens a new TCP connection; any stale hold
            // for this browser's old connection is closed.
            if self.holds.remove(&browser).is_some() {
                self.apache.unhold_to_idle();
            }
        } else if self.holds.remove(&browser).is_some() {
            self.apache.unhold_to_busy();
            self.req_mut(id).reused_connection = true;
            self.start_web(now, id);
            return;
        }
        if self.apache.try_acquire() {
            self.start_web(now, id);
        } else if self.accept_queue.len() < self.model.accept_backlog as usize {
            self.accept_queue.push_back(id);
        } else {
            self.refused += 1;
            let backoff = SimDuration::from_secs_f64(self.model.retry_backoff_secs);
            self.queue.schedule(now + backoff, Ev::Retry(id));
        }
    }

    fn start_web(&mut self, now: SimTime, id: ReqId) {
        let swap_ms = self.web_swap_ms();
        if swap_ms >= 0.5 {
            let wait = SimDuration::from_millis_f64(swap_ms);
            self.queue.schedule(now + wait, Ev::WebSwap(id));
        } else {
            self.push_web_work(now, id);
        }
    }

    fn push_web_work(&mut self, now: SimTime, id: ReqId) {
        let (demand, reused, jitter) = {
            let req = self.req(id);
            (req.demand, req.reused_connection, req.jitter)
        };
        let mut cpu_us = demand.web_cpu_us as f64 * self.model.demand_scale;
        if !reused {
            cpu_us += self.model.connection_setup_us as f64;
        }
        self.cpus[WEB].push(now, cpu_us * self.latency_factor * jitter, (id, PHASE_WEB));
    }

    fn on_web_done(&mut self, now: SimTime, id: ReqId) {
        if self.req(id).demand.app_cpu_us == 0 {
            self.respond(now, id);
        } else if self.tomcat.try_acquire() {
            self.start_app_first(now, id);
        } else {
            self.app_queue.push_back(id);
        }
    }

    fn start_app_first(&mut self, now: SimTime, id: ReqId) {
        // The page-in cost of a pressured working set is charged once per
        // request, on entry to the app tier.
        let swap_ms = self.appdb_swap_ms();
        if swap_ms >= 0.5 {
            let wait = SimDuration::from_millis_f64(swap_ms);
            self.queue.schedule(now + wait, Ev::AppSwap(id));
        } else {
            self.push_app_first_work(now, id);
        }
    }

    fn push_app_first_work(&mut self, now: SimTime, id: ReqId) {
        let (demand, session, jitter) = {
            let req = self.req(id);
            (req.demand, req.session, req.jitter)
        };
        let mut cpu_us = demand.app_cpu_us as f64 / 2.0 * self.model.demand_scale;
        if demand.uses_session {
            if !self.sessions.contains_key(&session) {
                cpu_us += self.model.session_create_cpu_us as f64;
            }
            self.sessions.insert(session, now);
        }
        self.cpus[APPDB].push(
            now,
            (cpu_us * self.latency_factor * jitter).max(1.0),
            (id, PHASE_APP_FIRST),
        );
    }

    fn on_app_first_done(&mut self, now: SimTime, id: ReqId) {
        if self.req(id).demand.db_cpu_us == 0 {
            self.start_app_second(now, id);
        } else if self.db_busy < self.model.db_connections {
            self.db_busy += 1;
            self.start_db(now, id);
        } else {
            self.db_queue.push_back(id);
        }
    }

    fn start_db(&mut self, now: SimTime, id: ReqId) {
        let (demand, jitter) = {
            let req = self.req(id);
            (req.demand, req.jitter)
        };
        let cpu_us = demand.db_cpu_us as f64 * self.model.demand_scale;
        self.cpus[APPDB].push(
            now,
            (cpu_us * self.latency_factor * jitter).max(1.0),
            (id, PHASE_DB),
        );
    }

    /// Database CPU finished: pay for buffer-pool misses with disk I/O.
    fn on_db_cpu_done(&mut self, now: SimTime, id: ReqId) {
        let queries = self.req(id).demand.db_queries as f64;
        let disk_ms = queries
            * self.model.accesses_per_query
            * self.db_miss_rate()
            * self.model.disk_access_ms;
        if disk_ms < 0.05 {
            self.finish_db(now, id);
        } else if let Some(eta) = self.disk.submit(now, disk_ms, id) {
            self.queue.schedule(eta, Ev::DiskDone(id));
        }
    }

    fn on_disk_done(&mut self, now: SimTime, id: ReqId) {
        let (done, next) = self.disk.finish(now);
        debug_assert_eq!(done, id, "disk completions are FIFO");
        if let Some((token, eta)) = next {
            self.queue.schedule(eta, Ev::DiskDone(token));
        }
        self.finish_db(now, id);
    }

    /// Releases the DB connection and moves the request to the second
    /// app-tier phase.
    fn finish_db(&mut self, now: SimTime, id: ReqId) {
        self.db_busy -= 1;
        if let Some(next) = self.db_queue.pop_front() {
            self.db_busy += 1;
            self.start_db(now, next);
        }
        self.start_app_second(now, id);
    }

    fn start_app_second(&mut self, now: SimTime, id: ReqId) {
        let (demand, jitter) = {
            let req = self.req(id);
            (req.demand, req.jitter)
        };
        let cpu_us = demand.app_cpu_us as f64 / 2.0 * self.model.demand_scale;
        self.cpus[APPDB].push(
            now,
            (cpu_us * self.latency_factor * jitter).max(1.0),
            (id, PHASE_APP_SECOND),
        );
    }

    fn on_app_second_done(&mut self, now: SimTime, id: ReqId) {
        self.tomcat.release();
        if let Some(next) = self.app_queue.pop_front() {
            let acquired = self.tomcat.try_acquire();
            debug_assert!(acquired, "a thread was just released");
            self.start_app_first(now, next);
        }
        self.respond(now, id);
    }

    fn respond(&mut self, now: SimTime, id: ReqId) {
        let req = self.requests[id]
            .take()
            .expect("responding to live request");
        self.free_ids.push(id);
        self.response_ms
            .push(now.saturating_since(req.issued_at).as_millis_f64());

        let browser_alive = req.browser < self.fleet.len();
        let keepalive = self.config.keepalive_timeout_secs();
        let persists = self.rng.chance(self.model.keepalive_persist_p);
        if browser_alive && keepalive > 0 && persists {
            self.apache.hold();
            self.hold_gen += 1;
            self.holds.insert(req.browser, self.hold_gen);
            self.queue.schedule(
                now + SimDuration::from_secs(keepalive as u64),
                Ev::KeepaliveExpire(req.browser, self.hold_gen),
            );
        } else {
            self.apache.release();
            self.serve_accept_queue();
        }
        if browser_alive {
            let think = self
                .fleet
                .browser_mut(req.browser)
                .think_time(&mut self.rng);
            self.queue.schedule(now + think, Ev::Issue(req.browser));
        }
    }

    fn on_keepalive_expire(&mut self, browser: usize, gen: u64) {
        if self.holds.get(&browser) == Some(&gen) {
            self.holds.remove(&browser);
            self.apache.unhold_to_idle();
            self.serve_accept_queue();
        }
    }

    fn serve_accept_queue(&mut self) {
        let now = self.queue.now();
        while !self.accept_queue.is_empty() && self.apache.try_acquire() {
            let id = self.accept_queue.pop_front().expect("non-empty");
            self.req_mut(id).reused_connection = false;
            self.start_web(now, id);
        }
    }

    // ----- periodic housekeeping --------------------------------------

    fn on_maintain(&mut self, now: SimTime) {
        let am = self.apache.maintain(self.accept_queue.len() as u32);
        let web_churn = am.spawned as f64 * self.model.fork_cpu_us as f64 / 1e6;
        self.cpus[WEB].set_extra_load(now, web_churn);
        let tm = self.tomcat.maintain(self.app_queue.len() as u32);
        let appdb_churn = tm.spawned as f64 * self.model.thread_create_cpu_us as f64 / 1e6;
        self.cpus[APPDB].set_extra_load(now, appdb_churn);

        self.serve_accept_queue();
        while !self.app_queue.is_empty() && self.tomcat.try_acquire() {
            let id = self.app_queue.pop_front().expect("non-empty");
            self.start_app_first(now, id);
        }

        let demands = [self.cpus[WEB].load(), self.cpus[APPDB].load()];
        self.host.rebalance(&demands);
        self.apply_effective_cores(now);

        self.queue
            .schedule(now + SimDuration::from_secs(1), Ev::Maintain);
    }

    fn on_session_sweep(&mut self, now: SimTime) {
        let timeout = SimDuration::from_secs(self.config.session_timeout_mins() as u64 * 60);
        self.sessions
            .retain(|_, last| now.saturating_since(*last) <= timeout);
        self.queue
            .schedule(now + SimDuration::from_secs(10), Ev::SessionSweep);
    }

    // ----- performance model ------------------------------------------

    /// Additive page-in latency on the web VM (ms), from worker memory.
    fn web_swap_ms(&self) -> f64 {
        let mem = self.model.apache_base_mb + self.apache.size() as f64 * self.model.per_worker_mb;
        (self.host.vm(self.web_vm).memory_slowdown(mem) - 1.0) * self.model.swap_unit_ms
    }

    /// Guest memory consumed on the app/db VM (MiB), excluding the page
    /// cache.
    fn appdb_used_mb(&self) -> f64 {
        self.model.appdb_base_mb
            + self.tomcat.size() as f64 * self.model.per_thread_mb
            + self.sessions.len() as f64 * self.model.per_session_mb
            + self.db_busy as f64 * self.model.per_db_conn_mb
    }

    /// Additive page-in latency on the app/db VM (ms), from threads,
    /// sessions and DB connections.
    fn appdb_swap_ms(&self) -> f64 {
        let mem = self.appdb_used_mb();
        (self.host.vm(self.appdb_vm).memory_slowdown(mem) - 1.0) * self.model.swap_unit_ms
    }

    /// Fraction of database page accesses that miss the page cache.
    ///
    /// Whatever guest memory threads/sessions/connections do not consume
    /// serves as page cache for the database's working set — the channel
    /// through which the VM's memory level (and the session-timeout and
    /// pool-size parameters) shapes database latency.
    fn db_miss_rate(&self) -> f64 {
        let alloc = self.host.vm(self.appdb_vm).spec().memory_mb() as f64;
        let cache = (alloc - self.appdb_used_mb()).max(self.model.min_cache_mb);
        (1.0 - cache / self.model.db_working_set_mb).clamp(self.model.min_miss_rate, 1.0)
    }

    // ----- slab helpers ------------------------------------------------

    fn alloc_request(&mut self, state: ReqState) -> ReqId {
        if let Some(id) = self.free_ids.pop() {
            self.requests[id] = Some(state);
            id
        } else {
            self.requests.push(Some(state));
            self.requests.len() - 1
        }
    }

    fn req(&self, id: ReqId) -> &ReqState {
        self.requests[id].as_ref().expect("live request")
    }

    fn req_mut(&mut self, id: ReqId) -> &mut ReqState {
        self.requests[id].as_mut().expect("live request")
    }

    /// Number of requests currently in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.requests.iter().filter(|r| r.is_some()).count()
    }

    /// Number of live HTTP sessions (diagnostics).
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }
}

/// Convenience: measure a configuration on a fresh system after a warm-up
/// interval. Used by offline training-data collection, the trial-and-error
/// baseline's probes, and the figure harness.
///
/// Runs `warmup` (discarded) then `measure` and returns the second
/// sample.
///
/// # Example
///
/// ```
/// use simkernel::SimDuration;
/// use websim::{measure_config, ServerConfig, SystemSpec};
///
/// let spec = SystemSpec::default().with_clients(50);
/// let s = measure_config(&spec, ServerConfig::default(),
///                        SimDuration::from_secs(60), SimDuration::from_secs(120));
/// assert!(s.is_measurable());
/// ```
pub fn measure_config(
    spec: &SystemSpec,
    config: ServerConfig,
    warmup: SimDuration,
    measure: SimDuration,
) -> PerfSample {
    let mut sys = ThreeTierSystem::new(spec.clone());
    sys.set_config(config);
    if !warmup.is_zero() {
        let _ = sys.run_interval(warmup);
    }
    sys.run_interval(measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Param;

    fn small_spec() -> SystemSpec {
        SystemSpec::default().with_clients(80).with_seed(7)
    }

    fn run_secs(sys: &mut ThreeTierSystem, secs: u64) -> PerfSample {
        sys.run_interval(SimDuration::from_secs(secs))
    }

    #[test]
    fn system_completes_requests() {
        let mut sys = ThreeTierSystem::new(small_spec());
        let s = run_secs(&mut sys, 120);
        assert!(s.is_measurable(), "no requests completed: {s}");
        assert!(s.mean_response_ms > 0.0);
        assert!(s.throughput_rps > 1.0, "throughput {s}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ThreeTierSystem::new(small_spec());
        let mut b = ThreeTierSystem::new(small_spec());
        let sa = run_secs(&mut a, 60);
        let sb = run_secs(&mut b, 60);
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ThreeTierSystem::new(small_spec().with_seed(1));
        let mut b = ThreeTierSystem::new(small_spec().with_seed(2));
        assert_ne!(run_secs(&mut a, 60), run_secs(&mut b, 60));
    }

    #[test]
    fn state_persists_across_intervals() {
        let mut sys = ThreeTierSystem::new(small_spec());
        let s1 = run_secs(&mut sys, 60);
        let s2 = run_secs(&mut sys, 60);
        assert!(s1.is_measurable() && s2.is_measurable());
        // Pools warmed up; sessions accumulated.
        assert!(sys.live_sessions() > 0);
    }

    #[test]
    fn closed_loop_bounds_in_flight() {
        let mut sys = ThreeTierSystem::new(small_spec());
        run_secs(&mut sys, 120);
        assert!(sys.in_flight() <= sys.clients());
    }

    #[test]
    fn intensity_scales_relative_to_base_population() {
        let mut sys = ThreeTierSystem::new(small_spec());
        run_secs(&mut sys, 30);
        sys.set_intensity(2.5);
        assert_eq!(sys.clients(), 200);
        // Scaling is relative to the base (80), not the current fleet.
        sys.set_intensity(0.5);
        assert_eq!(sys.clients(), 40);
        sys.set_intensity(0.001);
        assert_eq!(sys.clients(), 1, "population never drops to zero");
        let s = run_secs(&mut sys, 60);
        assert!(s.is_measurable());
    }

    #[test]
    fn latency_noise_degrades_and_restores() {
        let run = |factor: f64| {
            let mut sys = ThreeTierSystem::new(small_spec());
            run_secs(&mut sys, 60);
            sys.set_latency_factor(factor);
            let noisy = run_secs(&mut sys, 120);
            sys.set_latency_factor(1.0);
            run_secs(&mut sys, 60);
            let restored = run_secs(&mut sys, 120);
            (noisy, restored)
        };
        let (clean, clean_tail) = run(1.0);
        let (noisy, noisy_tail) = run(2.0);
        assert!(
            noisy.mean_response_ms > 1.5 * clean.mean_response_ms,
            "noise must slow responses: clean {clean} noisy {noisy}"
        );
        // After restoring the factor the system converges back.
        assert!(
            noisy_tail.mean_response_ms < 1.5 * clean_tail.mean_response_ms,
            "restore: clean {clean_tail} noisy {noisy_tail}"
        );
    }

    #[test]
    fn unit_latency_factor_is_bit_identical_to_default() {
        let mut plain = ThreeTierSystem::new(small_spec());
        let mut touched = ThreeTierSystem::new(small_spec());
        touched.set_latency_factor(1.0);
        assert_eq!(run_secs(&mut plain, 120), run_secs(&mut touched, 120));
    }

    #[test]
    fn tails_off_is_bit_identical_to_default() {
        // Explicitly resetting both tails to their defaults must not
        // perturb the RNG stream or the arithmetic: `None` means zero
        // extra draws and a literal `* 1.0`.
        let mut plain = ThreeTierSystem::new(small_spec());
        let mut touched = ThreeTierSystem::new(small_spec());
        touched.set_think_tail(None);
        touched.set_service_tail(None);
        assert_eq!(run_secs(&mut plain, 120), run_secs(&mut touched, 120));
    }

    #[test]
    fn service_tail_changes_output_and_restores() {
        let mut plain = ThreeTierSystem::new(small_spec());
        let baseline = run_secs(&mut plain, 300);

        let mut tailed = ThreeTierSystem::new(small_spec());
        tailed.set_service_tail(Some(1.2));
        let heavy = run_secs(&mut tailed, 300);
        assert_ne!(baseline, heavy, "a heavy service tail must be visible");

        // Switching the tail back off restores the unit-jitter regime;
        // the RNG stream has diverged, so only sanity is checked.
        tailed.set_service_tail(None);
        let calmed = run_secs(&mut tailed, 300);
        assert!(calmed.is_measurable());
    }

    #[test]
    fn think_tail_changes_output() {
        let mut plain = ThreeTierSystem::new(small_spec());
        let baseline = run_secs(&mut plain, 300);

        let mut tailed = ThreeTierSystem::new(small_spec());
        tailed.set_think_tail(Some(1.0));
        let heavy = run_secs(&mut tailed, 300);
        assert_ne!(baseline, heavy, "a heavy think tail must be visible");
    }

    #[test]
    fn stall_freezes_then_recovers() {
        let mut sys = ThreeTierSystem::new(small_spec());
        run_secs(&mut sys, 60);
        sys.inject_stall(Tier::AppDb, SimDuration::from_secs(30));
        assert!(sys.is_stalled(Tier::AppDb));
        assert!(!sys.is_stalled(Tier::Web));
        let stalled = run_secs(&mut sys, 60);
        // Requests pile up behind the frozen tier: the interval's mean
        // response time reflects the 30 s freeze.
        let mut clean = ThreeTierSystem::new(small_spec());
        run_secs(&mut clean, 60);
        let clean_s = run_secs(&mut clean, 60);
        assert!(
            stalled.mean_response_ms > 3.0 * clean_s.mean_response_ms,
            "stall must hurt: clean {clean_s} stalled {stalled}"
        );
        assert!(!sys.is_stalled(Tier::AppDb), "stall self-clears");
        run_secs(&mut sys, 120);
        let recovered = run_secs(&mut sys, 120);
        assert!(
            recovered.mean_response_ms < 3.0 * clean_s.mean_response_ms,
            "post-stall recovery: clean {clean_s} recovered {recovered}"
        );
    }

    #[test]
    fn overlapping_stalls_extend_the_freeze() {
        let mut sys = ThreeTierSystem::new(small_spec());
        run_secs(&mut sys, 30);
        sys.inject_stall(Tier::Web, SimDuration::from_secs(40));
        // A second stall injected immediately supersedes the first
        // clear event; the tier stays frozen for the full 90 s.
        sys.inject_stall(Tier::Web, SimDuration::from_secs(90));
        run_secs(&mut sys, 60);
        assert!(sys.is_stalled(Tier::Web), "first clear must be stale");
        run_secs(&mut sys, 60);
        assert!(!sys.is_stalled(Tier::Web));
    }

    #[test]
    fn mix_blend_shifts_order_fraction() {
        let order_rate = |blend: Option<f64>| {
            let mut sys = ThreeTierSystem::new(small_spec());
            run_secs(&mut sys, 60);
            if let Some(frac) = blend {
                sys.set_mix_blend(Mix::Shopping, Mix::Ordering, frac);
            }
            // Sessions survive the blend; run long enough to see the
            // behavioural shift in aggregate throughput of order pages.
            run_secs(&mut sys, 600);
            sys.live_sessions()
        };
        // A full blend to Ordering creates session-heavier traffic than
        // pure shopping (ordering flows all use sessions).
        let shopping = order_rate(None);
        let ordering = order_rate(Some(1.0));
        assert!(
            ordering > shopping,
            "ordering-blend sessions {ordering} <= shopping {shopping}"
        );
        // Nominal mix follows the nearest endpoint.
        let mut sys = ThreeTierSystem::new(small_spec());
        sys.set_mix_blend(Mix::Shopping, Mix::Ordering, 0.25);
        assert_eq!(sys.mix(), Mix::Shopping);
        sys.set_mix_blend(Mix::Shopping, Mix::Ordering, 0.75);
        assert_eq!(sys.mix(), Mix::Ordering);
    }

    #[test]
    fn throughput_tracks_client_population() {
        let mut small = ThreeTierSystem::new(SystemSpec::default().with_clients(40).with_seed(3));
        let mut large = ThreeTierSystem::new(SystemSpec::default().with_clients(160).with_seed(3));
        let ss = run_secs(&mut small, 180);
        let sl = run_secs(&mut large, 180);
        assert!(
            sl.throughput_rps > 2.0 * ss.throughput_rps,
            "small {ss} large {sl}"
        );
    }

    #[test]
    fn weaker_vm_is_slower() {
        let spec = SystemSpec::default().with_seed(5);
        let strong = measure_config(
            &spec.clone().with_level(ResourceLevel::Level1),
            ServerConfig::default(),
            SimDuration::from_secs(600),
            SimDuration::from_secs(300),
        );
        let weak = measure_config(
            &spec.with_level(ResourceLevel::Level3),
            ServerConfig::default(),
            SimDuration::from_secs(600),
            SimDuration::from_secs(300),
        );
        assert!(
            weak.mean_response_ms > strong.mean_response_ms,
            "strong {strong} weak {weak}"
        );
    }

    #[test]
    fn tiny_max_clients_hurts() {
        let spec = SystemSpec::default().with_clients(200).with_seed(9);
        let choked = measure_config(
            &spec,
            ServerConfig::default().with(Param::MaxClients, 5).unwrap(),
            SimDuration::from_secs(120),
            SimDuration::from_secs(180),
        );
        let sane = measure_config(
            &spec,
            ServerConfig::default()
                .with(Param::MaxClients, 300)
                .unwrap(),
            SimDuration::from_secs(120),
            SimDuration::from_secs(180),
        );
        assert!(
            choked.mean_response_ms > 2.0 * sane.mean_response_ms,
            "choked {choked} sane {sane}"
        );
    }

    #[test]
    fn reconfiguration_applies_at_runtime() {
        let mut sys = ThreeTierSystem::new(small_spec());
        run_secs(&mut sys, 60);
        let new_cfg = ServerConfig::default()
            .with(Param::MaxClients, 300)
            .unwrap();
        sys.set_config(new_cfg);
        assert_eq!(sys.config().max_clients(), 300);
        let s = run_secs(&mut sys, 60);
        assert!(s.is_measurable());
    }

    #[test]
    fn workload_change_applies() {
        let mut sys = ThreeTierSystem::new(small_spec());
        run_secs(&mut sys, 60);
        sys.set_workload(160, Mix::Ordering);
        assert_eq!(sys.clients(), 160);
        assert_eq!(sys.mix(), Mix::Ordering);
        let s = run_secs(&mut sys, 120);
        assert!(s.is_measurable());
        // Shrink, too.
        sys.set_workload(20, Mix::Ordering);
        let s2 = run_secs(&mut sys, 120);
        assert!(s2.is_measurable());
        assert!(s2.throughput_rps < s.throughput_rps);
    }

    #[test]
    fn resource_level_change_applies() {
        let mut sys = ThreeTierSystem::new(small_spec());
        run_secs(&mut sys, 30);
        sys.set_resource_level(ResourceLevel::Level3);
        assert_eq!(sys.resource_level(), ResourceLevel::Level3);
        assert!(run_secs(&mut sys, 60).is_measurable());
    }

    #[test]
    fn sessions_expire_with_short_timeout() {
        let mut sys = ThreeTierSystem::new(small_spec());
        sys.set_config(
            ServerConfig::default()
                .with(Param::SessionTimeout, 1)
                .unwrap(),
        );
        run_secs(&mut sys, 300);
        let short = sys.live_sessions();
        let mut sys2 = ThreeTierSystem::new(small_spec());
        sys2.set_config(
            ServerConfig::default()
                .with(Param::SessionTimeout, 35)
                .unwrap(),
        );
        run_secs(&mut sys2, 300);
        let long = sys2.live_sessions();
        assert!(long > short, "short timeout {short} vs long timeout {long}");
    }

    #[test]
    fn zero_interval_panics() {
        let mut sys = ThreeTierSystem::new(small_spec());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sys.run_interval(SimDuration::ZERO)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn measure_config_helper_runs() {
        let s = measure_config(
            &SystemSpec::default().with_clients(30),
            ServerConfig::default(),
            SimDuration::from_secs(30),
            SimDuration::from_secs(60),
        );
        assert!(s.is_measurable());
    }
}
