//! Application-level performance samples.

use std::fmt;

use simkernel::stats::DurationHistogram;
use simkernel::SimDuration;

/// Application-level performance measured over one interval — the only
/// signal the RAC agent (and its baselines) ever see.
///
/// # Example
///
/// ```
/// use websim::PerfSample;
///
/// let s = PerfSample::from_parts(vec![100.0, 200.0, 300.0], 0, 60.0);
/// assert_eq!(s.completed, 3);
/// assert!((s.mean_response_ms - 200.0).abs() < 1e-9);
/// assert!((s.throughput_rps - 0.05).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSample {
    /// Mean response time in milliseconds (the paper's headline metric).
    pub mean_response_ms: f64,
    /// 95th-percentile response time in milliseconds.
    pub p95_response_ms: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Requests completed within the interval.
    pub completed: u64,
    /// Connection attempts refused (accept queue overflow).
    pub refused: u64,
}

impl PerfSample {
    /// A sample representing an interval in which nothing completed — the
    /// response time is reported as infinite, which the reward function
    /// treats as a hard SLA violation.
    pub fn empty() -> Self {
        PerfSample {
            mean_response_ms: f64::INFINITY,
            p95_response_ms: f64::INFINITY,
            throughput_rps: 0.0,
            completed: 0,
            refused: 0,
        }
    }

    /// Builds a sample from individual response times (milliseconds),
    /// the number of refusals, and the interval length in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_secs` is not positive.
    pub fn from_parts(response_ms: Vec<f64>, refused: u64, interval_secs: f64) -> Self {
        assert!(interval_secs > 0.0, "interval must be positive");
        if response_ms.is_empty() {
            let mut s = PerfSample::empty();
            s.refused = refused;
            return s;
        }
        // Batched: identical counts to per-sample `record` calls (the
        // accumulators are integers), one accumulator write-back per
        // interval instead of per completion.
        let mut hist = DurationHistogram::new();
        hist.record_batch(
            response_ms
                .iter()
                .map(|&ms| SimDuration::from_millis_f64(ms)),
        );
        let completed = response_ms.len() as u64;
        PerfSample {
            mean_response_ms: response_ms.iter().sum::<f64>() / completed as f64,
            p95_response_ms: hist.percentile(95.0).expect("non-empty").as_millis_f64(),
            throughput_rps: completed as f64 / interval_secs,
            completed,
            refused,
        }
    }

    /// `true` when at least one request completed.
    pub fn is_measurable(&self) -> bool {
        self.completed > 0
    }
}

impl fmt::Display for PerfSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rt={:.1}ms p95={:.1}ms xput={:.1}rps n={} refused={}",
            self.mean_response_ms,
            self.p95_response_ms,
            self.throughput_rps,
            self.completed,
            self.refused
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_infinite() {
        let s = PerfSample::empty();
        assert!(!s.is_measurable());
        assert!(s.mean_response_ms.is_infinite());
        assert_eq!(s.throughput_rps, 0.0);
    }

    #[test]
    fn from_parts_computes_stats() {
        let s = PerfSample::from_parts(vec![10.0; 100], 5, 10.0);
        assert_eq!(s.completed, 100);
        assert_eq!(s.refused, 5);
        assert!((s.mean_response_ms - 10.0).abs() < 1e-9);
        assert!((s.throughput_rps - 10.0).abs() < 1e-9);
        assert!(s.is_measurable());
    }

    #[test]
    fn p95_reflects_tail() {
        let mut rts = vec![10.0; 95];
        rts.extend(vec![1000.0; 5]);
        let s = PerfSample::from_parts(rts, 0, 60.0);
        // The true 95th percentile is exactly 10 ms; the histogram
        // reports the containing bucket's lower bound (≤ ~4% below).
        assert!(s.p95_response_ms >= 10.0 * 0.96 && s.p95_response_ms < 1000.0);
        assert!(s.mean_response_ms > 10.0 && s.mean_response_ms < 1000.0);
    }

    #[test]
    fn from_parts_empty_keeps_refused() {
        let s = PerfSample::from_parts(Vec::new(), 7, 60.0);
        assert_eq!(s.refused, 7);
        assert!(!s.is_measurable());
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        PerfSample::from_parts(vec![1.0], 0, 0.0);
    }

    #[test]
    fn display_format() {
        let s = PerfSample::from_parts(vec![100.0], 0, 1.0);
        let txt = s.to_string();
        assert!(txt.contains("rt=100.0ms"), "{txt}");
    }
}
