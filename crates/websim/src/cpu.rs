//! Exact processor-sharing CPU model.
//!
//! Each VM's CPU is modelled as an egalitarian processor-sharing server:
//! all runnable tasks progress simultaneously at a rate of
//! `min(cores / C, 1) / (1 + overhead · C)` where `C` is the number of
//! runnable tasks. Progress is tracked in *virtual work time*, so task
//! completions are exact under arbitrary arrival/departure interleavings
//! — no snapshot approximation, no oscillation artifacts.

use simkernel::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Token identifying a task inside a [`PsCpu`]; the simulator stores the
/// request id and phase in it.
pub type TaskToken = (usize, u8);

#[derive(Debug, Clone, Copy, PartialEq)]
struct VirtFinish(f64);

impl Eq for VirtFinish {}
impl PartialOrd for VirtFinish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for VirtFinish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A processor-sharing CPU for one VM.
///
/// # Example
///
/// ```
/// use simkernel::SimTime;
/// use websim::cpu::PsCpu;
///
/// let mut cpu = PsCpu::new(2.0, 0.001);
/// cpu.push(SimTime::ZERO, 10_000.0, (0, 0)); // one task of 10 ms work
/// let eta = cpu.next_completion(SimTime::ZERO).unwrap();
/// // Alone on 2 cores: finishes in ~10 ms of real time.
/// assert!((eta.as_secs_f64() - 0.010).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct PsCpu {
    /// Virtual work completed per task so far (µs at unit speed).
    virt: f64,
    last: SimTime,
    /// Per-task progress in work-µs per real-µs.
    speed: f64,
    heap: BinaryHeap<Reverse<(VirtFinish, TaskToken)>>,
    cores: f64,
    overhead: f64,
    extra_load: f64,
}

impl PsCpu {
    /// Creates an idle CPU with `cores` effective cores and per-task
    /// concurrency `overhead`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive or `overhead` is negative.
    pub fn new(cores: f64, overhead: f64) -> Self {
        assert!(cores > 0.0, "cores must be positive");
        assert!(overhead >= 0.0, "overhead must be non-negative");
        PsCpu {
            virt: 0.0,
            last: SimTime::ZERO,
            speed: 1.0,
            heap: BinaryHeap::new(),
            cores,
            overhead,
            extra_load: 0.0,
        }
    }

    /// Number of runnable tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no task is runnable.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Effective runnable load including background churn.
    pub fn load(&self) -> f64 {
        self.heap.len() as f64 + self.extra_load
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_micros() as f64;
        if dt > 0.0 {
            if !self.heap.is_empty() {
                self.virt += self.speed * dt;
            }
            self.last = now;
        }
    }

    fn recompute_speed(&mut self) {
        let c = self.load();
        if c <= 0.0 {
            self.speed = 1.0;
            return;
        }
        let share = (self.cores / c).min(1.0);
        self.speed = share / (1.0 + self.overhead * c);
    }

    /// Updates the effective core count (host scheduler rebalance or VM
    /// reallocation).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive.
    pub fn set_cores(&mut self, now: SimTime, cores: f64) {
        assert!(cores > 0.0, "cores must be positive");
        self.advance(now);
        self.cores = cores;
        self.recompute_speed();
    }

    /// Updates the background churn load (fork/thread-creation CPU
    /// expressed as equivalent runnable tasks).
    ///
    /// # Panics
    ///
    /// Panics if `load` is negative or non-finite.
    pub fn set_extra_load(&mut self, now: SimTime, load: f64) {
        assert!(
            load.is_finite() && load >= 0.0,
            "extra load must be non-negative"
        );
        self.advance(now);
        self.extra_load = load;
        self.recompute_speed();
    }

    /// Adds a task needing `work_us` microseconds of unit-speed CPU.
    ///
    /// # Panics
    ///
    /// Panics if `work_us` is not positive and finite.
    pub fn push(&mut self, now: SimTime, work_us: f64, token: TaskToken) {
        assert!(
            work_us.is_finite() && work_us > 0.0,
            "work must be positive"
        );
        self.advance(now);
        self.heap
            .push(Reverse((VirtFinish(self.virt + work_us), token)));
        self.recompute_speed();
    }

    /// Real time at which the earliest task completes, or `None` when
    /// idle.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let Reverse((VirtFinish(vf), _)) = *self.heap.peek()?;
        let remaining = (vf - self.virt).max(0.0);
        let eta_us = (remaining / self.speed).ceil().max(1.0);
        Some(now + SimDuration::from_micros(eta_us as u64))
    }

    /// Removes and returns every task whose work is complete at `now`
    /// (in completion order).
    pub fn pop_ready(&mut self, now: SimTime) -> Vec<TaskToken> {
        self.advance(now);
        let mut done = Vec::new();
        while let Some(Reverse((VirtFinish(vf), _))) = self.heap.peek() {
            // Completion events are scheduled with a ceil'd ETA, so at
            // the event time the virtual clock may sit a hair past or
            // (after an intervening speed change) a hair before the
            // finish point; the 1 µs tolerance absorbs the rounding.
            if *vf <= self.virt + 1.0 {
                let Reverse((_, token)) = self.heap.pop().expect("peeked");
                done.push(token);
            } else {
                break;
            }
        }
        if !done.is_empty() {
            self.recompute_speed();
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const T0: SimTime = SimTime::ZERO;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn single_task_runs_at_full_speed() {
        let mut cpu = PsCpu::new(4.0, 0.0);
        cpu.push(T0, 20_000.0, (1, 0));
        let eta = cpu.next_completion(T0).unwrap();
        assert_eq!(eta, at(20));
        assert!(cpu.pop_ready(at(19)).is_empty());
        assert_eq!(cpu.pop_ready(at(20)), vec![(1, 0)]);
        assert!(cpu.is_empty());
    }

    #[test]
    fn tasks_within_core_count_do_not_slow_down() {
        let mut cpu = PsCpu::new(4.0, 0.0);
        for i in 0..4 {
            cpu.push(T0, 10_000.0, (i, 0));
        }
        assert_eq!(cpu.next_completion(T0).unwrap(), at(10));
        assert_eq!(cpu.pop_ready(at(10)).len(), 4);
    }

    #[test]
    fn oversubscription_shares_the_cores() {
        // 8 equal tasks on 2 cores: each runs at 1/4 speed.
        let mut cpu = PsCpu::new(2.0, 0.0);
        for i in 0..8 {
            cpu.push(T0, 10_000.0, (i, 0));
        }
        let eta = cpu.next_completion(T0).unwrap();
        assert_eq!(eta, at(40));
        assert_eq!(cpu.pop_ready(at(40)).len(), 8);
    }

    #[test]
    fn late_arrival_slows_running_task() {
        let mut cpu = PsCpu::new(1.0, 0.0);
        cpu.push(T0, 10_000.0, (1, 0));
        // Half way through, a second task arrives: remaining 5 ms now
        // takes 10 ms of real time.
        cpu.push(at(5), 10_000.0, (2, 0));
        let eta = cpu.next_completion(at(5)).unwrap();
        assert_eq!(eta, at(15));
        assert_eq!(cpu.pop_ready(at(15)), vec![(1, 0)]);
        // Task 2 has 5 ms left, alone now: finishes at 20 ms.
        let eta2 = cpu.next_completion(at(15)).unwrap();
        assert_eq!(eta2, at(20));
    }

    #[test]
    fn departure_speeds_up_survivors() {
        let mut cpu = PsCpu::new(1.0, 0.0);
        cpu.push(T0, 10_000.0, (1, 0));
        cpu.push(T0, 20_000.0, (2, 0));
        // Shared until t=20ms when task 1 (10 ms work at 1/2 speed) ends.
        assert_eq!(cpu.pop_ready(at(20)), vec![(1, 0)]);
        // Task 2 did 10 ms of its 20 ms; alone it needs 10 more.
        assert_eq!(cpu.next_completion(at(20)).unwrap(), at(30));
    }

    #[test]
    fn throughput_is_conserved_under_concurrency() {
        // Total work 400 ms on 2 cores: completes in ~200 ms of real time
        // regardless of how many tasks carry it (overhead = 0).
        for n in [2usize, 8, 40] {
            let mut cpu = PsCpu::new(2.0, 0.0);
            let per = 400_000.0 / n as f64;
            for i in 0..n {
                cpu.push(T0, per, (i, 0));
            }
            let mut t = T0;
            let mut done = 0;
            while let Some(eta) = cpu.next_completion(t) {
                t = eta;
                done += cpu.pop_ready(t).len();
            }
            assert_eq!(done, n);
            let secs = t.as_secs_f64();
            assert!((secs - 0.2).abs() < 0.01, "n={n}: finished at {secs}s");
        }
    }

    #[test]
    fn overhead_wastes_capacity() {
        let mut a = PsCpu::new(2.0, 0.0);
        let mut b = PsCpu::new(2.0, 0.01);
        for i in 0..10 {
            a.push(T0, 10_000.0, (i, 0));
            b.push(T0, 10_000.0, (i, 0));
        }
        let ea = a.next_completion(T0).unwrap();
        let eb = b.next_completion(T0).unwrap();
        assert!(eb > ea, "overhead must slow completion: {ea} vs {eb}");
    }

    #[test]
    fn core_change_mid_flight() {
        let mut cpu = PsCpu::new(4.0, 0.0);
        for i in 0..4 {
            cpu.push(T0, 20_000.0, (i, 0));
        }
        // Halve the cores half way: remaining 10 ms takes 20 ms.
        cpu.set_cores(at(10), 2.0);
        assert_eq!(cpu.next_completion(at(10)).unwrap(), at(30));
    }

    #[test]
    fn extra_load_steals_share() {
        let mut cpu = PsCpu::new(1.0, 0.0);
        cpu.push(T0, 10_000.0, (1, 0));
        cpu.set_extra_load(T0, 1.0); // churn equivalent to one task
        assert_eq!(cpu.next_completion(T0).unwrap(), at(20));
        cpu.set_extra_load(at(20), 0.0);
        assert_eq!(cpu.pop_ready(at(20)), vec![(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "work must be positive")]
    fn zero_work_panics() {
        PsCpu::new(1.0, 0.0).push(T0, 0.0, (0, 0));
    }

    proptest! {
        /// Work conservation: regardless of arrival pattern, total
        /// completion time of a batch is at least total_work/cores and at
        /// most total_work (for load ≥ cores and no overhead).
        #[test]
        fn prop_work_conservation(works in proptest::collection::vec(1_000.0f64..100_000.0, 1..20)) {
            let mut cpu = PsCpu::new(2.0, 0.0);
            for (i, w) in works.iter().enumerate() {
                cpu.push(T0, *w, (i, 0));
            }
            let mut t = T0;
            let mut done = 0;
            while let Some(eta) = cpu.next_completion(t) {
                t = eta;
                done += cpu.pop_ready(t).len();
            }
            prop_assert_eq!(done, works.len());
            let total: f64 = works.iter().sum();
            let secs = t.as_secs_f64() * 1e6;
            prop_assert!(secs + 50.0 >= total / 2.0, "{secs} vs {total}");
            prop_assert!(secs <= total + works.len() as f64 * 50.0 + 50.0);
        }

        /// With simultaneous arrivals, processor sharing completes tasks
        /// shortest-work-first.
        #[test]
        fn prop_shortest_first(works in proptest::collection::vec(1_000.0f64..100_000.0, 2..10)) {
            let mut cpu = PsCpu::new(1.0, 0.0);
            for (i, w) in works.iter().enumerate() {
                cpu.push(T0, *w, (i, 0));
            }
            let mut order = Vec::new();
            let mut t = T0;
            while let Some(eta) = cpu.next_completion(t) {
                t = eta;
                order.extend(cpu.pop_ready(t).into_iter().map(|(i, _)| i));
            }
            prop_assert_eq!(order.len(), works.len());
            for pair in order.windows(2) {
                prop_assert!(
                    works[pair[0]] <= works[pair[1]] + 2.0,
                    "completed {} (w={}) before {} (w={})",
                    pair[0], works[pair[0]], pair[1], works[pair[1]]
                );
            }
        }
    }
}
