//! Calibration constants of the performance model.
//!
//! Everything that turns configuration + load into time lives here, in
//! one place, so that the model can be calibrated (and ablated by the
//! benchmark suite) without touching the simulator mechanics.

/// Tunable constants of the three-tier performance model.
///
/// The defaults are calibrated so that the qualitative shapes of the
/// paper's Section-2 motivation hold on the simulated testbed: concave
/// response-time curves per parameter, workload-specific optima, and an
/// optimal `MaxClients` that *decreases* as the VM gets stronger.
///
/// # Example
///
/// ```
/// use websim::ModelParams;
///
/// let m = ModelParams::default();
/// assert!(m.demand_scale >= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Multiplier applied to every interaction's CPU demand (calibrates
    /// absolute load for mid-2000s hardware).
    pub demand_scale: f64,
    /// Web-tier CPU (µs) for accepting a fresh TCP connection (paid when
    /// keep-alive cannot be reused).
    pub connection_setup_us: u64,
    /// Probability that a client keeps its connection open (idle) across
    /// a think time instead of closing it after the page. TPC-W's RBE
    /// mostly re-connects; real browsers mostly persist — the default is
    /// a mixed population. Idle-open connections are what make long
    /// `KeepAliveTimeout`s expensive.
    pub keepalive_persist_p: f64,
    /// Apache base memory footprint (MiB).
    pub apache_base_mb: f64,
    /// Memory per Apache worker process (MiB).
    pub per_worker_mb: f64,
    /// Combined Tomcat + MySQL base footprint on the app/db VM (MiB),
    /// including the default InnoDB buffer pool.
    pub appdb_base_mb: f64,
    /// Memory per Tomcat thread (MiB).
    pub per_thread_mb: f64,
    /// Memory per live HTTP session (MiB).
    pub per_session_mb: f64,
    /// Memory per open DB connection (MiB).
    pub per_db_conn_mb: f64,
    /// CPU cost (µs) of forking one Apache worker.
    pub fork_cpu_us: u64,
    /// CPU cost (µs) of creating one Tomcat thread.
    pub thread_create_cpu_us: u64,
    /// App-tier CPU (µs) to build a session object that was missing or
    /// had expired.
    pub session_create_cpu_us: u64,
    /// Additive latency (ms) per unit of memory-pressure excess: a
    /// working set 1 "slowdown unit" over the allocation adds this much
    /// page-in wait to a request phase on that VM.
    pub swap_unit_ms: f64,
    /// Average disk time (ms) of one uncached page access at queue
    /// depth 1 (seek + rotation).
    pub disk_access_ms: f64,
    /// Page accesses per database query.
    pub accesses_per_query: f64,
    /// Size of the database's hot working set (MiB); the portion that
    /// does not fit in free guest memory misses to disk.
    pub db_working_set_mb: f64,
    /// Page cache available even under extreme memory pressure (MiB).
    pub min_cache_mb: f64,
    /// Miss-rate floor (cold pages, logging) even with a fully cached
    /// working set.
    pub min_miss_rate: f64,
    /// Elevator/NCQ gain: disk speedup = 1 + gain · ln(1 + depth).
    pub disk_elevator_gain: f64,
    /// Queue depth beyond which elevator gains stop accruing.
    pub disk_max_depth: f64,
    /// Worker processes/threads a pool restarts with after a
    /// reconfiguration (Apache `StartServers`).
    pub start_servers: u32,
    /// MySQL connection-pool size (fixed: the paper keeps MySQL at its
    /// defaults).
    pub db_connections: u32,
    /// Apache accept-queue (listen backlog) length.
    pub accept_backlog: u32,
    /// Seconds a refused client waits before retrying.
    pub retry_backoff_secs: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            demand_scale: 1.5,
            connection_setup_us: 2_000,
            keepalive_persist_p: 0.25,
            apache_base_mb: 150.0,
            per_worker_mb: 3.0,
            appdb_base_mb: 1_100.0,
            per_thread_mb: 1.2,
            per_session_mb: 0.15,
            per_db_conn_mb: 4.0,
            fork_cpu_us: 25_000,
            thread_create_cpu_us: 3_000,
            session_create_cpu_us: 8_000,
            swap_unit_ms: 300.0,
            disk_access_ms: 8.0,
            accesses_per_query: 3.0,
            db_working_set_mb: 3_000.0,
            min_cache_mb: 64.0,
            min_miss_rate: 0.03,
            disk_elevator_gain: 0.5,
            disk_max_depth: 32.0,
            start_servers: 16,
            db_connections: 100,
            accept_backlog: 511,
            retry_backoff_secs: 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let m = ModelParams::default();
        assert!(m.demand_scale > 0.0);
        assert!(m.per_worker_mb > 0.0);
        assert!(m.db_connections > 0);
        assert!(m.accept_backlog > 0);
        assert!(m.retry_backoff_secs > 0.0);
        // A full 600-worker Apache must overflow a small web VM — that
        // pressure is part of the MaxClients tradeoff.
        assert!(m.apache_base_mb + 600.0 * m.per_worker_mb > 1_024.0);
    }
}
