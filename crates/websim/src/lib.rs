//! Discrete-event simulator of a three-tier web system (Apache-like web
//! tier, Tomcat-like application tier, MySQL-like database tier) hosted
//! on virtual machines.
//!
//! This is the *system under tuning* of the RAC reproduction — the
//! simulated stand-in for the paper's physical Apache/Tomcat/MySQL
//! testbed. It implements, mechanistically, every channel through which
//! the eight Table-1 parameters affect response time:
//!
//! | Parameter | Mechanism in the simulator |
//! |---|---|
//! | `MaxClients` | cap on Apache worker pool: trades accept-queue delay against concurrency overhead + worker memory |
//! | `KeepAliveTimeout` | held workers block capacity across client think times, but reusing a connection skips TCP setup CPU |
//! | `Min/MaxSpareServers` | prefork pool ramp speed vs. fork churn |
//! | `maxThreads` | cap on app-tier concurrency reaching the colocated DB |
//! | session timeout | live session objects consume app/db VM memory; early expiry costs session re-creation CPU |
//! | `min/maxSpareThreads` | thread pool ramp vs. churn |
//!
//! Requests come from closed-loop TPC-W emulated browsers
//! ([`tpcw::Fleet`]); CPU time stretches with VM load and memory pressure
//! ([`vmstack::Vm::service_multiplier`]).
//!
//! See [`ThreeTierSystem`] for the main entry point and
//! [`measure_config`] for one-shot measurements.
//!
//! # Example
//!
//! ```
//! use simkernel::SimDuration;
//! use websim::{Param, ServerConfig, SystemSpec, ThreeTierSystem};
//!
//! let mut sys = ThreeTierSystem::new(SystemSpec::default().with_clients(100));
//! sys.set_config(ServerConfig::default().with(Param::MaxClients, 250).unwrap());
//! let sample = sys.run_interval(SimDuration::from_secs(300));
//! println!("mean response time: {:.1} ms", sample.mean_response_ms);
//! ```

mod config;
pub mod cpu;
pub mod disk;
mod metrics;
mod model;
pub mod pool;
mod system;

pub use config::{ConfigError, Param, ServerConfig};
pub use metrics::PerfSample;
pub use model::ModelParams;
pub use system::{measure_config, SystemSpec, ThreeTierSystem, Tier};
