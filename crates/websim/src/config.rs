//! The eight performance-critical configuration parameters of Table 1.

use std::error::Error;
use std::fmt;

/// One of the eight tunable parameters (Table 1 of the paper).
///
/// The first four live in the web tier (Apache prefork), the last four in
/// the application tier (Tomcat).
///
/// # Example
///
/// ```
/// use websim::Param;
///
/// assert_eq!(Param::MaxClients.range(), (5, 600));
/// assert_eq!(Param::KeepaliveTimeout.default_value(), 15);
/// assert_eq!(Param::ALL.len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Param {
    /// Apache `MaxClients`: maximum simultaneously serving worker
    /// processes.
    MaxClients,
    /// Apache `KeepAliveTimeout` in seconds: how long an idle connection
    /// holds its worker.
    KeepaliveTimeout,
    /// Apache `MinSpareServers`: lower bound on idle workers.
    MinSpareServers,
    /// Apache `MaxSpareServers`: upper bound on idle workers.
    MaxSpareServers,
    /// Tomcat `maxThreads`: maximum concurrently serving request threads.
    MaxThreads,
    /// Tomcat session timeout in minutes.
    SessionTimeout,
    /// Tomcat `minSpareThreads`.
    MinSpareThreads,
    /// Tomcat `maxSpareThreads`.
    MaxSpareThreads,
}

impl Param {
    /// All eight parameters in Table-1 order.
    pub const ALL: [Param; 8] = [
        Param::MaxClients,
        Param::KeepaliveTimeout,
        Param::MinSpareServers,
        Param::MaxSpareServers,
        Param::MaxThreads,
        Param::SessionTimeout,
        Param::MinSpareThreads,
        Param::MaxSpareThreads,
    ];

    /// Dense index in `0..8` matching [`Param::ALL`].
    pub fn index(self) -> usize {
        Param::ALL
            .iter()
            .position(|&p| p == self)
            .expect("param in ALL")
    }

    /// Inclusive `(low, high)` tuning range from Table 1.
    ///
    /// (The conference PDF's table drops trailing zeros; the ranges here
    /// are the standard Apache/Tomcat ones the authors describe in the
    /// surrounding text: MaxClients and MaxThreads span `[5, 600]`.)
    pub fn range(self) -> (u32, u32) {
        match self {
            Param::MaxClients => (5, 600),
            Param::KeepaliveTimeout => (1, 21),
            Param::MinSpareServers => (5, 85),
            Param::MaxSpareServers => (15, 95),
            Param::MaxThreads => (5, 600),
            Param::SessionTimeout => (1, 35),
            Param::MinSpareThreads => (5, 85),
            Param::MaxSpareThreads => (15, 95),
        }
    }

    /// Table-1 default value.
    pub fn default_value(self) -> u32 {
        match self {
            Param::MaxClients => 150,
            Param::KeepaliveTimeout => 15,
            Param::MinSpareServers => 5,
            Param::MaxSpareServers => 15,
            Param::MaxThreads => 200,
            Param::SessionTimeout => 30,
            Param::MinSpareThreads => 5,
            Param::MaxSpareThreads => 50,
        }
    }

    /// Name as it appears in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Param::MaxClients => "MaxClients",
            Param::KeepaliveTimeout => "Keepalive timeout",
            Param::MinSpareServers => "MinSpareServers",
            Param::MaxSpareServers => "MaxSpareServers",
            Param::MaxThreads => "MaxThreads",
            Param::SessionTimeout => "Session timeout",
            Param::MinSpareThreads => "minSpareThreads",
            Param::MaxSpareThreads => "maxSpareThreads",
        }
    }

    /// Which tier the parameter configures.
    pub fn tier(self) -> &'static str {
        match self {
            Param::MaxClients
            | Param::KeepaliveTimeout
            | Param::MinSpareServers
            | Param::MaxSpareServers => "web server",
            _ => "application server",
        }
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error raised when a [`ServerConfig`] value is outside its Table-1
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending parameter.
    pub param: Param,
    /// The rejected value.
    pub value: u32,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.param.range();
        write!(
            f,
            "{} = {} outside range [{lo}, {hi}]",
            self.param, self.value
        )
    }
}

impl Error for ConfigError {}

/// A complete setting of the eight tunable parameters — one *state* of
/// the RAC Markov decision process.
///
/// # Example
///
/// ```
/// use websim::{Param, ServerConfig};
///
/// let dflt = ServerConfig::default();
/// assert_eq!(dflt.get(Param::MaxClients), 150);
///
/// let tuned = dflt.with(Param::MaxClients, 400).unwrap();
/// assert_eq!(tuned.get(Param::MaxClients), 400);
/// assert!(dflt.with(Param::KeepaliveTimeout, 99).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerConfig {
    values: [u32; 8],
}

impl ServerConfig {
    /// Creates a configuration from raw values in [`Param::ALL`] order.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for the first out-of-range value.
    pub fn from_values(values: [u32; 8]) -> Result<Self, ConfigError> {
        for (param, &value) in Param::ALL.iter().zip(&values) {
            let (lo, hi) = param.range();
            if value < lo || value > hi {
                return Err(ConfigError {
                    param: *param,
                    value,
                });
            }
        }
        Ok(ServerConfig { values })
    }

    /// Raw values in [`Param::ALL`] order.
    pub fn values(&self) -> [u32; 8] {
        self.values
    }

    /// Reads one parameter.
    pub fn get(&self, param: Param) -> u32 {
        self.values[param.index()]
    }

    /// Returns a copy with one parameter changed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `value` is outside the parameter's
    /// range.
    pub fn with(&self, param: Param, value: u32) -> Result<Self, ConfigError> {
        let (lo, hi) = param.range();
        if value < lo || value > hi {
            return Err(ConfigError { param, value });
        }
        let mut values = self.values;
        values[param.index()] = value;
        Ok(ServerConfig { values })
    }

    /// `MaxClients`.
    pub fn max_clients(&self) -> u32 {
        self.get(Param::MaxClients)
    }

    /// Keep-alive timeout in seconds.
    pub fn keepalive_timeout_secs(&self) -> u32 {
        self.get(Param::KeepaliveTimeout)
    }

    /// `MinSpareServers`.
    pub fn min_spare_servers(&self) -> u32 {
        self.get(Param::MinSpareServers)
    }

    /// Effective `MaxSpareServers`: Apache forces it above
    /// `MinSpareServers` when misconfigured, and so do we.
    pub fn max_spare_servers(&self) -> u32 {
        self.get(Param::MaxSpareServers)
            .max(self.min_spare_servers() + 1)
    }

    /// Tomcat `maxThreads`.
    pub fn max_threads(&self) -> u32 {
        self.get(Param::MaxThreads)
    }

    /// Session timeout in minutes.
    pub fn session_timeout_mins(&self) -> u32 {
        self.get(Param::SessionTimeout)
    }

    /// `minSpareThreads`.
    pub fn min_spare_threads(&self) -> u32 {
        self.get(Param::MinSpareThreads)
    }

    /// Effective `maxSpareThreads` (forced above the minimum, as Tomcat
    /// does).
    pub fn max_spare_threads(&self) -> u32 {
        self.get(Param::MaxSpareThreads)
            .max(self.min_spare_threads() + 1)
    }
}

impl Default for ServerConfig {
    /// The Table-1 default configuration.
    fn default() -> Self {
        let mut values = [0u32; 8];
        for param in Param::ALL {
            values[param.index()] = param.default_value();
        }
        ServerConfig { values }
    }
}

impl fmt::Display for ServerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MaxClients={} KeepAlive={}s MinSpare={} MaxSpare={} MaxThreads={} SessionTimeout={}m minSpareT={} maxSpareT={}",
            self.max_clients(),
            self.keepalive_timeout_secs(),
            self.min_spare_servers(),
            self.get(Param::MaxSpareServers),
            self.max_threads(),
            self.session_timeout_mins(),
            self.min_spare_threads(),
            self.get(Param::MaxSpareThreads),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_are_table_1() {
        let c = ServerConfig::default();
        assert_eq!(c.max_clients(), 150);
        assert_eq!(c.keepalive_timeout_secs(), 15);
        assert_eq!(c.min_spare_servers(), 5);
        assert_eq!(c.get(Param::MaxSpareServers), 15);
        assert_eq!(c.max_threads(), 200);
        assert_eq!(c.session_timeout_mins(), 30);
        assert_eq!(c.min_spare_threads(), 5);
        assert_eq!(c.get(Param::MaxSpareThreads), 50);
    }

    #[test]
    fn defaults_are_in_range() {
        for p in Param::ALL {
            let (lo, hi) = p.range();
            let d = p.default_value();
            assert!(d >= lo && d <= hi, "{p} default {d} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn with_validates() {
        let c = ServerConfig::default();
        assert!(c.with(Param::MaxClients, 4).is_err());
        assert!(c.with(Param::MaxClients, 601).is_err());
        assert!(c.with(Param::MaxClients, 5).is_ok());
        assert!(c.with(Param::MaxClients, 600).is_ok());
    }

    #[test]
    fn from_values_reports_offender() {
        let mut v = ServerConfig::default().values();
        v[Param::SessionTimeout.index()] = 99;
        let err = ServerConfig::from_values(v).unwrap_err();
        assert_eq!(err.param, Param::SessionTimeout);
        assert_eq!(err.value, 99);
        assert!(err.to_string().contains("Session timeout"));
    }

    #[test]
    fn max_spare_forced_above_min() {
        let c = ServerConfig::default()
            .with(Param::MinSpareServers, 80)
            .unwrap()
            .with(Param::MaxSpareServers, 15)
            .unwrap();
        assert_eq!(c.max_spare_servers(), 81);
        let t = ServerConfig::default()
            .with(Param::MinSpareThreads, 60)
            .unwrap()
            .with(Param::MaxSpareThreads, 20)
            .unwrap();
        assert_eq!(t.max_spare_threads(), 61);
    }

    #[test]
    fn param_metadata() {
        assert_eq!(Param::MaxClients.tier(), "web server");
        assert_eq!(Param::MaxThreads.tier(), "application server");
        assert_eq!(Param::MaxClients.to_string(), "MaxClients");
        for (k, p) in Param::ALL.iter().enumerate() {
            assert_eq!(p.index(), k);
        }
    }

    #[test]
    fn display_mentions_all_values() {
        let s = ServerConfig::default().to_string();
        for needle in ["MaxClients=150", "KeepAlive=15s", "MaxThreads=200"] {
            assert!(s.contains(needle), "{s}");
        }
    }

    proptest! {
        #[test]
        fn prop_with_get_round_trip(idx in 0usize..8, step in 0u32..1000) {
            let p = Param::ALL[idx];
            let (lo, hi) = p.range();
            let v = lo + step % (hi - lo + 1);
            let c = ServerConfig::default().with(p, v).unwrap();
            prop_assert_eq!(c.get(p), v);
            // Other parameters untouched.
            for q in Param::ALL {
                if q != p {
                    prop_assert_eq!(c.get(q), q.default_value());
                }
            }
        }
    }
}
