//! Database disk model: FCFS service with elevator-scheduling gains.
//!
//! Mid-2000s TPC-W databases were disk-bound whenever the working set
//! outgrew the buffer pool / page cache — which is precisely what varies
//! across the paper's VM levels (4/3/2 GB). Two properties of rotating
//! disks matter for the configuration trade-offs:
//!
//! 1. **Cache misses cost seeks.** The fraction of queries that touch the
//!    disk grows as guest memory is consumed by threads and sessions
//!    (see [`crate::ModelParams`]).
//! 2. **Concurrency helps.** An elevator scheduler (and NCQ) reorders
//!    outstanding requests, so effective IOPS *improve* with queue depth.
//!    This is why a memory-starved VM prefers a *larger* `MaxClients`:
//!    admitted concurrency deepens the disk queue and raises throughput,
//!    while on a cache-warm VM the same concurrency only buys CPU
//!    overhead — the mechanism behind the paper's counter-intuitive
//!    Figure 2.

use simkernel::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A single disk serving aggregated I/O requests FCFS, with service times
/// that shrink as the queue deepens (elevator/NCQ effect).
///
/// # Example
///
/// ```
/// use simkernel::SimTime;
/// use websim::disk::Disk;
///
/// let mut disk = Disk::new(0.5, 16.0);
/// // An 18 ms I/O on an idle disk takes the full 18 ms.
/// let eta = disk.submit(SimTime::ZERO, 18.0, 7).unwrap();
/// assert_eq!(eta.as_micros(), 18_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Disk {
    /// Elevator gain coefficient: speedup = 1 + gain · ln(1 + depth).
    gain: f64,
    /// Depth beyond which no further speedup accrues.
    max_depth: f64,
    queue: VecDeque<(usize, f64)>,
    busy_with: Option<usize>,
}

impl Disk {
    /// Creates an idle disk.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is negative or `max_depth < 1`.
    pub fn new(gain: f64, max_depth: f64) -> Self {
        assert!(gain >= 0.0, "gain must be non-negative");
        assert!(max_depth >= 1.0, "max depth must be at least 1");
        Disk {
            gain,
            max_depth,
            queue: VecDeque::new(),
            busy_with: None,
        }
    }

    /// Outstanding operations (serving + queued).
    pub fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.busy_with.is_some())
    }

    /// Returns `true` when nothing is outstanding.
    pub fn is_idle(&self) -> bool {
        self.busy_with.is_none()
    }

    /// Throughput multiplier at the current queue depth (1.0 when only a
    /// single operation is outstanding).
    pub fn speedup(&self) -> f64 {
        let depth = (self.depth().max(1) as f64).min(self.max_depth);
        1.0 + self.gain * depth.ln()
    }

    /// Submits an aggregated I/O of `work_ms` (at depth-1 speed) tagged
    /// with `token`.
    ///
    /// Returns `Some(completion_time)` if the disk was idle and service
    /// starts immediately; `None` if the request queued behind others
    /// (its completion will be returned by a later
    /// [`finish`](Disk::finish)).
    ///
    /// # Panics
    ///
    /// Panics if `work_ms` is not positive and finite.
    pub fn submit(&mut self, now: SimTime, work_ms: f64, token: usize) -> Option<SimTime> {
        assert!(
            work_ms.is_finite() && work_ms > 0.0,
            "disk work must be positive"
        );
        if self.busy_with.is_none() {
            self.busy_with = Some(token);
            // Depth at service start includes this op.
            Some(now + self.service_time(work_ms))
        } else {
            self.queue.push_back((token, work_ms));
            None
        }
    }

    fn service_time(&self, work_ms: f64) -> SimDuration {
        SimDuration::from_millis_f64(work_ms / self.speedup())
    }

    /// Completes the in-service operation and starts the next queued one,
    /// if any. Returns the finished token and, when another operation
    /// starts, its token and completion time.
    ///
    /// # Panics
    ///
    /// Panics if the disk is idle.
    pub fn finish(&mut self, now: SimTime) -> (usize, Option<(usize, SimTime)>) {
        let done = self.busy_with.take().expect("finish on idle disk");
        if let Some((token, work_ms)) = self.queue.pop_front() {
            self.busy_with = Some(token);
            let eta = now + self.service_time(work_ms);
            (done, Some((token, eta)))
        } else {
            (done, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn idle_disk_serves_immediately() {
        let mut d = Disk::new(0.5, 16.0);
        let eta = d.submit(T0, 10.0, 1).unwrap();
        assert_eq!(eta, SimTime::from_millis(10));
        assert_eq!(d.depth(), 1);
    }

    #[test]
    fn busy_disk_queues() {
        let mut d = Disk::new(0.5, 16.0);
        d.submit(T0, 10.0, 1).unwrap();
        assert!(d.submit(T0, 10.0, 2).is_none());
        assert_eq!(d.depth(), 2);
        let (done, next) = d.finish(SimTime::from_millis(10));
        assert_eq!(done, 1);
        let (token, _eta) = next.unwrap();
        assert_eq!(token, 2);
    }

    #[test]
    fn deeper_queue_speeds_service() {
        let mut shallow = Disk::new(0.5, 16.0);
        shallow.submit(T0, 10.0, 0).unwrap();
        let t_shallow = shallow.finish(SimTime::from_millis(10));

        let mut deep = Disk::new(0.5, 16.0);
        deep.submit(T0, 10.0, 0).unwrap();
        for i in 1..10 {
            deep.submit(T0, 10.0, i);
        }
        // Second request starts with depth 9 outstanding: faster than 10 ms.
        let (_, next) = deep.finish(SimTime::from_millis(10));
        let (_, eta) = next.unwrap();
        assert!(
            eta < SimTime::from_millis(20),
            "elevator gain missing: {eta}"
        );
        let _ = t_shallow;
    }

    #[test]
    fn speedup_caps_at_max_depth() {
        let mut d = Disk::new(0.5, 4.0);
        for i in 0..100 {
            d.submit(T0, 1.0, i);
        }
        assert!((d.speedup() - (1.0 + 0.5 * 4.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn zero_gain_is_plain_fcfs() {
        let mut d = Disk::new(0.0, 16.0);
        d.submit(T0, 8.0, 0).unwrap();
        d.submit(T0, 8.0, 1);
        let (_, next) = d.finish(SimTime::from_millis(8));
        assert_eq!(next.unwrap().1, SimTime::from_millis(16));
    }

    #[test]
    #[should_panic(expected = "finish on idle disk")]
    fn finish_idle_panics() {
        Disk::new(0.5, 16.0).finish(T0);
    }

    proptest! {
        /// FIFO order: tokens complete in submission order.
        #[test]
        fn prop_fifo_order(works in proptest::collection::vec(0.5f64..20.0, 1..20)) {
            let mut d = Disk::new(0.5, 16.0);
            let mut completions = Vec::new();
            let mut eta = None;
            for (i, w) in works.iter().enumerate() {
                if let Some(e) = d.submit(T0, *w, i) {
                    eta = Some(e);
                }
            }
            let mut now = eta.unwrap();
            loop {
                let (done, next) = d.finish(now);
                completions.push(done);
                match next {
                    Some((_, e)) => now = e,
                    None => break,
                }
            }
            prop_assert_eq!(completions, (0..works.len()).collect::<Vec<_>>());
        }
    }
}
