//! Worker/thread pool mechanics shared by the Apache and Tomcat tiers.

/// Outcome of one maintenance tick of a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Maintenance {
    /// Workers spawned this tick.
    pub spawned: u32,
    /// Workers killed this tick.
    pub killed: u32,
}

/// An Apache-prefork-style pool of workers.
///
/// Workers are in one of three states: **busy** (serving a request),
/// **held** (kept alive by an idle keep-alive connection — Apache only)
/// or **idle** (spare). The pool grows and shrinks once per maintenance
/// tick toward the `[min_spare, max_spare]` idle band, doubling its spawn
/// batch while starved exactly like Apache's prefork MPM, and never
/// exceeds its hard cap (`MaxClients` / `maxThreads`).
///
/// # Example
///
/// ```
/// use websim::pool::WorkerPool;
///
/// let mut pool = WorkerPool::new(150, 5, 15, 10);
/// assert!(pool.try_acquire());           // an initial worker serves
/// assert_eq!(pool.busy(), 1);
/// pool.release();
/// let m = pool.maintain(0);              // idle band is respected
/// assert_eq!(m.killed, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    size: u32,
    busy: u32,
    held: u32,
    cap: u32,
    min_spare: u32,
    max_spare: u32,
    spawn_batch: u32,
}

/// Largest number of workers Apache will fork in one maintenance tick.
pub const MAX_SPAWN_BATCH: u32 = 32;

impl WorkerPool {
    /// Creates a pool with `initial` workers (clamped to `cap`).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: u32, min_spare: u32, max_spare: u32, initial: u32) -> Self {
        assert!(cap > 0, "pool cap must be positive");
        WorkerPool {
            size: initial.min(cap),
            busy: 0,
            held: 0,
            cap,
            min_spare,
            max_spare: max_spare.max(min_spare + 1),
            spawn_batch: 1,
        }
    }

    /// Total existing workers.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Workers currently serving requests.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Workers parked on keep-alive connections.
    pub fn held(&self) -> u32 {
        self.held
    }

    /// Spare workers available for new requests.
    pub fn idle(&self) -> u32 {
        self.size - self.busy - self.held
    }

    /// Hard cap on pool size.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Acquires an idle worker for a request. Returns `false` when none
    /// is available (the caller queues or refuses the request).
    pub fn try_acquire(&mut self) -> bool {
        if self.idle() > 0 {
            self.busy += 1;
            true
        } else {
            false
        }
    }

    /// Releases a busy worker back to the idle set.
    ///
    /// # Panics
    ///
    /// Panics if no worker is busy.
    pub fn release(&mut self) {
        assert!(self.busy > 0, "release without busy worker");
        self.busy -= 1;
    }

    /// Moves a busy worker into the keep-alive held state.
    ///
    /// # Panics
    ///
    /// Panics if no worker is busy.
    pub fn hold(&mut self) {
        assert!(self.busy > 0, "hold without busy worker");
        self.busy -= 1;
        self.held += 1;
    }

    /// A held worker's connection was reused: back to busy.
    ///
    /// # Panics
    ///
    /// Panics if no worker is held.
    pub fn unhold_to_busy(&mut self) {
        assert!(self.held > 0, "unhold without held worker");
        self.held -= 1;
        self.busy += 1;
    }

    /// A held worker's keep-alive expired: back to idle.
    ///
    /// # Panics
    ///
    /// Panics if no worker is held.
    pub fn unhold_to_idle(&mut self) {
        assert!(self.held > 0, "unhold without held worker");
        self.held -= 1;
    }

    /// Applies new limits (a runtime reconfiguration). Excess idle
    /// workers are killed immediately; busy/held workers finish
    /// naturally and the cap is enforced on future growth.
    ///
    /// Returns the number of workers killed.
    pub fn set_limits(&mut self, cap: u32, min_spare: u32, max_spare: u32) -> u32 {
        assert!(cap > 0, "pool cap must be positive");
        self.cap = cap;
        self.min_spare = min_spare;
        self.max_spare = max_spare.max(min_spare + 1);
        let mut killed = 0;
        while self.size > self.cap && self.idle() > 0 {
            self.size -= 1;
            killed += 1;
        }
        killed
    }

    /// A graceful restart (reconfiguration): the new worker generation
    /// starts at `start_servers` and ramps back up via maintenance.
    /// Busy and held workers survive (they finish their requests under
    /// the old generation).
    pub fn restart(&mut self, start_servers: u32) {
        let floor = self.busy + self.held;
        self.size = self.size.min(start_servers.max(floor));
        self.spawn_batch = 1;
    }

    /// One maintenance tick (Apache runs this once per second).
    ///
    /// `backlog` is the number of requests waiting for a worker; starved
    /// pools spawn `min(deficit, spawn_batch)` workers with the batch
    /// doubling each consecutive starved tick, and over-provisioned pools
    /// kill one excess idle worker per tick (Apache's gentle shrink).
    pub fn maintain(&mut self, backlog: u32) -> Maintenance {
        let mut result = Maintenance::default();
        // A reconfiguration may have lowered the cap below the current
        // size while workers were busy; drain the excess as they idle.
        if self.size > self.cap && self.idle() > 0 {
            let excess = (self.size - self.cap).min(self.idle());
            self.size -= excess;
            result.killed += excess;
        }
        let idle = self.idle();
        let deficit = (self.min_spare.saturating_sub(idle)).saturating_add(backlog);
        if deficit > 0 && self.size < self.cap {
            let spawn = deficit.min(self.spawn_batch).min(self.cap - self.size);
            self.size += spawn;
            result.spawned = spawn;
            self.spawn_batch = (self.spawn_batch * 2).min(MAX_SPAWN_BATCH);
        } else {
            self.spawn_batch = 1;
            if idle > self.max_spare {
                self.size -= 1;
                result.killed = 1;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn acquire_release_cycle() {
        let mut p = WorkerPool::new(10, 2, 5, 3);
        assert_eq!(p.idle(), 3);
        assert!(p.try_acquire());
        assert!(p.try_acquire());
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        assert_eq!(p.busy(), 3);
        p.release();
        assert_eq!(p.idle(), 1);
    }

    #[test]
    fn hold_blocks_capacity() {
        let mut p = WorkerPool::new(10, 2, 5, 2);
        assert!(p.try_acquire());
        p.hold();
        assert_eq!(p.held(), 1);
        assert_eq!(p.idle(), 1);
        assert!(p.try_acquire());
        assert!(!p.try_acquire(), "held worker must not serve new clients");
        p.unhold_to_busy();
        assert_eq!(p.busy(), 2);
        assert_eq!(p.held(), 0);
    }

    #[test]
    fn unhold_to_idle_frees_slot() {
        let mut p = WorkerPool::new(10, 2, 5, 1);
        assert!(p.try_acquire());
        p.hold();
        assert_eq!(p.idle(), 0);
        p.unhold_to_idle();
        assert_eq!(p.idle(), 1);
    }

    #[test]
    fn maintain_spawns_with_doubling() {
        let mut p = WorkerPool::new(100, 5, 10, 0);
        assert_eq!(p.maintain(50).spawned, 1);
        assert_eq!(p.maintain(50).spawned, 2);
        assert_eq!(p.maintain(50).spawned, 4);
        assert_eq!(p.maintain(50).spawned, 8);
        assert_eq!(p.maintain(50).spawned, 16);
        assert_eq!(
            p.maintain(50).spawned,
            32,
            "batch saturates at MAX_SPAWN_BATCH"
        );
    }

    #[test]
    fn maintain_respects_cap() {
        let mut p = WorkerPool::new(8, 5, 10, 0);
        let mut total = 0;
        for _ in 0..10 {
            total += p.maintain(100).spawned;
        }
        assert_eq!(total, 8);
        assert_eq!(p.size(), 8);
    }

    #[test]
    fn maintain_kills_excess_gently() {
        let mut p = WorkerPool::new(100, 2, 5, 20);
        let m = p.maintain(0);
        assert_eq!(m.killed, 1);
        assert_eq!(p.size(), 19);
        // Still over the spare band: another gentle kill.
        assert_eq!(p.maintain(0).killed, 1);
        assert_eq!(p.size(), 18);
    }

    #[test]
    fn maintain_batch_resets_when_satisfied() {
        let mut p = WorkerPool::new(1000, 5, 900, 0);
        p.maintain(500);
        p.maintain(500);
        p.maintain(500); // batch now 8
                         // Satisfy the pool: stop all demand.
        while p.idle() < 5 {
            p.maintain(0);
        }
        p.maintain(0);
        // Starve again: batch restarts at 1.
        let m = p.maintain(500);
        assert_eq!(m.spawned, 1);
    }

    #[test]
    fn set_limits_kills_idle_excess() {
        let mut p = WorkerPool::new(100, 2, 5, 50);
        for _ in 0..10 {
            assert!(p.try_acquire());
        }
        let killed = p.set_limits(20, 2, 5);
        assert_eq!(killed, 30);
        assert_eq!(p.size(), 20);
        assert_eq!(p.busy(), 10);
    }

    #[test]
    fn set_limits_never_kills_busy() {
        let mut p = WorkerPool::new(100, 2, 5, 50);
        for _ in 0..50 {
            assert!(p.try_acquire());
        }
        let killed = p.set_limits(10, 2, 5);
        assert_eq!(killed, 0);
        assert_eq!(p.size(), 50, "busy workers drain naturally");
        // Future maintenance shrinks as workers release.
        for _ in 0..50 {
            p.release();
        }
        let mut guard = 0;
        while p.size() > 10 && guard < 200 {
            let m = p.maintain(0);
            // While over cap, every idle excess above max_spare dies 1/tick…
            assert!(m.spawned == 0);
            guard += 1;
        }
        assert!(p.size() <= 10 + 5 + 1 || guard == 200);
    }

    #[test]
    fn max_spare_forced_above_min() {
        let p = WorkerPool::new(10, 5, 3, 0);
        assert_eq!(p.max_spare, 6);
    }

    #[test]
    #[should_panic(expected = "release without busy")]
    fn release_empty_panics() {
        WorkerPool::new(10, 1, 2, 0).release();
    }

    proptest! {
        /// Pool accounting never goes inconsistent under random operation
        /// sequences.
        #[test]
        fn prop_invariants_hold(ops in proptest::collection::vec(0u8..6, 0..300)) {
            let mut p = WorkerPool::new(20, 3, 8, 5);
            for op in ops {
                match op {
                    0 => { let _ = p.try_acquire(); }
                    1 => if p.busy() > 0 { p.release(); }
                    2 => if p.busy() > 0 { p.hold(); }
                    3 => if p.held() > 0 { p.unhold_to_busy(); }
                    4 => if p.held() > 0 { p.unhold_to_idle(); }
                    _ => { p.maintain(op as u32); }
                }
                prop_assert!(p.busy() + p.held() <= p.size());
                prop_assert_eq!(p.idle(), p.size() - p.busy() - p.held());
                prop_assert!(p.size() <= p.cap().max(p.busy() + p.held()));
            }
        }
    }
}
