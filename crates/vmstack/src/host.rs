//! Physical host and virtual machines.

use std::error::Error;
use std::fmt;

use crate::credit::{CreditScheduler, VmLoad};
use crate::memory::MemoryModel;

/// Identifier of a VM within its [`Host`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(usize);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Static resource specification of a VM.
///
/// # Example
///
/// ```
/// use vmstack::VmSpec;
///
/// let spec = VmSpec::new(4, 4096);
/// assert_eq!(spec.vcpus(), 4);
/// assert_eq!(spec.memory_mb(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmSpec {
    vcpus: u32,
    memory_mb: u64,
}

impl VmSpec {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics if either resource is zero.
    pub fn new(vcpus: u32, memory_mb: u64) -> Self {
        assert!(vcpus > 0, "a VM needs at least one vCPU");
        assert!(memory_mb > 0, "a VM needs memory");
        VmSpec { vcpus, memory_mb }
    }

    /// Number of virtual CPUs.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// Memory allocation in MiB.
    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }
}

/// Error raised by [`Host`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The requested VM memory exceeds what remains unallocated on the
    /// host (`requested`, `available` in MiB).
    InsufficientMemory {
        /// MiB requested by the new/updated spec.
        requested: u64,
        /// MiB still unallocated on the host.
        available: u64,
    },
    /// The VM id does not exist on this host.
    UnknownVm(VmId),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::InsufficientMemory {
                requested,
                available,
            } => {
                write!(f, "insufficient host memory: requested {requested} MiB, {available} MiB available")
            }
            HostError::UnknownVm(id) => write!(f, "unknown vm: {id}"),
        }
    }
}

impl Error for HostError {}

/// A virtual machine on a [`Host`].
///
/// The web-system simulator asks a VM for its
/// [`service_multiplier`](Vm::service_multiplier) — the factor by which
/// CPU demands stretch given current load — and otherwise treats the VM
/// as opaque, mirroring the paper's non-intrusive agent.
#[derive(Debug, Clone, PartialEq)]
pub struct Vm {
    id: VmId,
    spec: VmSpec,
    weight: f64,
    memory_model: MemoryModel,
    /// Effective cores granted by the host scheduler; defaults to the vCPU
    /// count and is refreshed by [`Host::rebalance`] under host contention.
    effective_cores: f64,
    /// Per-runnable-task concurrency overhead (context switches, cache
    /// pressure).
    concurrency_overhead: f64,
}

impl Vm {
    /// Identifier within the host.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Current resource specification.
    pub fn spec(&self) -> VmSpec {
        self.spec
    }

    /// Scheduler weight (Xen default 256).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Effective physical cores currently granted by the host.
    pub fn effective_cores(&self) -> f64 {
        self.effective_cores
    }

    /// CPU-time multiplier (≥ 1) when `runnable_tasks` tasks are runnable
    /// on this VM.
    ///
    /// Two effects compose multiplicatively:
    ///
    /// * **processor sharing** — with more runnable tasks than effective
    ///   cores, each task advances at `tasks / cores` of full speed;
    /// * **concurrency overhead** — every runnable task adds a small
    ///   per-task cost even below saturation (this makes huge worker pools
    ///   counter-productive, per the paper's Figure 2).
    pub fn cpu_multiplier(&self, runnable_tasks: f64) -> f64 {
        let tasks = runnable_tasks.max(0.0);
        let sharing = (tasks / self.effective_cores).max(1.0);
        let overhead = 1.0 + self.concurrency_overhead * tasks;
        sharing * overhead
    }

    /// Memory-pressure factor (≥ 1) for a guest working set of
    /// `used_memory_mb`; see [`MemoryModel::slowdown`]. Unlike
    /// [`cpu_multiplier`](Vm::cpu_multiplier) this models swapping, whose
    /// cost is I/O *waiting* — callers typically convert the excess over
    /// 1.0 into additive latency rather than stretching CPU time.
    pub fn memory_slowdown(&self, used_memory_mb: f64) -> f64 {
        self.memory_model
            .slowdown(used_memory_mb, self.spec.memory_mb as f64)
    }

    /// Combined latency multiplier: CPU sharing/overhead × memory
    /// pressure. A convenient single-factor summary for coarse models.
    pub fn service_multiplier(&self, runnable_tasks: f64, used_memory_mb: f64) -> f64 {
        self.cpu_multiplier(runnable_tasks) * self.memory_slowdown(used_memory_mb)
    }
}

/// A physical machine hosting VMs, in the style of the paper's testbed
/// (two quad-core Xeons, 8 GB memory, Xen 3.1).
///
/// Memory is partitioned (a VM's allocation is reserved); CPU is shared
/// by the [`CreditScheduler`]. See the [crate docs](crate) for an
/// end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct Host {
    scheduler: CreditScheduler,
    memory_mb: u64,
    vms: Vec<Vm>,
    memory_model: MemoryModel,
    concurrency_overhead: f64,
}

impl Host {
    /// Default per-task concurrency overhead used for new VMs.
    pub const DEFAULT_CONCURRENCY_OVERHEAD: f64 = 0.0015;

    /// Creates a host with `cores` physical cores and `memory_mb` MiB of
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if either resource is zero.
    pub fn new(cores: u32, memory_mb: u64) -> Self {
        assert!(
            cores > 0 && memory_mb > 0,
            "host resources must be positive"
        );
        Host {
            scheduler: CreditScheduler::new(cores as f64),
            memory_mb,
            vms: Vec::new(),
            memory_model: MemoryModel::default(),
            concurrency_overhead: Self::DEFAULT_CONCURRENCY_OVERHEAD,
        }
    }

    /// Overrides the memory-pressure model applied to newly created VMs.
    pub fn set_memory_model(&mut self, model: MemoryModel) {
        self.memory_model = model;
    }

    /// Overrides the per-task concurrency overhead applied to newly
    /// created VMs.
    ///
    /// # Panics
    ///
    /// Panics if `overhead` is negative or non-finite.
    pub fn set_concurrency_overhead(&mut self, overhead: f64) {
        assert!(overhead.is_finite() && overhead >= 0.0);
        self.concurrency_overhead = overhead;
    }

    /// Total host memory in MiB.
    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// MiB not yet reserved by any VM.
    pub fn available_memory_mb(&self) -> u64 {
        let used: u64 = self.vms.iter().map(|vm| vm.spec.memory_mb()).sum();
        self.memory_mb.saturating_sub(used)
    }

    /// Creates a VM with the Xen-default weight of 256.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::InsufficientMemory`] if the spec does not fit
    /// in the remaining host memory. vCPUs may be overcommitted (as Xen
    /// allows); memory may not.
    pub fn create_vm(&mut self, spec: VmSpec) -> Result<VmId, HostError> {
        let available = self.available_memory_mb();
        if spec.memory_mb() > available {
            return Err(HostError::InsufficientMemory {
                requested: spec.memory_mb(),
                available,
            });
        }
        let id = VmId(self.vms.len());
        self.vms.push(Vm {
            id,
            spec,
            weight: 256.0,
            memory_model: self.memory_model,
            effective_cores: spec.vcpus() as f64,
            concurrency_overhead: self.concurrency_overhead,
        });
        Ok(id)
    }

    /// Immutable access to a VM.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this host.
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.0]
    }

    /// Number of VMs on the host.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Iterates over all VMs.
    pub fn iter(&self) -> impl Iterator<Item = &Vm> {
        self.vms.iter()
    }

    /// Changes a VM's resource allocation at runtime — the paper's VM
    /// reconfiguration events (e.g. Level-1 → Level-3).
    ///
    /// # Errors
    ///
    /// Returns [`HostError::UnknownVm`] for foreign ids and
    /// [`HostError::InsufficientMemory`] if the new memory size does not
    /// fit alongside the other VMs.
    pub fn reallocate(&mut self, id: VmId, spec: VmSpec) -> Result<(), HostError> {
        if id.0 >= self.vms.len() {
            return Err(HostError::UnknownVm(id));
        }
        let others: u64 = self
            .vms
            .iter()
            .filter(|vm| vm.id != id)
            .map(|vm| vm.spec.memory_mb())
            .sum();
        let available = self.memory_mb.saturating_sub(others);
        if spec.memory_mb() > available {
            return Err(HostError::InsufficientMemory {
                requested: spec.memory_mb(),
                available,
            });
        }
        let vm = &mut self.vms[id.0];
        vm.spec = spec;
        vm.effective_cores = spec.vcpus() as f64;
        Ok(())
    }

    /// Re-runs the credit scheduler for the given per-VM CPU demands (in
    /// cores' worth of runnable work) and updates each VM's
    /// [`effective_cores`](Vm::effective_cores).
    ///
    /// # Panics
    ///
    /// Panics if `demands.len()` differs from [`Host::vm_count`].
    pub fn rebalance(&mut self, demands: &[f64]) {
        assert_eq!(demands.len(), self.vms.len(), "one demand per VM required");
        let loads: Vec<VmLoad> = self
            .vms
            .iter()
            .zip(demands)
            .map(|(vm, &demand)| VmLoad {
                weight: vm.weight,
                cap: vm.spec.vcpus() as f64,
                demand,
            })
            .collect();
        let shares = self.scheduler.allocate(&loads);
        for (vm, share) in self.vms.iter_mut().zip(shares) {
            // A VM with no current demand still schedules instantly when
            // work arrives, so floor at a small fraction of one core.
            vm.effective_cores = share.max(0.25).min(vm.spec.vcpus() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_inspect() {
        let mut host = Host::new(8, 8192);
        let id = host.create_vm(VmSpec::new(4, 4096)).unwrap();
        assert_eq!(host.vm(id).spec().vcpus(), 4);
        assert_eq!(host.available_memory_mb(), 4096);
        assert_eq!(host.vm_count(), 1);
        assert_eq!(id.to_string(), "vm0");
    }

    #[test]
    fn memory_is_partitioned() {
        let mut host = Host::new(8, 4096);
        host.create_vm(VmSpec::new(2, 3072)).unwrap();
        let err = host.create_vm(VmSpec::new(2, 2048)).unwrap_err();
        assert_eq!(
            err,
            HostError::InsufficientMemory {
                requested: 2048,
                available: 1024
            }
        );
        assert!(err.to_string().contains("2048"));
    }

    #[test]
    fn vcpus_can_overcommit() {
        let mut host = Host::new(4, 8192);
        host.create_vm(VmSpec::new(4, 1024)).unwrap();
        assert!(host.create_vm(VmSpec::new(4, 1024)).is_ok());
    }

    #[test]
    fn reallocate_changes_spec() {
        let mut host = Host::new(8, 8192);
        let id = host.create_vm(VmSpec::new(4, 4096)).unwrap();
        host.reallocate(id, VmSpec::new(2, 2048)).unwrap();
        assert_eq!(host.vm(id).spec(), VmSpec::new(2, 2048));
        assert_eq!(host.available_memory_mb(), 6144);
    }

    #[test]
    fn reallocate_checks_memory_against_others() {
        let mut host = Host::new(8, 8192);
        let a = host.create_vm(VmSpec::new(2, 4096)).unwrap();
        let _b = host.create_vm(VmSpec::new(2, 4096)).unwrap();
        assert!(matches!(
            host.reallocate(a, VmSpec::new(2, 5000)),
            Err(HostError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn reallocate_unknown_vm_errors() {
        let mut host = Host::new(8, 8192);
        assert_eq!(
            host.reallocate(VmId(3), VmSpec::new(1, 128)),
            Err(HostError::UnknownVm(VmId(3)))
        );
    }

    #[test]
    fn service_multiplier_increases_with_load() {
        let mut host = Host::new(8, 8192);
        let id = host.create_vm(VmSpec::new(4, 4096)).unwrap();
        let vm = host.vm(id);
        let light = vm.service_multiplier(1.0, 512.0);
        let heavy = vm.service_multiplier(100.0, 512.0);
        assert!(light >= 1.0);
        assert!(heavy > 5.0 * light);
    }

    #[test]
    fn service_multiplier_memory_pressure() {
        let mut host = Host::new(8, 8192);
        let id = host.create_vm(VmSpec::new(4, 1024)).unwrap();
        let vm = host.vm(id);
        assert!(vm.service_multiplier(1.0, 2048.0) > vm.service_multiplier(1.0, 256.0));
    }

    #[test]
    fn stronger_vm_is_faster_under_same_load() {
        let mut host = Host::new(16, 8192);
        let strong = host
            .create_vm(crate::ResourceLevel::Level1.vm_spec())
            .unwrap();
        let weak = host
            .create_vm(crate::ResourceLevel::Level3.vm_spec())
            .unwrap();
        let load = 32.0;
        assert!(
            host.vm(strong).service_multiplier(load, 1024.0)
                < host.vm(weak).service_multiplier(load, 1024.0)
        );
    }

    #[test]
    fn rebalance_splits_under_contention() {
        let mut host = Host::new(4, 8192);
        let a = host.create_vm(VmSpec::new(4, 2048)).unwrap();
        let b = host.create_vm(VmSpec::new(4, 2048)).unwrap();
        host.rebalance(&[4.0, 4.0]);
        assert!((host.vm(a).effective_cores() - 2.0).abs() < 1e-9);
        assert!((host.vm(b).effective_cores() - 2.0).abs() < 1e-9);
        // Idle neighbour: full vCPU allocation again.
        host.rebalance(&[4.0, 0.0]);
        assert!((host.vm(a).effective_cores() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one demand per VM")]
    fn rebalance_wrong_len_panics() {
        let mut host = Host::new(4, 8192);
        host.create_vm(VmSpec::new(1, 128)).unwrap();
        host.rebalance(&[]);
    }
}
