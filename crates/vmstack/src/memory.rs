//! Guest-memory pressure model.
//!
//! Apache worker processes, Tomcat threads and HTTP sessions all consume
//! guest memory. While the working set fits in the VM allocation the cost
//! is zero; once it spills, the guest starts swapping and per-request
//! latency degrades super-linearly. This is the mechanism that makes
//! over-sized pools (high MaxClients / MaxThreads / long session
//! timeouts) catastrophic on small VMs in the paper's Level-3 scenarios.

/// Maps a working-set size against a memory allocation to a latency
/// multiplier (≥ 1).
///
/// The model is piecewise: free below `pressure_knee` (fraction of the
/// allocation), a gentle ramp between the knee and 100% (page-cache
/// eviction), then a quadratic swap penalty beyond the allocation.
///
/// # Example
///
/// ```
/// use vmstack::MemoryModel;
///
/// let m = MemoryModel::default();
/// assert_eq!(m.slowdown(1024.0, 4096.0), 1.0);            // plenty of room
/// assert!(m.slowdown(4000.0, 4096.0) > 1.0);              // near the limit
/// assert!(m.slowdown(6144.0, 4096.0) > m.slowdown(4300.0, 4096.0)); // swapping
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    pressure_knee: f64,
    ramp_slope: f64,
    swap_penalty: f64,
}

impl MemoryModel {
    /// Creates a model.
    ///
    /// * `pressure_knee` — fraction of the allocation below which memory is
    ///   free of cost (e.g. `0.85`).
    /// * `ramp_slope` — extra slowdown accumulated across the knee→100%
    ///   band (e.g. `0.5` means 1.5× right at 100% utilization).
    /// * `swap_penalty` — quadratic coefficient for overshoot beyond the
    ///   allocation (e.g. `8.0` means a 50% overshoot costs `1 + ramp +
    ///   8·0.25` ≈ 3.5×).
    ///
    /// # Panics
    ///
    /// Panics if `pressure_knee` is outside `(0, 1]` or either slope is
    /// negative.
    pub fn new(pressure_knee: f64, ramp_slope: f64, swap_penalty: f64) -> Self {
        assert!(
            pressure_knee > 0.0 && pressure_knee <= 1.0,
            "knee must be in (0,1]"
        );
        assert!(
            ramp_slope >= 0.0 && swap_penalty >= 0.0,
            "slopes must be non-negative"
        );
        MemoryModel {
            pressure_knee,
            ramp_slope,
            swap_penalty,
        }
    }

    /// Latency multiplier for a working set of `used_mb` on an allocation
    /// of `allocated_mb`.
    ///
    /// Returns `1.0` when usage is below the pressure knee; values grow
    /// continuously and monotonically with `used_mb`.
    pub fn slowdown(&self, used_mb: f64, allocated_mb: f64) -> f64 {
        if allocated_mb <= 0.0 {
            return f64::INFINITY;
        }
        let used = used_mb.max(0.0);
        let utilization = used / allocated_mb;
        if utilization <= self.pressure_knee {
            return 1.0;
        }
        if utilization <= 1.0 {
            // Linear ramp from 1.0 at the knee to 1.0 + ramp_slope at 100%.
            let t = (utilization - self.pressure_knee) / (1.0 - self.pressure_knee);
            return 1.0 + self.ramp_slope * t;
        }
        // Swapping: quadratic in the overshoot fraction.
        let overshoot = utilization - 1.0;
        1.0 + self.ramp_slope + self.swap_penalty * overshoot * overshoot
    }
}

impl Default for MemoryModel {
    /// A model calibrated so that moderate overshoot (~25%) roughly
    /// doubles latency — in line with the qualitative behaviour of a
    /// swapping guest.
    fn default() -> Self {
        MemoryModel::new(0.85, 0.5, 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn below_knee_is_free() {
        let m = MemoryModel::default();
        assert_eq!(m.slowdown(0.0, 4096.0), 1.0);
        assert_eq!(m.slowdown(3400.0, 4096.0), 1.0);
    }

    #[test]
    fn ramp_reaches_configured_value_at_full() {
        let m = MemoryModel::new(0.8, 0.5, 4.0);
        assert!((m.slowdown(4096.0, 4096.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn swap_is_quadratic() {
        let m = MemoryModel::new(0.8, 0.0, 4.0);
        let s25 = m.slowdown(1.25 * 4096.0, 4096.0);
        let s50 = m.slowdown(1.5 * 4096.0, 4096.0);
        assert!((s25 - 1.25).abs() < 1e-9);
        assert!((s50 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_allocation_is_infinite() {
        let m = MemoryModel::default();
        assert!(m.slowdown(1.0, 0.0).is_infinite());
    }

    #[test]
    fn negative_usage_clamped() {
        let m = MemoryModel::default();
        assert_eq!(m.slowdown(-100.0, 1024.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "knee")]
    fn bad_knee_panics() {
        MemoryModel::new(1.5, 0.0, 0.0);
    }

    proptest! {
        #[test]
        fn prop_monotone_in_usage(alloc in 128.0f64..8192.0, a in 0.0f64..12000.0, b in 0.0f64..12000.0) {
            let m = MemoryModel::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.slowdown(lo, alloc) <= m.slowdown(hi, alloc) + 1e-12);
        }

        #[test]
        fn prop_at_least_one(alloc in 128.0f64..8192.0, used in 0.0f64..16000.0) {
            let m = MemoryModel::default();
            prop_assert!(m.slowdown(used, alloc) >= 1.0);
        }

        #[test]
        fn prop_more_memory_never_hurts(used in 0.0f64..8000.0, a in 512.0f64..4096.0, b in 512.0f64..4096.0) {
            let m = MemoryModel::default();
            let (small, large) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.slowdown(used, large) <= m.slowdown(used, small) + 1e-12);
        }
    }
}
