//! Proportional-share CPU scheduling in the style of Xen's credit
//! scheduler.
//!
//! The real credit scheduler hands out CPU "credits" to VMs in proportion
//! to their weights and caps each VM at its configured ceiling. At the
//! timescales the RAC agent observes (minutes), that behaviour converges
//! to a weighted max-min fair allocation of physical cores, which is what
//! [`CreditScheduler::allocate`] computes directly via water-filling.

/// One VM's scheduling parameters and demand, as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmLoad {
    /// Proportional-share weight (Xen default: 256).
    pub weight: f64,
    /// Upper bound on cores this VM may consume (its vCPU count, or a
    /// lower administrative cap).
    pub cap: f64,
    /// Cores' worth of runnable work the VM currently wants.
    pub demand: f64,
}

/// Weighted max-min fair allocator of physical cores among VMs.
///
/// # Example
///
/// ```
/// use vmstack::CreditScheduler;
/// use vmstack::credit_loads;
///
/// // Two equal-weight VMs both want 3 cores of a 4-core host capped at 4 vCPUs:
/// let shares = CreditScheduler::new(4.0).allocate(&credit_loads(&[(256.0, 4.0, 3.0), (256.0, 4.0, 3.0)]));
/// assert!((shares[0] - 2.0).abs() < 1e-9);
/// assert!((shares[1] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditScheduler {
    cores: f64,
}

impl CreditScheduler {
    /// Creates a scheduler for a host with `cores` physical cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive and finite.
    pub fn new(cores: f64) -> Self {
        assert!(
            cores.is_finite() && cores > 0.0,
            "host must have positive core count"
        );
        CreditScheduler { cores }
    }

    /// Physical cores managed by this scheduler.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// Computes each VM's core allocation.
    ///
    /// The result is the weighted max-min fair share: no VM gets more than
    /// `min(cap, demand)`, the total never exceeds the host's cores, and
    /// spare capacity left by satisfied VMs is redistributed to the rest
    /// in proportion to their weights.
    pub fn allocate(&self, vms: &[VmLoad]) -> Vec<f64> {
        let n = vms.len();
        let mut shares = vec![0.0; n];
        if n == 0 {
            return shares;
        }
        let limit: Vec<f64> = vms.iter().map(|v| v.cap.min(v.demand).max(0.0)).collect();
        let mut remaining = self.cores;
        let mut active: Vec<usize> = (0..n)
            .filter(|&i| limit[i] > 0.0 && vms[i].weight > 0.0)
            .collect();

        // Water-filling: repeatedly give every unsatisfied VM its weighted
        // share; VMs whose limit is reached leave the pool and release the
        // excess. Terminates in ≤ n rounds.
        while !active.is_empty() && remaining > 1e-12 {
            let total_weight: f64 = active.iter().map(|&i| vms[i].weight).sum();
            let mut satisfied = Vec::new();
            let mut consumed = 0.0;
            for &i in &active {
                let fair = remaining * vms[i].weight / total_weight;
                let want = limit[i] - shares[i];
                if want <= fair + 1e-12 {
                    shares[i] = limit[i];
                    consumed += want;
                    satisfied.push(i);
                }
            }
            if satisfied.is_empty() {
                // Nobody is capped below their fair share: hand out the
                // remainder proportionally and stop.
                for &i in &active {
                    shares[i] += remaining * vms[i].weight / total_weight;
                }
                remaining = 0.0;
            } else {
                remaining -= consumed;
                active.retain(|i| !satisfied.contains(i));
            }
        }
        shares
    }
}

/// Convenience constructor of [`VmLoad`] slices from `(weight, cap,
/// demand)` tuples, mainly for tests and doc examples.
pub fn loads(tuples: &[(f64, f64, f64)]) -> Vec<VmLoad> {
    tuples
        .iter()
        .map(|&(weight, cap, demand)| VmLoad {
            weight,
            cap,
            demand,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn total(shares: &[f64]) -> f64 {
        shares.iter().sum()
    }

    #[test]
    fn single_vm_gets_min_of_cap_demand_cores() {
        let s = CreditScheduler::new(8.0);
        assert_eq!(s.allocate(&loads(&[(256.0, 4.0, 10.0)]))[0], 4.0);
        assert_eq!(s.allocate(&loads(&[(256.0, 4.0, 2.0)]))[0], 2.0);
        assert_eq!(s.allocate(&loads(&[(256.0, 16.0, 16.0)]))[0], 8.0);
    }

    #[test]
    fn equal_weights_split_evenly_under_contention() {
        let s = CreditScheduler::new(4.0);
        let shares = s.allocate(&loads(&[(256.0, 4.0, 4.0), (256.0, 4.0, 4.0)]));
        assert!((shares[0] - 2.0).abs() < 1e-9);
        assert!((shares[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_split() {
        let s = CreditScheduler::new(6.0);
        let shares = s.allocate(&loads(&[(512.0, 6.0, 6.0), (256.0, 6.0, 6.0)]));
        assert!((shares[0] - 4.0).abs() < 1e-9);
        assert!((shares[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spare_capacity_redistributes() {
        // VM 0 only wants 1 core; VM 1 should get the rest up to its cap.
        let s = CreditScheduler::new(8.0);
        let shares = s.allocate(&loads(&[(256.0, 8.0, 1.0), (256.0, 8.0, 10.0)]));
        assert!((shares[0] - 1.0).abs() < 1e-9);
        assert!((shares[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn caps_are_respected() {
        let s = CreditScheduler::new(8.0);
        let shares = s.allocate(&loads(&[(256.0, 2.0, 10.0), (256.0, 3.0, 10.0)]));
        assert!(shares[0] <= 2.0 + 1e-9);
        assert!(shares[1] <= 3.0 + 1e-9);
    }

    #[test]
    fn zero_demand_gets_zero() {
        let s = CreditScheduler::new(8.0);
        let shares = s.allocate(&loads(&[(256.0, 4.0, 0.0), (256.0, 4.0, 4.0)]));
        assert_eq!(shares[0], 0.0);
        assert_eq!(shares[1], 4.0);
    }

    #[test]
    fn empty_input_ok() {
        assert!(CreditScheduler::new(4.0).allocate(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive core count")]
    fn zero_cores_panics() {
        CreditScheduler::new(0.0);
    }

    proptest! {
        /// Conservation and feasibility: allocations are non-negative,
        /// within each VM's limit, and never exceed host capacity.
        #[test]
        fn prop_feasible(
            cores in 1.0f64..64.0,
            tuples in proptest::collection::vec((1.0f64..512.0, 0.0f64..16.0, 0.0f64..32.0), 0..8),
        ) {
            let s = CreditScheduler::new(cores);
            let vms = loads(&tuples);
            let shares = s.allocate(&vms);
            prop_assert_eq!(shares.len(), vms.len());
            for (share, vm) in shares.iter().zip(&vms) {
                prop_assert!(*share >= -1e-9);
                prop_assert!(*share <= vm.cap.min(vm.demand) + 1e-6);
            }
            prop_assert!(total(&shares) <= cores + 1e-6);
        }

        /// Work conservation: if total demand exceeds capacity, the host
        /// is fully used (up to caps).
        #[test]
        fn prop_work_conserving(
            cores in 1.0f64..16.0,
            demands in proptest::collection::vec(0.5f64..8.0, 1..6),
        ) {
            let tuples: Vec<(f64, f64, f64)> = demands.iter().map(|&d| (256.0, 8.0, d)).collect();
            let s = CreditScheduler::new(cores);
            let shares = s.allocate(&loads(&tuples));
            let want: f64 = demands.iter().sum::<f64>();
            let expected = want.min(cores);
            prop_assert!((total(&shares) - expected).abs() < 1e-6,
                "allocated {} expected {}", total(&shares), expected);
        }
    }
}
