//! Virtualization substrate model for the RAC reproduction.
//!
//! The paper hosts the three-tier website on Xen 3.1 VMs and evaluates how
//! the web system must be *re*-configured when the VM resources change
//! (Levels 1–3: 4/3/2 virtual CPUs and 4/3/2 GB of memory). RAC itself
//! never looks inside the hypervisor — it only observes application-level
//! response time — so what this substrate must capture is the *causal
//! channels* through which VM resources shape that response time:
//!
//! 1. **CPU capacity** — a VM's runnable tasks share its virtual CPUs;
//!    the host's physical cores are shared between VMs by a
//!    credit-scheduler-style proportional-share policy
//!    ([`CreditScheduler`]).
//! 2. **Concurrency overhead** — beyond the number of vCPUs, each extra
//!    runnable task adds context-switch and cache-pressure cost, which is
//!    what makes "more MaxClients" eventually *hurt* processing time (the
//!    paper's Figure 2 counter-intuition).
//! 3. **Memory pressure** — worker processes, threads and sessions consume
//!    guest memory; overshooting the VM allocation swaps, degrading
//!    latency super-linearly ([`MemoryModel`]).
//!
//! [`Vm::service_multiplier`] folds all three into a single factor the
//! web-system simulator multiplies into every CPU demand.
//!
//! # Example
//!
//! ```
//! use vmstack::{Host, ResourceLevel, VmSpec};
//!
//! let mut host = Host::new(8, 8192);
//! let web = host.create_vm(VmSpec::new(2, 2048)).unwrap();
//! let app_db = host.create_vm(ResourceLevel::Level1.vm_spec()).unwrap();
//!
//! // A lightly loaded VM runs at full speed…
//! let fast = host.vm(app_db).service_multiplier(2.0, 1024.0);
//! // …a heavily loaded one is slower per unit of work.
//! let slow = host.vm(app_db).service_multiplier(64.0, 1024.0);
//! assert!(slow > fast);
//!
//! // Reconfigure at runtime (e.g. Level-1 -> Level-3), paper Section 2.2.
//! host.reallocate(app_db, ResourceLevel::Level3.vm_spec()).unwrap();
//! assert_eq!(host.vm(app_db).spec().vcpus(), 2);
//! # let _ = web;
//! ```

mod credit;
mod host;
mod memory;

pub use credit::{loads as credit_loads, CreditScheduler, VmLoad};
pub use host::{Host, HostError, Vm, VmId, VmSpec};
pub use memory::MemoryModel;

/// The three VM resource-provisioning levels used throughout the paper's
/// evaluation (Section 2.2): Level-1 is the most powerful.
///
/// # Example
///
/// ```
/// use vmstack::ResourceLevel;
///
/// let spec = ResourceLevel::Level2.vm_spec();
/// assert_eq!(spec.vcpus(), 3);
/// assert_eq!(spec.memory_mb(), 3072);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceLevel {
    /// 4 virtual CPUs, 4 GB memory.
    Level1,
    /// 3 virtual CPUs, 3 GB memory.
    Level2,
    /// 2 virtual CPUs, 2 GB memory.
    Level3,
}

impl ResourceLevel {
    /// All levels, strongest first.
    pub const ALL: [ResourceLevel; 3] = [
        ResourceLevel::Level1,
        ResourceLevel::Level2,
        ResourceLevel::Level3,
    ];

    /// The VM specification for this level.
    pub fn vm_spec(self) -> VmSpec {
        match self {
            ResourceLevel::Level1 => VmSpec::new(4, 4096),
            ResourceLevel::Level2 => VmSpec::new(3, 3072),
            ResourceLevel::Level3 => VmSpec::new(2, 2048),
        }
    }

    /// Short label used in tables and figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ResourceLevel::Level1 => "Level-1",
            ResourceLevel::Level2 => "Level-2",
            ResourceLevel::Level3 => "Level-3",
        }
    }
}

impl std::fmt::Display for ResourceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_paper() {
        assert_eq!(ResourceLevel::Level1.vm_spec(), VmSpec::new(4, 4096));
        assert_eq!(ResourceLevel::Level2.vm_spec(), VmSpec::new(3, 3072));
        assert_eq!(ResourceLevel::Level3.vm_spec(), VmSpec::new(2, 2048));
    }

    #[test]
    fn level_ordering_strongest_first() {
        assert!(ResourceLevel::Level1 < ResourceLevel::Level3);
        assert_eq!(ResourceLevel::ALL[0], ResourceLevel::Level1);
    }

    #[test]
    fn display_labels() {
        assert_eq!(ResourceLevel::Level2.to_string(), "Level-2");
    }
}
