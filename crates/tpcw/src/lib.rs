//! TPC-W-style workload generation for the RAC reproduction.
//!
//! The paper evaluates RAC with the TPC-W online-bookstore benchmark,
//! whose three standard traffic mixes — **browsing**, **shopping** and
//! **ordering** — stress a three-tier website in markedly different ways
//! (browsing is read-heavy on the catalogue; ordering is session- and
//! transaction-heavy). The RAC evaluation depends only on those relative
//! pressures, not on the exact bytes of the reference implementation, so
//! this crate models:
//!
//! * the **14 TPC-W web interactions** ([`Interaction`]) with per-tier CPU
//!   demand profiles ([`DemandProfile`]),
//! * the **three mixes** ([`Mix`]) as customer-behaviour Markov chains
//!   ([`MixMatrix`]) whose stationary browse/order ratios follow the
//!   TPC-W targets (≈95/5, ≈80/20, ≈50/50),
//! * **emulated browsers** ([`Browser`], [`Fleet`]) with exponential think
//!   times (mean 7 s, capped at 70 s per the TPC-W spec) and geometric
//!   session lengths.
//!
//! # Example
//!
//! Drive one emulated browser through a session:
//!
//! ```
//! use simkernel::Pcg64;
//! use tpcw::{Browser, Mix};
//!
//! let mut rng = Pcg64::seed_from_u64(1);
//! let mut eb = Browser::new(0, Mix::Shopping);
//! let think = eb.think_time(&mut rng);
//! assert!(think.as_secs_f64() <= 70.0);
//! let req = eb.next_request(&mut rng);
//! assert_eq!(req.browser, 0);
//! println!("{}: {:?}", req.session, req.interaction);
//! ```

mod browser;
mod interaction;
mod mix;

pub use browser::{
    Browser, Fleet, Request, SessionId, ThinkDist, MAX_THINK_TIME_SECS, MEAN_SESSION_LENGTH,
    MEAN_THINK_TIME_SECS,
};
pub use interaction::{DemandProfile, Interaction};
pub use mix::{Mix, MixMatrix};
