//! The three TPC-W traffic mixes as customer-behaviour Markov chains.

use simkernel::Pcg64;

use crate::interaction::Interaction;

/// One of the three standard TPC-W traffic mixes.
///
/// TPC-W defines each mix by a customer-behaviour transition matrix whose
/// stationary distribution splits browse-class vs order-class requests
/// roughly 95/5 (browsing), 80/20 (shopping) and 50/50 (ordering). The
/// exact reference matrices are reproduced here in spirit: we build each
/// [`MixMatrix`] from the class split plus within-class popularity
/// weights, which preserves the tier-pressure profile the RAC evaluation
/// depends on.
///
/// # Example
///
/// ```
/// use tpcw::Mix;
///
/// let m = Mix::Browsing.matrix();
/// let stationary = m.stationary_distribution();
/// let browse: f64 = tpcw::Interaction::ALL.iter()
///     .filter(|i| i.is_browse())
///     .map(|i| stationary[i.index()])
///     .sum();
/// assert!((browse - 0.95).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mix {
    /// ≈95% browse / 5% order.
    Browsing,
    /// ≈80% browse / 20% order (the TPC-W default).
    Shopping,
    /// ≈50% browse / 50% order — the most write- and session-heavy mix.
    Ordering,
}

impl Mix {
    /// All mixes in the order the paper lists them (Table 2 uses
    /// shopping, ordering, browsing).
    pub const ALL: [Mix; 3] = [Mix::Browsing, Mix::Shopping, Mix::Ordering];

    /// Fraction of order-class interactions in this mix's stationary
    /// behaviour.
    pub fn order_fraction(self) -> f64 {
        match self {
            Mix::Browsing => 0.05,
            Mix::Shopping => 0.20,
            Mix::Ordering => 0.50,
        }
    }

    /// Short label used in tables and figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Mix::Browsing => "browsing",
            Mix::Shopping => "shopping",
            Mix::Ordering => "ordering",
        }
    }

    /// This mix's transition matrix.
    pub fn matrix(self) -> MixMatrix {
        MixMatrix::for_mix(self)
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A 14×14 row-stochastic transition matrix over [`Interaction`]s.
///
/// Row `i` gives the probability of the next interaction given the
/// current one. Use [`MixMatrix::sample_next`] to walk the chain and
/// [`MixMatrix::stationary_distribution`] to inspect its long-run
/// behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct MixMatrix {
    rows: Vec<[f64; 14]>,
}

/// Relative within-class popularity of each interaction (independent of
/// mix). Derived from the TPC-W interaction frequencies: product detail
/// and search dominate browsing; the cart dominates ordering.
fn popularity(i: Interaction) -> f64 {
    match i {
        Interaction::Home => 16.0,
        Interaction::NewProducts => 10.0,
        Interaction::BestSellers => 10.0,
        Interaction::ProductDetail => 34.0,
        Interaction::SearchRequest => 14.0,
        Interaction::SearchResults => 16.0,
        Interaction::ShoppingCart => 32.0,
        Interaction::CustomerRegistration => 16.0,
        Interaction::BuyRequest => 14.0,
        Interaction::BuyConfirm => 12.0,
        Interaction::OrderInquiry => 8.0,
        Interaction::OrderDisplay => 7.0,
        Interaction::AdminRequest => 6.0,
        Interaction::AdminConfirm => 5.0,
    }
}

impl MixMatrix {
    /// Builds the matrix for a mix.
    ///
    /// Construction: from any interaction, the next one is order-class
    /// with the mix's [`order_fraction`](Mix::order_fraction) (nudged by
    /// a small persistence bonus toward staying in the current class,
    /// which models multi-page flows like cart → buy request → buy
    /// confirm), and the interaction within the class is chosen by
    /// TPC-W-style popularity weights.
    pub fn for_mix(mix: Mix) -> Self {
        let base_order = mix.order_fraction();
        const PERSISTENCE: f64 = 0.15;
        let rows = Interaction::ALL
            .iter()
            .map(|&from| {
                let order_p = if from.is_order() {
                    (base_order + PERSISTENCE).min(0.95)
                } else {
                    (base_order - PERSISTENCE * base_order).max(0.01)
                };
                let mut row = [0.0f64; 14];
                let browse_total: f64 = Interaction::ALL
                    .iter()
                    .filter(|i| i.is_browse())
                    .map(|&i| popularity(i))
                    .sum();
                let order_total: f64 = Interaction::ALL
                    .iter()
                    .filter(|i| i.is_order())
                    .map(|&i| popularity(i))
                    .sum();
                for &to in &Interaction::ALL {
                    let class_p = if to.is_order() {
                        order_p
                    } else {
                        1.0 - order_p
                    };
                    let within = popularity(to)
                        / if to.is_order() {
                            order_total
                        } else {
                            browse_total
                        };
                    row[to.index()] = class_p * within;
                }
                row
            })
            .collect();
        MixMatrix { rows }
    }

    /// Probability of moving from `from` to `to`.
    pub fn probability(&self, from: Interaction, to: Interaction) -> f64 {
        self.rows[from.index()][to.index()]
    }

    /// Row-wise convex combination of two matrices:
    /// `(1 − t)·a + t·b` with `t` clamped to `[0, 1]`. A convex
    /// combination of row-stochastic matrices is row-stochastic, which
    /// is what lets a scenario drift the traffic mix gradually instead
    /// of hard-switching it.
    pub fn interpolate(a: &MixMatrix, b: &MixMatrix, t: f64) -> MixMatrix {
        let t = t.clamp(0.0, 1.0);
        let rows = a
            .rows
            .iter()
            .zip(&b.rows)
            .map(|(ra, rb)| {
                let mut row = [0.0f64; 14];
                for (out, (pa, pb)) in row.iter_mut().zip(ra.iter().zip(rb)) {
                    *out = (1.0 - t) * pa + t * pb;
                }
                row
            })
            .collect();
        MixMatrix { rows }
    }

    /// Samples the next interaction after `from`.
    pub fn sample_next(&self, from: Interaction, rng: &mut Pcg64) -> Interaction {
        let row = &self.rows[from.index()];
        let mut x = rng.f64();
        for (idx, p) in row.iter().enumerate() {
            if x < *p {
                return Interaction::from_index(idx);
            }
            x -= p;
        }
        Interaction::from_index(13)
    }

    /// The stationary distribution of the chain (power iteration).
    ///
    /// Entry `k` is the long-run fraction of requests that are
    /// `Interaction::from_index(k)`.
    pub fn stationary_distribution(&self) -> [f64; 14] {
        let mut dist = [1.0 / 14.0; 14];
        for _ in 0..200 {
            let mut next = [0.0f64; 14];
            for (i, row) in self.rows.iter().enumerate() {
                for (j, p) in row.iter().enumerate() {
                    next[j] += dist[i] * p;
                }
            }
            dist = next;
        }
        dist
    }

    /// Verifies every row sums to 1 (within tolerance); used by tests and
    /// debug assertions.
    pub fn is_stochastic(&self) -> bool {
        self.rows.iter().all(|row| {
            let s: f64 = row.iter().sum();
            (s - 1.0).abs() < 1e-9 && row.iter().all(|p| *p >= 0.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matrices_are_stochastic() {
        for mix in Mix::ALL {
            assert!(mix.matrix().is_stochastic(), "{mix} matrix not stochastic");
        }
    }

    #[test]
    fn interpolation_stays_stochastic_and_hits_endpoints() {
        let a = Mix::Shopping.matrix();
        let b = Mix::Ordering.matrix();
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(
                MixMatrix::interpolate(&a, &b, t).is_stochastic(),
                "blend at t={t} not stochastic"
            );
        }
        assert_eq!(MixMatrix::interpolate(&a, &b, 0.0), a);
        assert_eq!(MixMatrix::interpolate(&a, &b, 1.0), b);
        // Out-of-range fractions clamp to the endpoints.
        assert_eq!(MixMatrix::interpolate(&a, &b, -3.0), a);
        assert_eq!(MixMatrix::interpolate(&a, &b, 7.0), b);
        // The blend moves probability monotonically: halfway sits
        // between the endpoints entry-wise.
        let mid = MixMatrix::interpolate(&a, &b, 0.5);
        for from in Interaction::ALL {
            for to in Interaction::ALL {
                let (pa, pb) = (a.probability(from, to), b.probability(from, to));
                let pm = mid.probability(from, to);
                assert!(
                    (pm - (pa + pb) / 2.0).abs() < 1e-12,
                    "{from:?}->{to:?} midpoint off"
                );
            }
        }
    }

    fn stationary_order_fraction(mix: Mix) -> f64 {
        let m = mix.matrix();
        let dist = m.stationary_distribution();
        Interaction::ALL
            .iter()
            .filter(|i| i.is_order())
            .map(|i| dist[i.index()])
            .sum()
    }

    #[test]
    fn stationary_ratios_match_tpcw_targets() {
        let browsing = stationary_order_fraction(Mix::Browsing);
        let shopping = stationary_order_fraction(Mix::Shopping);
        let ordering = stationary_order_fraction(Mix::Ordering);
        assert!(
            (browsing - 0.05).abs() < 0.02,
            "browsing order fraction {browsing}"
        );
        assert!(
            (shopping - 0.20).abs() < 0.04,
            "shopping order fraction {shopping}"
        );
        assert!(
            (ordering - 0.50).abs() < 0.06,
            "ordering order fraction {ordering}"
        );
        assert!(browsing < shopping && shopping < ordering);
    }

    #[test]
    fn sampled_walk_matches_stationary() {
        let mix = Mix::Shopping;
        let m = mix.matrix();
        let mut rng = Pcg64::seed_from_u64(99);
        let mut current = Interaction::Home;
        let mut orders = 0u32;
        let n = 200_000;
        for _ in 0..n {
            current = m.sample_next(current, &mut rng);
            if current.is_order() {
                orders += 1;
            }
        }
        let frac = orders as f64 / n as f64;
        let expected = stationary_order_fraction(mix);
        assert!(
            (frac - expected).abs() < 0.01,
            "sampled {frac} vs stationary {expected}"
        );
    }

    #[test]
    fn order_flows_persist() {
        // From an order-class page, staying in the order class is more
        // likely than the base rate (cart → buy request → buy confirm).
        let m = Mix::Shopping.matrix();
        let from_order: f64 = Interaction::ALL
            .iter()
            .filter(|i| i.is_order())
            .map(|&to| m.probability(Interaction::ShoppingCart, to))
            .sum();
        let from_browse: f64 = Interaction::ALL
            .iter()
            .filter(|i| i.is_order())
            .map(|&to| m.probability(Interaction::Home, to))
            .sum();
        assert!(from_order > from_browse);
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(Mix::Ordering.to_string(), "ordering");
        assert_eq!(Mix::ALL[0], Mix::Browsing);
        assert!(Mix::Browsing.order_fraction() < Mix::Ordering.order_fraction());
    }

    proptest! {
        #[test]
        fn prop_sample_next_total(seed: u64) {
            let m = Mix::Ordering.matrix();
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut cur = Interaction::Home;
            for _ in 0..64 {
                cur = m.sample_next(cur, &mut rng);
                // Any of the 14 interactions is valid; index must be dense.
                prop_assert!(cur.index() < 14);
            }
        }
    }
}
