//! Emulated browsers and fleets of them.

use std::fmt;

use simkernel::rng::{Exponential, LogNormal};
use simkernel::{Pcg64, SimDuration};

use crate::interaction::Interaction;
use crate::mix::{Mix, MixMatrix};

/// Mean think time between two requests of one browser (TPC-W: 7 s).
pub const MEAN_THINK_TIME_SECS: f64 = 7.0;
/// Cap on a single think time (TPC-W: 70 s).
pub const MAX_THINK_TIME_SECS: f64 = 70.0;
/// Mean session length in interactions before the customer leaves.
pub const MEAN_SESSION_LENGTH: f64 = 25.0;

/// How think times are drawn: the TPC-W exponential default, or a
/// mean-preserving heavy-tailed log-normal (scenario `tail` directives
/// switch between them mid-run). Both have mean
/// [`MEAN_THINK_TIME_SECS`], and the exponential variant performs the
/// exact same single RNG draw as the pre-tail simulator, so runs that
/// never switch are bit-identical to before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThinkDist {
    /// The TPC-W default.
    Exponential(Exponential),
    /// Heavy-tailed variant; σ controls tail weight at fixed mean.
    LogNormal(LogNormal),
}

impl ThinkDist {
    /// The exponential TPC-W default (mean 7 s).
    pub fn exponential() -> Self {
        ThinkDist::Exponential(Exponential::with_mean(MEAN_THINK_TIME_SECS))
    }

    /// A log-normal with the same 7 s mean and the given σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not finite and non-negative.
    pub fn lognormal(sigma: f64) -> Self {
        ThinkDist::LogNormal(LogNormal::with_mean(MEAN_THINK_TIME_SECS, sigma))
    }

    fn sample(&self, rng: &mut Pcg64) -> f64 {
        match self {
            ThinkDist::Exponential(d) => d.sample(rng),
            ThinkDist::LogNormal(d) => d.sample(rng),
        }
    }
}

/// Identifier of a browsing session (new sessions get fresh ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// A request emitted by an emulated browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Index of the emitting browser within its [`Fleet`].
    pub browser: usize,
    /// Session the request belongs to.
    pub session: SessionId,
    /// Which TPC-W interaction is requested.
    pub interaction: Interaction,
    /// `true` when this is the first request of a fresh session (a new
    /// TCP connection: no keep-alive reuse possible).
    pub new_session: bool,
}

/// One emulated browser (EB): think → request → think → …, with
/// geometric-length sessions that always start at [`Interaction::Home`].
///
/// # Example
///
/// ```
/// use simkernel::Pcg64;
/// use tpcw::{Browser, Interaction, Mix};
///
/// let mut rng = Pcg64::seed_from_u64(3);
/// let mut eb = Browser::new(7, Mix::Ordering);
/// let first = eb.next_request(&mut rng);
/// assert!(first.new_session);
/// assert_eq!(first.interaction, Interaction::Home);
/// let second = eb.next_request(&mut rng);
/// assert_eq!(second.browser, 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Browser {
    index: usize,
    matrix: MixMatrix,
    think: ThinkDist,
    current: Option<Interaction>,
    session: SessionId,
    session_counter: u64,
    /// Probability that each interaction ends the session.
    end_session_p: f64,
}

impl Browser {
    /// Creates a browser with the standard TPC-W think-time and
    /// session-length parameters.
    pub fn new(index: usize, mix: Mix) -> Self {
        Browser {
            index,
            matrix: mix.matrix(),
            think: ThinkDist::exponential(),
            current: None,
            session: SessionId((index as u64) << 32),
            session_counter: 0,
            end_session_p: 1.0 / MEAN_SESSION_LENGTH,
        }
    }

    /// Switches the browser to a different traffic mix (used when the
    /// experiment's system context changes); the current session ends.
    pub fn set_mix(&mut self, mix: Mix) {
        self.matrix = mix.matrix();
        self.current = None;
    }

    /// Replaces the transition matrix *without* restarting the current
    /// session — used for gradual mix drift, where customers keep
    /// shopping while the population's behaviour shifts.
    pub fn set_matrix(&mut self, matrix: MixMatrix) {
        self.matrix = matrix;
    }

    /// Index within the fleet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Replaces the think-time distribution (heavy-tail scenario
    /// directives); sessions are unaffected.
    pub fn set_think_dist(&mut self, dist: ThinkDist) {
        self.think = dist;
    }

    /// Draws the think time preceding the next request (mean 7 s,
    /// exponential by default, capped at 70 s regardless of
    /// distribution).
    pub fn think_time(&self, rng: &mut Pcg64) -> SimDuration {
        let secs = self.think.sample(rng).min(MAX_THINK_TIME_SECS);
        SimDuration::from_secs_f64(secs)
    }

    /// Produces the browser's next request, advancing its session state.
    pub fn next_request(&mut self, rng: &mut Pcg64) -> Request {
        let (interaction, new_session) = match self.current {
            None => (Interaction::Home, true),
            Some(from) => {
                if rng.chance(self.end_session_p) {
                    self.session_counter += 1;
                    self.session = SessionId(((self.index as u64) << 32) | self.session_counter);
                    (Interaction::Home, true)
                } else {
                    (self.matrix.sample_next(from, rng), false)
                }
            }
        };
        self.current = Some(interaction);
        Request {
            browser: self.index,
            session: self.session,
            interaction,
            new_session,
        }
    }
}

/// A population of emulated browsers sharing one traffic mix.
///
/// The web-system simulator owns the event loop; the fleet just hands out
/// browsers and bulk operations over them.
///
/// # Example
///
/// ```
/// use simkernel::Pcg64;
/// use tpcw::{Fleet, Mix};
///
/// let mut rng = Pcg64::seed_from_u64(5);
/// let mut fleet = Fleet::new(50, Mix::Shopping);
/// assert_eq!(fleet.len(), 50);
/// let req = fleet.browser_mut(10).next_request(&mut rng);
/// assert_eq!(req.browser, 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    browsers: Vec<Browser>,
    mix: Mix,
    /// When set, an interpolated matrix overrides `mix.matrix()`; new
    /// browsers created by [`Fleet::resize`] inherit it so the whole
    /// population behaves uniformly mid-drift.
    blend: Option<MixMatrix>,
    /// Current think-time distribution; new browsers created by
    /// [`Fleet::resize`] inherit it so the whole population samples
    /// uniformly mid-regime.
    think: ThinkDist,
}

impl Fleet {
    /// Creates `n` browsers running `mix`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, mix: Mix) -> Self {
        assert!(n > 0, "a fleet needs at least one browser");
        Fleet {
            browsers: (0..n).map(|i| Browser::new(i, mix)).collect(),
            mix,
            blend: None,
            think: ThinkDist::exponential(),
        }
    }

    /// Installs a think-time distribution on every browser (and on
    /// future browsers created by [`Fleet::resize`]).
    pub fn set_think_dist(&mut self, dist: ThinkDist) {
        self.think = dist;
        for b in &mut self.browsers {
            b.set_think_dist(dist);
        }
    }

    /// Number of browsers.
    pub fn len(&self) -> usize {
        self.browsers.len()
    }

    /// Always `false`: fleets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current traffic mix.
    pub fn mix(&self) -> Mix {
        self.mix
    }

    /// Mutable access to one browser.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn browser_mut(&mut self, index: usize) -> &mut Browser {
        &mut self.browsers[index]
    }

    /// Switches every browser to a new mix (all sessions restart).
    /// Clears any drift matrix installed via [`Fleet::set_matrix`].
    pub fn set_mix(&mut self, mix: Mix) {
        self.mix = mix;
        self.blend = None;
        for b in &mut self.browsers {
            b.set_mix(mix);
        }
    }

    /// Installs an interpolated transition matrix on every browser
    /// without restarting sessions (gradual mix drift). `nominal` is
    /// the mix the blend is closest to; it becomes the fleet's reported
    /// [`Fleet::mix`], which is what context-aware tuners key on.
    pub fn set_matrix(&mut self, matrix: MixMatrix, nominal: Mix) {
        self.mix = nominal;
        for b in &mut self.browsers {
            b.set_matrix(matrix.clone());
        }
        self.blend = Some(matrix);
    }

    /// Resizes the fleet, keeping existing browsers' session state where
    /// possible.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn resize(&mut self, n: usize) {
        assert!(n > 0, "a fleet needs at least one browser");
        let mix = self.mix;
        let old = self.browsers.len();
        if n < old {
            self.browsers.truncate(n);
        } else {
            self.browsers.extend((old..n).map(|i| {
                let mut b = Browser::new(i, mix);
                if let Some(blend) = &self.blend {
                    b.set_matrix(blend.clone());
                }
                b.set_think_dist(self.think);
                b
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_request_is_home_new_session() {
        let mut rng = Pcg64::seed_from_u64(1);
        let mut eb = Browser::new(0, Mix::Browsing);
        let r = eb.next_request(&mut rng);
        assert_eq!(r.interaction, Interaction::Home);
        assert!(r.new_session);
    }

    #[test]
    fn sessions_restart_at_home_with_fresh_id() {
        let mut rng = Pcg64::seed_from_u64(2);
        let mut eb = Browser::new(0, Mix::Ordering);
        let first = eb.next_request(&mut rng);
        let mut restarts = 0;
        let mut last_session = first.session;
        for _ in 0..2_000 {
            let r = eb.next_request(&mut rng);
            if r.new_session {
                restarts += 1;
                assert_eq!(r.interaction, Interaction::Home);
                assert_ne!(r.session, last_session);
            }
            last_session = r.session;
        }
        // Mean session length 25 → about 80 restarts over 2000 requests.
        assert!((40..160).contains(&restarts), "restarts {restarts}");
    }

    #[test]
    fn think_times_capped() {
        let mut rng = Pcg64::seed_from_u64(3);
        let eb = Browser::new(0, Mix::Shopping);
        let mut total = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let t = eb.think_time(&mut rng).as_secs_f64();
            assert!(t <= MAX_THINK_TIME_SECS);
            total += t;
        }
        let mean = total / n as f64;
        assert!((mean - 7.0).abs() < 0.3, "mean think {mean}");
    }

    #[test]
    fn lognormal_think_keeps_mean_and_cap() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut eb = Browser::new(0, Mix::Shopping);
        eb.set_think_dist(ThinkDist::lognormal(1.0));
        let mut total = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let t = eb.think_time(&mut rng).as_secs_f64();
            assert!(t <= MAX_THINK_TIME_SECS);
            total += t;
        }
        // The 70 s cap trims more of a heavy tail, so the observed mean
        // sits a little below 7; it must stay in the same regime.
        let mean = total / n as f64;
        assert!((5.5..=7.2).contains(&mean), "mean think {mean}");
    }

    #[test]
    fn fleet_think_dist_survives_resize() {
        let mut fleet = Fleet::new(2, Mix::Shopping);
        fleet.set_think_dist(ThinkDist::lognormal(1.2));
        fleet.resize(4);
        // Browsers grown after the switch sample the same distribution
        // as the originals: identical draws from identical RNG states.
        let mut r1 = Pcg64::seed_from_u64(11);
        let mut r2 = Pcg64::seed_from_u64(11);
        let a = fleet.browser_mut(0).think_time(&mut r1);
        let b = fleet.browser_mut(3).think_time(&mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn exponential_thinkdist_matches_legacy_draws() {
        // The ThinkDist wrapper must reproduce the pre-tail sampler
        // exactly: same single draw, same values.
        let mut r1 = Pcg64::seed_from_u64(77);
        let mut r2 = Pcg64::seed_from_u64(77);
        let legacy = Exponential::with_mean(MEAN_THINK_TIME_SECS);
        let eb = Browser::new(0, Mix::Shopping);
        for _ in 0..1000 {
            let expected = legacy.sample(&mut r1).min(MAX_THINK_TIME_SECS);
            assert_eq!(eb.think_time(&mut r2), SimDuration::from_secs_f64(expected));
        }
        assert_eq!(r1, r2, "stream positions must match");
    }

    #[test]
    fn mix_change_restarts_session() {
        let mut rng = Pcg64::seed_from_u64(4);
        let mut eb = Browser::new(0, Mix::Browsing);
        eb.next_request(&mut rng);
        eb.set_mix(Mix::Ordering);
        let r = eb.next_request(&mut rng);
        assert!(r.new_session);
    }

    #[test]
    fn ordering_mix_produces_more_order_requests() {
        let mut rng = Pcg64::seed_from_u64(5);
        let count_orders = |mix: Mix, rng: &mut Pcg64| {
            let mut eb = Browser::new(0, mix);
            (0..5_000)
                .filter(|_| eb.next_request(rng).interaction.is_order())
                .count()
        };
        let browsing = count_orders(Mix::Browsing, &mut rng);
        let ordering = count_orders(Mix::Ordering, &mut rng);
        assert!(
            ordering > 3 * browsing,
            "browsing {browsing} ordering {ordering}"
        );
    }

    #[test]
    fn fleet_operations() {
        let mut fleet = Fleet::new(10, Mix::Shopping);
        assert_eq!(fleet.len(), 10);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.mix(), Mix::Shopping);
        fleet.resize(4);
        assert_eq!(fleet.len(), 4);
        fleet.resize(8);
        assert_eq!(fleet.len(), 8);
        fleet.set_mix(Mix::Browsing);
        assert_eq!(fleet.mix(), Mix::Browsing);
        assert_eq!(fleet.browser_mut(7).index(), 7);
    }

    #[test]
    fn set_matrix_preserves_sessions_and_survives_resize() {
        let mut rng = Pcg64::seed_from_u64(7);
        let mut fleet = Fleet::new(2, Mix::Shopping);
        let first = fleet.browser_mut(0).next_request(&mut rng);
        let blend = MixMatrix::interpolate(&Mix::Shopping.matrix(), &Mix::Ordering.matrix(), 0.5);
        fleet.set_matrix(blend.clone(), Mix::Shopping);
        assert_eq!(fleet.mix(), Mix::Shopping);
        // Sessions continue: the very next request with end_session_p
        // suppressed would not be Home. We can't force the geometric
        // draw, but the session id must be reusable — compare against a
        // hard switch, which always restarts.
        let mut hard = fleet.clone();
        hard.set_mix(Mix::Ordering);
        let r_hard = hard
            .browser_mut(0)
            .next_request(&mut Pcg64::seed_from_u64(8));
        assert!(r_hard.new_session, "hard switch restarts sessions");
        // Browsers grown mid-drift use the blended matrix (statistical
        // check: with a 50/50 shopping→ordering blend, order fraction
        // sits well above pure shopping).
        fleet.resize(3);
        let mut orders = 0;
        for _ in 0..4_000 {
            if fleet
                .browser_mut(2)
                .next_request(&mut rng)
                .interaction
                .is_order()
            {
                orders += 1;
            }
        }
        let frac = orders as f64 / 4_000.0;
        assert!(frac > 0.25, "blended order fraction {frac}");
        // A later hard set_mix clears the blend for future resizes.
        fleet.set_mix(Mix::Browsing);
        fleet.resize(4);
        let _ = first;
    }

    #[test]
    #[should_panic(expected = "at least one browser")]
    fn empty_fleet_panics() {
        Fleet::new(0, Mix::Shopping);
    }

    #[test]
    fn session_ids_unique_across_browsers() {
        let mut rng = Pcg64::seed_from_u64(6);
        let mut fleet = Fleet::new(3, Mix::Shopping);
        let mut sessions = std::collections::HashSet::new();
        for b in 0..3 {
            for _ in 0..50 {
                sessions.insert(fleet.browser_mut(b).next_request(&mut rng).session);
            }
        }
        // Every browser contributes at least its initial session; ids from
        // different browsers never collide (upper 32 bits are the index).
        assert!(sessions.len() >= 3);
    }

    proptest! {
        #[test]
        fn prop_browser_deterministic(seed: u64) {
            let mut r1 = Pcg64::seed_from_u64(seed);
            let mut r2 = Pcg64::seed_from_u64(seed);
            let mut a = Browser::new(0, Mix::Shopping);
            let mut b = Browser::new(0, Mix::Shopping);
            for _ in 0..32 {
                prop_assert_eq!(a.next_request(&mut r1), b.next_request(&mut r2));
            }
        }
    }
}
