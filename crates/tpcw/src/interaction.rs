//! The 14 TPC-W web interactions and their resource-demand profiles.

use std::fmt;

/// One of the 14 TPC-W web interactions.
///
/// Interactions split into a *browse* class (catalogue reads) and an
/// *order* class (cart and checkout); the traffic-mix definitions in
/// [`crate::Mix`] are stated in terms of that split.
///
/// # Example
///
/// ```
/// use tpcw::Interaction;
///
/// assert!(Interaction::BestSellers.is_browse());
/// assert!(Interaction::BuyConfirm.is_order());
/// assert_eq!(Interaction::ALL.len(), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Interaction {
    /// Store front page; entry point of every session.
    Home,
    /// Newly added catalogue items for one subject.
    NewProducts,
    /// Top-selling items — the most database-intensive read.
    BestSellers,
    /// One item's detail page.
    ProductDetail,
    /// Search form (static).
    SearchRequest,
    /// Search execution and result listing.
    SearchResults,
    /// View / update the shopping cart.
    ShoppingCart,
    /// Returning-customer identification / new-customer registration.
    CustomerRegistration,
    /// Order summary presented before purchase.
    BuyRequest,
    /// Purchase execution — the heaviest transaction.
    BuyConfirm,
    /// Order-status lookup form.
    OrderInquiry,
    /// Display of a previous order.
    OrderDisplay,
    /// Administrative item-update form.
    AdminRequest,
    /// Administrative item-update execution.
    AdminConfirm,
}

impl Interaction {
    /// All interactions in declaration order. The order is stable and is
    /// used as the row/column order of [`crate::MixMatrix`].
    pub const ALL: [Interaction; 14] = [
        Interaction::Home,
        Interaction::NewProducts,
        Interaction::BestSellers,
        Interaction::ProductDetail,
        Interaction::SearchRequest,
        Interaction::SearchResults,
        Interaction::ShoppingCart,
        Interaction::CustomerRegistration,
        Interaction::BuyRequest,
        Interaction::BuyConfirm,
        Interaction::OrderInquiry,
        Interaction::OrderDisplay,
        Interaction::AdminRequest,
        Interaction::AdminConfirm,
    ];

    /// Dense index in `0..14`, matching [`Interaction::ALL`].
    pub fn index(self) -> usize {
        Interaction::ALL
            .iter()
            .position(|&i| i == self)
            .expect("interaction in ALL")
    }

    /// The interaction at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 14`.
    pub fn from_index(index: usize) -> Interaction {
        Interaction::ALL[index]
    }

    /// `true` for the browse class (catalogue reads).
    pub fn is_browse(self) -> bool {
        matches!(
            self,
            Interaction::Home
                | Interaction::NewProducts
                | Interaction::BestSellers
                | Interaction::ProductDetail
                | Interaction::SearchRequest
                | Interaction::SearchResults
        )
    }

    /// `true` for the order class (cart, checkout, order status, admin).
    pub fn is_order(self) -> bool {
        !self.is_browse()
    }

    /// Per-tier resource demands of this interaction.
    ///
    /// The absolute numbers are calibrated to a mid-2000s LAMP stack
    /// (milliseconds of CPU per tier at zero load); what matters for the
    /// reproduction is their *relative* weight: `BestSellers` hammers the
    /// database, `BuyConfirm` the application tier and database
    /// transactionally, `Home`/`SearchRequest` are mostly web-tier work.
    pub fn demand(self) -> DemandProfile {
        // (web_us, app_us, db_us, db_queries, uses_session)
        let (web, app, db, queries, session) = match self {
            Interaction::Home => (2_500, 1_500, 800, 1, false),
            Interaction::NewProducts => (2_000, 3_500, 9_000, 2, false),
            Interaction::BestSellers => (2_000, 4_000, 26_000, 3, false),
            Interaction::ProductDetail => (2_200, 2_000, 3_000, 1, false),
            Interaction::SearchRequest => (1_800, 900, 0, 0, false),
            Interaction::SearchResults => (2_200, 4_500, 14_000, 2, false),
            Interaction::ShoppingCart => (2_400, 5_000, 6_000, 2, true),
            Interaction::CustomerRegistration => (2_200, 3_000, 2_500, 1, true),
            Interaction::BuyRequest => (2_400, 6_000, 8_000, 3, true),
            Interaction::BuyConfirm => (2_600, 9_000, 22_000, 5, true),
            Interaction::OrderInquiry => (1_800, 1_200, 0, 0, true),
            Interaction::OrderDisplay => (2_200, 3_500, 9_000, 2, true),
            Interaction::AdminRequest => (2_000, 2_000, 2_500, 1, false),
            Interaction::AdminConfirm => (2_400, 5_000, 16_000, 3, false),
        };
        DemandProfile {
            web_cpu_us: web,
            app_cpu_us: app,
            db_cpu_us: db,
            db_queries: queries,
            uses_session: session,
        }
    }
}

impl fmt::Display for Interaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// CPU demand an interaction places on each tier, at zero load, plus the
/// number of round trips it makes to the database.
///
/// # Example
///
/// ```
/// use tpcw::Interaction;
///
/// let d = Interaction::BestSellers.demand();
/// assert!(d.db_cpu_us > d.web_cpu_us); // DB-bound
/// assert!(d.total_cpu_us() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DemandProfile {
    /// Web-tier (Apache) CPU, microseconds.
    pub web_cpu_us: u64,
    /// Application-tier (Tomcat) CPU, microseconds.
    pub app_cpu_us: u64,
    /// Database-tier (MySQL) CPU, microseconds, across all queries.
    pub db_cpu_us: u64,
    /// Number of database round trips.
    pub db_queries: u32,
    /// Whether the interaction reads/writes the HTTP session object.
    pub uses_session: bool,
}

impl DemandProfile {
    /// Sum of the per-tier CPU demands.
    pub fn total_cpu_us(&self) -> u64 {
        self.web_cpu_us + self.app_cpu_us + self.db_cpu_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_14_distinct_interactions() {
        let mut set = std::collections::HashSet::new();
        for i in Interaction::ALL {
            set.insert(i);
        }
        assert_eq!(set.len(), 14);
    }

    #[test]
    fn index_round_trips() {
        for (k, i) in Interaction::ALL.iter().enumerate() {
            assert_eq!(i.index(), k);
            assert_eq!(Interaction::from_index(k), *i);
        }
    }

    #[test]
    fn class_split_is_6_browse_8_order() {
        let browse = Interaction::ALL.iter().filter(|i| i.is_browse()).count();
        assert_eq!(browse, 6);
        assert_eq!(Interaction::ALL.len() - browse, 8);
        for i in Interaction::ALL {
            assert_ne!(i.is_browse(), i.is_order());
        }
    }

    #[test]
    fn demands_are_positive_and_shaped() {
        for i in Interaction::ALL {
            let d = i.demand();
            assert!(d.web_cpu_us > 0, "{i} needs web CPU");
            assert!(d.total_cpu_us() > 0);
            assert_eq!(
                d.db_cpu_us == 0,
                d.db_queries == 0,
                "{i}: db time iff db queries"
            );
        }
        // Relative shapes the model depends on:
        assert!(Interaction::BestSellers.demand().db_cpu_us > Interaction::Home.demand().db_cpu_us);
        assert!(
            Interaction::BuyConfirm.demand().app_cpu_us
                > Interaction::SearchRequest.demand().app_cpu_us
        );
        assert!(Interaction::BuyConfirm.demand().uses_session);
        assert!(!Interaction::Home.demand().uses_session);
    }

    #[test]
    fn display_is_debug_name() {
        assert_eq!(Interaction::BuyConfirm.to_string(), "BuyConfirm");
    }
}
