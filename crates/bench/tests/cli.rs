//! CLI contract of the `figures` binary: malformed invocations exit 2
//! with a usage message on stderr — never a panic, never exit 0. These
//! run the real binary (`CARGO_BIN_EXE_figures`) and stick to argument
//! validation, so no simulation ever starts.

use std::process::{Command, Output};

fn figures(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        .output()
        .expect("figures binary runs")
}

fn assert_usage_exit(args: &[&str], needle: &str) {
    let out = figures(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "figures {args:?} must exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains(needle),
        "figures {args:?} stderr must mention {needle:?}:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "figures {args:?} must not panic:\n{stderr}"
    );
}

#[test]
fn unknown_experiment_exits_2_with_usage() {
    assert_usage_exit(&["no-such-figure"], "unknown experiment");
    assert_usage_exit(&["no-such-figure"], "tournament");
}

#[test]
fn scenario_without_operand_prints_usage() {
    assert_usage_exit(&["scenario"], "usage: figures scenario");
}

#[test]
fn bench_flags_need_values() {
    assert_usage_exit(&["bench", "--check"], "--check needs a path");
    assert_usage_exit(&["bench", "--out"], "--out needs a path");
    assert_usage_exit(&["bench", "--bogus"], "unknown bench argument");
}

#[test]
fn tournament_rejects_malformed_arguments() {
    assert_usage_exit(
        &["tournament", "--seed"],
        "--seed needs an unsigned integer",
    );
    assert_usage_exit(
        &["tournament", "--seed", "abc"],
        "usage: figures tournament",
    );
    assert_usage_exit(
        &["tournament", "--profile", "impossible"],
        "calm, brisk, stormy",
    );
    assert_usage_exit(&["tournament", "0"], "positive integer");
    assert_usage_exit(&["tournament", "2", "3"], "at most one scenario-count");
    assert_usage_exit(&["tournament", "--bogus"], "unknown tournament flag");
}

#[test]
fn fleet_and_chaos_reject_garbage_operands() {
    assert_usage_exit(&["fleet", "not-a-number"], "positive integer");
    assert_usage_exit(&["chaos", "not-a-seed"], "unsigned integers");
    assert_usage_exit(&["profile", "--bogus"], "usage: figures profile");
}
