//! End-to-end fleet contracts, exercised through the same reporting
//! path `figures fleet` uses: the emitted CSVs — not just the in-memory
//! outcomes — must be byte-identical at any thread count and across a
//! kill-and-resume, and a mismatched warm-start library must fail typed
//! at the seeding boundary rather than panicking mid-fleet.

use ckpt::{Snapshot, SnapshotWriter};
use fleet::{FleetConfig, FleetError, FleetRun, TransferError};
use rac::runner::Runner;
use rac_bench::fleet::{aggregate, aggregate_table, tenants_csv};

fn small_config() -> FleetConfig {
    FleetConfig {
        tenants: 6,
        seed: 42,
        cold: 2,
        chunk: 2,
        scale_den: 40, // compressed timeline: integration-test speed
        online_levels: 3,
        control: true,
        radius: 2.0, // ungated: keep every warm tenant warm
    }
}

fn run_to_completion(config: FleetConfig, runner: &Runner) -> FleetRun {
    let mut run = FleetRun::new(config).unwrap();
    while !run.is_complete() {
        run.step(runner).unwrap();
    }
    run
}

#[test]
fn emitted_csvs_are_bit_identical_across_thread_counts() {
    let serial = run_to_completion(small_config(), &Runner::new(1));
    let sharded = run_to_completion(small_config(), &Runner::new(8));
    assert_eq!(
        tenants_csv(&serial),
        tenants_csv(&sharded),
        "per-tenant CSV must not depend on RAC_THREADS"
    );
    assert_eq!(
        aggregate_table(&aggregate(&serial)).render_csv(),
        aggregate_table(&aggregate(&sharded)).render_csv(),
        "aggregate CSV must not depend on RAC_THREADS"
    );
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_csvs() {
    let runner = Runner::new(2);
    let uninterrupted = run_to_completion(small_config(), &runner);

    // Run two steps (cold wave + one warm chunk), checkpoint through
    // the wire, drop the run, resume, and finish.
    let mut first = FleetRun::new(small_config()).unwrap();
    first.step(&runner).unwrap();
    first.step(&runner).unwrap();
    assert!(!first.is_complete());
    let mut w = SnapshotWriter::new();
    first.save(&mut w);
    let bytes = w.to_bytes();
    drop(first);

    let snap = Snapshot::from_bytes(&bytes).unwrap();
    let mut resumed = FleetRun::resume(small_config(), &snap).unwrap();
    while !resumed.is_complete() {
        resumed.step(&runner).unwrap();
    }
    assert_eq!(tenants_csv(&uninterrupted), tenants_csv(&resumed));
    assert_eq!(
        aggregate_table(&aggregate(&uninterrupted)).render_csv(),
        aggregate_table(&aggregate(&resumed)).render_csv()
    );
}

#[test]
fn mismatched_library_warm_start_fails_typed_before_any_tenant_runs() {
    // Regression: a `--warm-start` snapshot whose library was trained on
    // a different parameter lattice used to panic deep inside agent
    // construction; it must surface `TransferError::LatticeMismatch` at
    // fleet construction instead.
    let wrong_levels = small_config().online_levels + 1;
    let lattice = rac::ConfigLattice::new(wrong_levels);
    let policy = rac::train_initial_policy(
        &lattice,
        rac::SlaReward::new(1_000.0),
        rac::OfflineSettings {
            group_levels: 2,
            ..rac::OfflineSettings::default()
        },
        |c: &websim::ServerConfig| 100.0 + c.max_clients() as f64 * 0.1,
    )
    .unwrap();
    let mut library = rac::PolicyLibrary::new();
    library.insert(rac::paper_contexts()[0], policy);

    let mut w = SnapshotWriter::new();
    rac::library_to_snapshot(&mut w, &library);
    let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();

    match FleetRun::with_library(small_config(), &snap) {
        Err(FleetError::Transfer(TransferError::LatticeMismatch {
            policy_states,
            store_states,
            ..
        })) => {
            assert_eq!(policy_states, lattice.num_states());
            assert_eq!(
                store_states,
                rac::ConfigLattice::new(small_config().online_levels).num_states()
            );
        }
        other => panic!("expected a typed lattice mismatch, got {other:?}"),
    }
}
