//! Criterion bench: polynomial-regression fit and batch prediction.
//!
//! Policy initialization fits a quadratic model over the 4 group
//! features and then predicts every online lattice state; both steps are
//! on the offline critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numerics::PolynomialModel;
use rac::grouping::{group_features, sampling_plan};
use rac::ConfigLattice;
use std::hint::black_box;

fn training_data() -> (Vec<Vec<f64>>, Vec<f64>) {
    let plan = sampling_plan(3);
    let xs: Vec<Vec<f64>> = plan.iter().map(|(coords, _)| coords.clone()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|c| 200.0 + 900.0 * (c[0] - 0.6).powi(2) + 300.0 * (c[1] - 0.3).powi(2) + 40.0 * c[2])
        .collect();
    (xs, ys)
}

fn bench_fit(c: &mut Criterion) {
    let (xs, ys) = training_data();
    c.bench_function("polynomial_fit_81_samples", |b| {
        b.iter(|| black_box(PolynomialModel::fit(&xs, &ys).unwrap()));
    });
}

fn bench_predict_lattice(c: &mut Criterion) {
    let (xs, ys) = training_data();
    let model = PolynomialModel::fit(&xs, &ys).unwrap();
    let mut group = c.benchmark_group("predict_full_lattice");
    group.sample_size(20);
    for levels in [3usize, 4] {
        let lattice = ConfigLattice::new(levels);
        group.throughput(criterion::Throughput::Elements(lattice.num_states() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                let mut coords = vec![0usize; 8];
                for s in 0..lattice.num_states() {
                    lattice.space().decode_into(s, &mut coords);
                    acc += model.predict(&group_features(&lattice, &coords));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict_lattice);
criterion_main!(benches);
