//! Criterion bench: batch Q-sweep cost vs lattice resolution.
//!
//! Design-decision ablation (DESIGN.md §"Key design decisions" #1/#2):
//! the RAC agent retrains its whole Q-table each interval, so sweep cost
//! bounds the online decision latency. This bench measures one full
//! sweep pass at different per-parameter resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rac::{Action, ConfigLattice, ConfigMdp, SlaReward};
use rl::{batch_value_sweep, QLearning, QTable};
use std::hint::black_box;

fn bench_qsweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsweep_pass");
    for levels in [3usize, 4, 5] {
        let lattice = ConfigLattice::new(levels);
        let mut mdp = ConfigMdp::new(&lattice, SlaReward::new(1_000.0));
        // A non-trivial landscape so rewards vary.
        for s in 0..lattice.num_states() {
            mdp.set_perf(s, 100.0 + (s % 1_000) as f64);
        }
        let learner = QLearning::new(0.1, 0.9);
        group.throughput(criterion::Throughput::Elements(
            (lattice.num_states() * Action::COUNT) as u64,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, _| {
            let mut q = QTable::new(lattice.num_states(), Action::COUNT);
            b.iter(|| {
                // theta = 0 forces exactly max_passes (1) full passes.
                batch_value_sweep(&mdp, &mut q, &learner, 0.0, 1);
                black_box(q.max_q(0))
            });
        });
    }
    group.finish();
}

fn bench_mdp_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp_build");
    for levels in [3usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &lv| {
            let lattice = ConfigLattice::new(lv);
            b.iter(|| black_box(ConfigMdp::new(&lattice, SlaReward::new(1_000.0))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qsweep, bench_mdp_build);
criterion_main!(benches);
