//! Criterion bench: discrete-event simulator throughput.
//!
//! One RAC measurement iteration is 5 simulated minutes of the
//! three-tier system; this bench measures the wall cost of simulating
//! one minute at different client populations, and of the underlying
//! processor-sharing CPU model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkernel::{SimDuration, SimTime};
use std::hint::black_box;
use websim::cpu::PsCpu;
use websim::{SystemSpec, ThreeTierSystem};

fn bench_sim_minute(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_minute");
    group.sample_size(10);
    for clients in [100usize, 300, 600] {
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &n| {
            // Warm the system once; each iteration advances it further.
            let mut sys = ThreeTierSystem::new(SystemSpec::default().with_clients(n));
            let _ = sys.run_interval(SimDuration::from_secs(120));
            b.iter(|| black_box(sys.run_interval(SimDuration::from_secs(60))));
        });
    }
    group.finish();
}

fn bench_ps_cpu(c: &mut Criterion) {
    c.bench_function("ps_cpu_churn_1000_tasks", |b| {
        b.iter(|| {
            let mut cpu = PsCpu::new(4.0, 0.001);
            let mut now = SimTime::ZERO;
            let mut done = 0usize;
            for i in 0..1_000usize {
                cpu.push(now, 1_000.0 + (i % 97) as f64 * 10.0, (i, 0));
                if i % 3 == 0 {
                    if let Some(eta) = cpu.next_completion(now) {
                        now = eta;
                        done += cpu.pop_ready(now).len();
                    }
                }
            }
            while let Some(eta) = cpu.next_completion(now) {
                now = eta;
                done += cpu.pop_ready(now).len();
            }
            black_box(done)
        });
    });
}

criterion_group!(benches, bench_sim_minute, bench_ps_cpu);
criterion_main!(benches);
