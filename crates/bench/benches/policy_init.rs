//! Criterion bench: the offline policy-initialization pipeline
//! (Algorithm 2) end to end against a synthetic landscape, plus the
//! per-interval online decision (batch retrain + action choice).
//!
//! Ablation axis: coarse-sampling granularity (`group_levels`), the
//! paper's knob for trading training time against initial-policy
//! quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rac::runner::Runner;
use rac::{
    train_initial_policy, ConfigLattice, OfflineSettings, RacAgent, RacSettings, SimMeasurer,
    SlaReward, Tuner,
};
use simkernel::SimDuration;
use std::hint::black_box;
use websim::{PerfSample, ServerConfig, SystemSpec};

fn landscape(cfg: &ServerConfig) -> f64 {
    let m = cfg.max_clients() as f64;
    let k = cfg.keepalive_timeout_secs() as f64;
    120.0 + 0.002 * (m - 420.0).powi(2) + 5.0 * (k - 7.0).powi(2)
}

fn bench_offline_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_init_pipeline");
    group.sample_size(10);
    for group_levels in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(group_levels),
            &group_levels,
            |b, &gl| {
                let lattice = ConfigLattice::new(4);
                let settings = OfflineSettings {
                    group_levels: gl,
                    ..OfflineSettings::default()
                };
                b.iter(|| {
                    black_box(
                        train_initial_policy(
                            &lattice,
                            SlaReward::new(1_000.0),
                            settings,
                            landscape,
                        )
                        .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// The real sampling path: Algorithm 2 measuring the live simulator
/// through the parallel runner, at 1 vs 4 worker threads with a cold
/// cache each iteration. On a multi-core host the 4-thread median
/// should come in well under the 1-thread one (the 81-point sampling
/// plan is embarrassingly parallel); the explicit speedup line makes
/// the ratio visible in CI logs.
fn bench_offline_sampling_via_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_init_runner_sampling");
    group.sample_size(10);
    let spec = SystemSpec::default().with_clients(120).with_seed(9);
    let warmup = SimDuration::from_secs(30);
    let measure = SimDuration::from_secs(60);
    let lattice = ConfigLattice::new(3);
    let settings = OfflineSettings::default();

    let mut medians = Vec::new();
    for threads in [1usize, 4] {
        let runner: &'static Runner = Box::leak(Box::new(Runner::new(threads)));
        // Time the sampling stage directly (cold cache per pass) so the
        // speedup line below reflects wall-clock, not criterion's stats.
        let mut elapsed = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                runner.clear_cache();
                let t0 = std::time::Instant::now();
                let measurer = SimMeasurer::on_runner(runner, spec.clone(), warmup, measure);
                let policy =
                    train_initial_policy(&lattice, SlaReward::new(1_000.0), settings, measurer)
                        .unwrap();
                elapsed.push(t0.elapsed().as_secs_f64());
                black_box(policy)
            });
        });
        elapsed.sort_by(f64::total_cmp);
        medians.push(elapsed[elapsed.len() / 2]);
    }
    group.finish();
    println!(
        "policy_init sampling wall-clock: 1 thread {:.3}s, 4 threads {:.3}s — speedup {:.2}x \
         (host has {} cores)",
        medians[0],
        medians[1],
        medians[0] / medians[1],
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
}

fn bench_online_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_decision");
    group.sample_size(20);
    for levels in [3usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &lv| {
            let mut agent = RacAgent::new(RacSettings {
                online_levels: lv,
                ..RacSettings::default()
            });
            let sample = PerfSample::from_parts(vec![700.0; 50], 0, 300.0);
            b.iter(|| black_box(agent.next_config(&sample)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_offline_pipeline,
    bench_offline_sampling_via_runner,
    bench_online_decision
);
criterion_main!(benches);
