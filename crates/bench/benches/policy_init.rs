//! Criterion bench: the offline policy-initialization pipeline
//! (Algorithm 2) end to end against a synthetic landscape, plus the
//! per-interval online decision (batch retrain + action choice).
//!
//! Ablation axis: coarse-sampling granularity (`group_levels`), the
//! paper's knob for trading training time against initial-policy
//! quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rac::{
    train_initial_policy, ConfigLattice, OfflineSettings, RacAgent, RacSettings, SlaReward, Tuner,
};
use std::hint::black_box;
use websim::{PerfSample, ServerConfig};

fn landscape(cfg: &ServerConfig) -> f64 {
    let m = cfg.max_clients() as f64;
    let k = cfg.keepalive_timeout_secs() as f64;
    120.0 + 0.002 * (m - 420.0).powi(2) + 5.0 * (k - 7.0).powi(2)
}

fn bench_offline_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_init_pipeline");
    group.sample_size(10);
    for group_levels in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(group_levels),
            &group_levels,
            |b, &gl| {
                let lattice = ConfigLattice::new(4);
                let settings = OfflineSettings { group_levels: gl, ..OfflineSettings::default() };
                b.iter(|| {
                    black_box(
                        train_initial_policy(&lattice, SlaReward::new(1_000.0), settings, |c| {
                            landscape(c)
                        })
                        .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_online_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_decision");
    group.sample_size(20);
    for levels in [3usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &lv| {
            let mut agent =
                RacAgent::new(RacSettings { online_levels: lv, ..RacSettings::default() });
            let sample = PerfSample::from_parts(vec![700.0; 50], 0, 300.0);
            b.iter(|| black_box(agent.next_config(&sample)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline_pipeline, bench_online_decision);
criterion_main!(benches);
