//! Rendering helpers for the hierarchical self-profiler: the self-time
//! table `figures profile` prints and the folded-stack file it writes.
//!
//! The folded format is the flamegraph interchange format — one line
//! per unique call path, `frame;frame;frame <self-µs>` — consumable
//! directly by `flamegraph.pl` or `inferno-flamegraph`.

use std::io;
use std::path::Path;

use obs::profile::NodeStats;

use crate::output::TextTable;

/// The profiler call tree as a self-time table, heaviest self time
/// first: path, entry count, total/self milliseconds, and each node's
/// share of the run's total self time.
pub fn self_time_table(snapshot: &[(String, NodeStats)]) -> TextTable {
    let grand_self: u64 = snapshot.iter().map(|(_, s)| s.self_us).sum();
    let mut rows: Vec<&(String, NodeStats)> = snapshot.iter().collect();
    rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then_with(|| a.0.cmp(&b.0)));
    let mut t = TextTable::new(&["path", "count", "total_ms", "self_ms", "self_%"]);
    for (path, stats) in rows {
        let share = if grand_self == 0 {
            0.0
        } else {
            stats.self_us as f64 * 100.0 / grand_self as f64
        };
        t.row(&[
            path.clone(),
            stats.count.to_string(),
            format!("{:.1}", stats.total_us as f64 / 1_000.0),
            format!("{:.1}", stats.self_us as f64 / 1_000.0),
            format!("{share:.1}"),
        ]);
    }
    t
}

/// Writes the current folded-stack dump to `path`.
pub fn write_folded(path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, obs::profile::folded())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(count: u64, total_us: u64, self_us: u64) -> NodeStats {
        NodeStats {
            count,
            total_us,
            self_us,
        }
    }

    #[test]
    fn table_sorts_by_self_time_and_shares_sum() {
        let snapshot = vec![
            ("tuner".to_string(), node(10, 6_000, 1_000)),
            ("tuner;sweep".to_string(), node(10, 5_000, 5_000)),
            ("measure".to_string(), node(10, 4_000, 4_000)),
        ];
        let t = self_time_table(&snapshot);
        let csv = t.render_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "path,count,total_ms,self_ms,self_%");
        let first = lines.next().unwrap();
        assert!(first.starts_with("tuner;sweep,10,5.0,5.0,50.0"), "{first}");
        let shares: f64 = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((shares - 100.0).abs() < 0.2, "shares sum to ~100: {shares}");
    }

    #[test]
    fn empty_snapshot_renders_without_dividing_by_zero() {
        let t = self_time_table(&[]);
        assert_eq!(t.len(), 0);
    }
}
