//! On-disk cache for offline-trained initial policies.
//!
//! Offline training is the slow step of the pipeline, so the harness
//! caches each context's [`InitialPolicy`] in a small self-describing
//! binary file (little-endian, std-only — no serialization dependency).

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use numerics::FitQuality;
use rac::{Action, ConfigLattice, InitialPolicy};
use rl::QTable;

const MAGIC: &[u8; 8] = b"RACPOL01";

/// Stores a policy at `path`, creating parent directories as needed.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn store_policy(path: &Path, policy: &InitialPolicy) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let states = policy.perf_ms.len();
    let actions = policy.qtable.actions();
    let mut buf = Vec::with_capacity(16 + states * 4 * (1 + actions));
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(states as u64).to_le_bytes());
    buf.extend_from_slice(&(actions as u64).to_le_bytes());
    buf.extend_from_slice(&policy.fit.r_squared.to_le_bytes());
    buf.extend_from_slice(&policy.fit.rmse.to_le_bytes());
    buf.extend_from_slice(&(policy.fit.samples as u64).to_le_bytes());
    buf.extend_from_slice(&(policy.samples as u64).to_le_bytes());
    buf.extend_from_slice(&(policy.passes as u64).to_le_bytes());
    for &p in &policy.perf_ms {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    for s in 0..states {
        for a in 0..actions {
            buf.extend_from_slice(&(policy.qtable.get(s, a) as f32).to_le_bytes());
        }
    }
    let tmp = path.with_extension("tmp");
    fs::File::create(&tmp)?.write_all(&buf)?;
    fs::rename(&tmp, path)
}

/// Loads a policy from `path` if it exists and matches the lattice;
/// returns `None` on a miss or any corruption (the caller retrains).
pub fn load_policy(path: &Path, lattice: &ConfigLattice) -> Option<InitialPolicy> {
    let mut file = fs::File::open(path).ok()?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf).ok()?;
    let mut at = 0usize;
    let take = |buf: &[u8], at: &mut usize, n: usize| -> Option<Vec<u8>> {
        if *at + n > buf.len() {
            return None;
        }
        let out = buf[*at..*at + n].to_vec();
        *at += n;
        Some(out)
    };
    if take(&buf, &mut at, 8)? != MAGIC {
        return None;
    }
    let read_u64 = |buf: &[u8], at: &mut usize| -> Option<u64> {
        take(buf, at, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    };
    let read_f64 = |buf: &[u8], at: &mut usize| -> Option<f64> {
        take(buf, at, 8).map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
    };
    let states = read_u64(&buf, &mut at)? as usize;
    let actions = read_u64(&buf, &mut at)? as usize;
    if states != lattice.num_states() || actions != Action::COUNT {
        return None;
    }
    let r_squared = read_f64(&buf, &mut at)?;
    let rmse = read_f64(&buf, &mut at)?;
    let fit_samples = read_u64(&buf, &mut at)? as usize;
    let samples = read_u64(&buf, &mut at)? as usize;
    let passes = read_u64(&buf, &mut at)? as usize;
    let mut perf_ms = Vec::with_capacity(states);
    for _ in 0..states {
        let b = take(&buf, &mut at, 4)?;
        perf_ms.push(f32::from_le_bytes(b.try_into().expect("4 bytes")));
    }
    let mut qtable = QTable::new(states, actions);
    for s in 0..states {
        for a in 0..actions {
            let b = take(&buf, &mut at, 4)?;
            qtable.set(
                s,
                a,
                f32::from_le_bytes(b.try_into().expect("4 bytes")) as f64,
            );
        }
    }
    if at != buf.len() {
        return None;
    }
    Some(InitialPolicy {
        qtable,
        perf_ms,
        fit: FitQuality {
            r_squared,
            rmse,
            samples: fit_samples,
        },
        samples,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rac::{train_initial_policy, OfflineSettings, SlaReward};

    fn tiny_policy(lattice: &ConfigLattice) -> InitialPolicy {
        train_initial_policy(
            lattice,
            SlaReward::new(1_000.0),
            OfflineSettings::default(),
            |c: &websim::ServerConfig| 100.0 + c.max_clients() as f64 * 0.3,
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join(format!("rac-cache-test-{}", std::process::id()));
        let path = dir.join("p.bin");
        let lattice = ConfigLattice::new(3);
        let policy = tiny_policy(&lattice);
        store_policy(&path, &policy).unwrap();
        let loaded = load_policy(&path, &lattice).expect("cache hit");
        assert_eq!(loaded.samples, policy.samples);
        assert_eq!(loaded.passes, policy.passes);
        assert_eq!(loaded.perf_ms, policy.perf_ms);
        for s in [0usize, 17, lattice.num_states() - 1] {
            for a in 0..Action::COUNT {
                assert!((loaded.qtable.get(s, a) - policy.qtable.get(s, a)).abs() < 1e-6);
            }
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn lattice_mismatch_misses() {
        let dir = std::env::temp_dir().join(format!("rac-cache-test2-{}", std::process::id()));
        let path = dir.join("p.bin");
        let small = ConfigLattice::new(3);
        store_policy(&path, &tiny_policy(&small)).unwrap();
        let big = ConfigLattice::new(4);
        assert!(load_policy(&path, &big).is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_and_corrupt_files_miss() {
        let lattice = ConfigLattice::new(3);
        assert!(load_policy(Path::new("/nonexistent/rac.bin"), &lattice).is_none());
        let dir = std::env::temp_dir().join(format!("rac-cache-test3-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        fs::write(&path, b"not a policy").unwrap();
        assert!(load_policy(&path, &lattice).is_none());
        let _ = fs::remove_dir_all(dir);
    }
}
