//! Deterministic chaos harness: randomized fault schedules from
//! simkernel RNG seeds, plus the invariant checks the `figures chaos`
//! subcommand and `tests/chaos.rs` assert.
//!
//! A chaos run is a pure function of its seed: the schedule is drawn
//! from a [`Pcg64`] stream, the simulated system from the scenario's
//! own seed, and the RAC agent from its settings — so every run is
//! bit-identical across processes and `RAC_THREADS` settings, and any
//! invariant violation reproduces from the seed alone.

use ckpt::wire::{Reader, Writer};
use ckpt::{Snapshot, SnapshotWriter};
use rac::{
    BoundaryAction, Experiment, IterationRecord, RacAgent, ScenarioProgress, ScenarioRunOutcome,
};
use scenario::{Directive, Scenario, Tier};
use simkernel::{Pcg64, SimDuration};
use tpcw::Mix;
use vmstack::ResourceLevel;

use crate::{paper_system_spec, standard_settings, SLA_MS};

/// Seeds the CI chaos job and the integration tests pin.
pub const PINNED_SEEDS: [u64; 3] = [101, 202, 303];

/// Default measured iterations of a chaos scenario.
pub const DEFAULT_ITERATIONS: usize = 24;

/// Iterations the agent gets to re-satisfy the SLA after the last
/// fault clears (breaker cooldown + probe + one decision, with slack).
pub const RECOVERY_GRACE: usize = 6;

/// Longest tolerated run of iterations that miss the SLA (or lose
/// their sample entirely). Fault windows are capped well below this;
/// anything longer means the guardrails failed to contain the damage.
pub const MAX_VIOLATION_STREAK: usize = 12;

const INTERVAL_S: u64 = 60;

/// Builds the randomized fault schedule for `seed`: a guaranteed
/// breaker-tripping blackout and a retry-absorbed timeout, plus 2–4
/// further faults drawn from every injectable kind (blackout, timeout,
/// drop, outlier, noise, stall) — all inside the first two-thirds of
/// the run, leaving a clean tail in which recovery must happen.
pub fn chaos_scenario(seed: u64, iterations: usize) -> Scenario {
    let iterations = iterations.max(9);
    let mut rng = Pcg64::seed_from_u64(seed);
    // Faults land in [1, fault_end); the tail stays clean.
    let fault_end = (iterations as u64 * 2) / 3;
    let mut directives = Vec::new();
    // A mild intensity step keeps the workload time-varying without
    // pushing the 60-client system anywhere near the SLA on its own.
    directives.push(Directive::IntensityAt {
        t: SimDuration::from_secs(rng.below(fault_end.max(2)) * INTERVAL_S),
        value: 1.0 + rng.f64() * 0.5,
    });
    // Every seed exercises the full breaker lifecycle: one blackout
    // long enough to trip it, and one one-shot timeout for the retry
    // path. Only their positions are random.
    let blackout_ivals = 2 + rng.below(2);
    let blackout_latest = fault_end.saturating_sub(blackout_ivals).max(2);
    directives.push(Directive::Blackout {
        t: SimDuration::from_secs((1 + rng.below(blackout_latest - 1)) * INTERVAL_S),
        dur: SimDuration::from_secs(blackout_ivals * INTERVAL_S),
    });
    directives.push(Directive::Timeout {
        t: SimDuration::from_secs((1 + rng.below(fault_end.max(4) - 2)) * INTERVAL_S),
    });
    let faults = 2 + rng.below(3);
    for _ in 0..faults {
        let kind = rng.below(6);
        // Durations first, so the onset can be clamped to clear before
        // the fault window ends.
        let dur_ivals = match kind {
            0 => 2 + rng.below(2), // blackout: long enough to trip
            4 => 1 + rng.below(2), // noise
            _ => 0,
        };
        let latest = fault_end.saturating_sub(dur_ivals).max(2);
        let t = SimDuration::from_secs((1 + rng.below(latest - 1)) * INTERVAL_S);
        let dur = SimDuration::from_secs(dur_ivals * INTERVAL_S);
        directives.push(match kind {
            0 => Directive::Blackout { t, dur },
            1 => Directive::Timeout { t },
            2 => Directive::Drop { t },
            3 => Directive::Outlier {
                t,
                factor: 2.0 + rng.f64() * 6.0,
            },
            4 => Directive::Noise {
                t,
                factor: 1.5 + rng.f64(),
                dur,
            },
            _ => Directive::Stall {
                t,
                tier: if rng.chance(0.5) {
                    Tier::Web
                } else {
                    Tier::AppDb
                },
                dur: SimDuration::from_secs(30),
            },
        });
    }
    Scenario {
        name: format!("chaos-{seed}"),
        duration: SimDuration::from_secs(iterations as u64 * INTERVAL_S),
        interval: SimDuration::from_secs(INTERVAL_S),
        warmup: SimDuration::from_secs(INTERVAL_S),
        clients: Some(60),
        mix: Mix::Shopping,
        level: ResourceLevel::Level1,
        seed: Some(seed),
        directives,
    }
}

/// The measured interval (0-based) containing the end of the last
/// fault: from here on the schedule injects nothing and the agent must
/// recover.
pub fn last_fault_clear_iteration(scn: &Scenario) -> usize {
    let interval_us = scn.interval.as_micros();
    let mut clear_us = 0u64;
    for d in &scn.directives {
        let end = match *d {
            Directive::Blackout { t, dur } | Directive::Noise { t, dur, .. } => {
                t.as_micros() + dur.as_micros()
            }
            Directive::Stall { t, dur, .. } => t.as_micros() + dur.as_micros(),
            Directive::Timeout { t } | Directive::Drop { t } | Directive::Outlier { t, .. } => {
                t.as_micros()
            }
            _ => 0,
        };
        clear_us = clear_us.max(end);
    }
    (clear_us.div_ceil(interval_us)) as usize
}

/// Runs the chaos line-up: a cold-started RAC agent (no offline policy
/// library — the guardrails must carry it) through the scenario.
pub fn run_chaos(scn: &Scenario) -> Vec<IterationRecord> {
    let exp = Experiment::for_scenario(paper_system_spec(), scn);
    let mut agent = RacAgent::new(standard_settings());
    exp.run_scenario(scn, &mut agent)
}

/// The seeded `kill` fault arm: iteration boundaries at which the
/// process "dies" during a chaos run. Always includes one kill right
/// inside the guaranteed blackout window (breaker open, agent
/// degraded) plus 1–2 further seeded points, so process death composes
/// with measurement faults in a single run.
pub fn kill_points(seed: u64, scn: &Scenario) -> Vec<usize> {
    let mut rng = Pcg64::seed_from_u64(seed ^ 0x4B1A);
    let total = scn.iterations();
    let blackout_iter = scn
        .directives
        .iter()
        .find_map(|d| match d {
            Directive::Blackout { t, .. } => {
                Some((t.as_micros() / scn.interval.as_micros()) as usize)
            }
            _ => None,
        })
        .unwrap_or(1);
    let mut points = vec![(blackout_iter + 2).min(total - 1)];
    for _ in 0..1 + rng.below(2) {
        points.push(1 + rng.below(total as u64 - 1) as usize);
    }
    points.sort_unstable();
    points.dedup();
    points
}

/// Runs the chaos scenario with the process "killed" at each of
/// `kill_points` (sorted, in-range): at the kill boundary the agent's
/// state and the run progress go through their full wire forms — as a
/// fresh process would read them back — and a restored agent resumes.
/// Returns the finished series plus how many kills landed while the
/// measurement breaker was open (composing death with an outage).
///
/// # Panics
///
/// On snapshot/restore errors — the test harness treats those as
/// failures, not results.
pub fn run_chaos_killed(scn: &Scenario, kill_points: &[usize]) -> (Vec<IterationRecord>, usize) {
    let exp = Experiment::for_scenario(paper_system_spec(), scn);
    let mut agent = RacAgent::new(standard_settings());
    let mut progress: Option<ScenarioProgress> = None;
    let mut remaining = kill_points.to_vec();
    let mut kills_in_outage = 0usize;
    loop {
        let next_kill = remaining.first().copied();
        let mut snapshot_bytes = Vec::new();
        let outcome = exp
            .run_scenario_resumable(scn, &mut agent, progress.take(), |p, tuner| {
                if Some(p.iterations_done) == next_kill {
                    let mut snap = SnapshotWriter::new();
                    tuner.save_state(&mut snap);
                    snapshot_bytes = snap.to_bytes();
                    Ok(BoundaryAction::Stop)
                } else {
                    Ok(BoundaryAction::Continue)
                }
            })
            .expect("chaos kill-arm run");
        match outcome {
            ScenarioRunOutcome::Complete(series) => return (series, kills_in_outage),
            ScenarioRunOutcome::Interrupted(p) => {
                remaining.remove(0);
                if p.channel.is_open() {
                    kills_in_outage += 1;
                }
                // The "kill": everything a resume needs crosses the
                // wire, nothing survives in memory.
                let mut w = Writer::new();
                p.encode(&mut w);
                let bytes = w.into_bytes();
                let mut r = Reader::new(&bytes, "chaos-kill");
                let restored = ScenarioProgress::decode(&mut r).expect("progress decodes");
                r.finish().expect("progress fully consumed");
                let snap = Snapshot::from_bytes(&snapshot_bytes).expect("snapshot parses");
                agent = RacAgent::restore(&snap).expect("agent restores");
                progress = Some(restored);
            }
        }
    }
}

/// Checks the chaos invariants on a finished series. Returns one
/// human-readable message per violated invariant (empty = all hold).
///
/// 1. completeness — one record per scenario iteration;
/// 2. bounded violation streaks — never more than
///    [`MAX_VIOLATION_STREAK`] consecutive iterations miss the SLA or
///    lose their sample;
/// 3. recovery — within [`RECOVERY_GRACE`] iterations of the last
///    fault clearing, some iteration satisfies the SLA again.
pub fn check_invariants(scn: &Scenario, series: &[IterationRecord]) -> Vec<String> {
    let mut violations = Vec::new();
    if series.len() != scn.iterations() {
        violations.push(format!(
            "series has {} records, scenario runs {} iterations",
            series.len(),
            scn.iterations()
        ));
        return violations;
    }
    let bad = |r: &IterationRecord| !r.response_ms.is_finite() || r.response_ms > SLA_MS;

    let mut streak = 0usize;
    let mut worst = 0usize;
    for r in series {
        streak = if bad(r) { streak + 1 } else { 0 };
        worst = worst.max(streak);
    }
    if worst > MAX_VIOLATION_STREAK {
        violations.push(format!(
            "violation streak of {worst} iterations exceeds the {MAX_VIOLATION_STREAK} bound"
        ));
    }

    let clear = last_fault_clear_iteration(scn);
    let window_end = (clear + RECOVERY_GRACE).min(series.len());
    let recovered = series[clear.min(series.len())..window_end]
        .iter()
        .any(|r| !bad(r));
    if !recovered {
        violations.push(format!(
            "no SLA-satisfying iteration within {RECOVERY_GRACE} iterations of fault \
             clearance (iteration {clear})"
        ));
    }
    violations
}

/// The per-iteration chaos table written to `results/chaos-<seed>.csv`.
pub fn chaos_table(series: &[IterationRecord]) -> crate::output::TextTable {
    let mut t = crate::output::TextTable::new(&["iteration", "rt_ms", "p95_ms", "config"]);
    for r in series {
        t.row(&[
            r.iteration.to_string(),
            format!("{:.1}", r.response_ms),
            format!("{:.1}", r.p95_ms),
            r.config.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_fault_rich() {
        for seed in PINNED_SEEDS {
            let a = chaos_scenario(seed, DEFAULT_ITERATIONS);
            let b = chaos_scenario(seed, DEFAULT_ITERATIONS);
            assert_eq!(a, b, "schedule for seed {seed} not deterministic");
            assert!(a.directives.len() >= 5);
            let clear = last_fault_clear_iteration(&a);
            assert!(
                clear + RECOVERY_GRACE <= a.iterations(),
                "seed {seed}: no clean tail (clear at {clear} of {})",
                a.iterations()
            );
        }
    }

    #[test]
    fn distinct_seeds_draw_distinct_schedules() {
        let a = chaos_scenario(PINNED_SEEDS[0], DEFAULT_ITERATIONS);
        let b = chaos_scenario(PINNED_SEEDS[1], DEFAULT_ITERATIONS);
        assert_ne!(a.directives, b.directives);
    }

    #[test]
    fn invariant_checker_flags_planted_violations() {
        let scn = chaos_scenario(1, DEFAULT_ITERATIONS);
        let rec = |i: usize, rt: f64| IterationRecord {
            iteration: i,
            phase: 0,
            response_ms: rt,
            p95_ms: rt,
            throughput_rps: 10.0,
            config: websim::ServerConfig::default(),
        };
        // Wrong length.
        assert!(!check_invariants(&scn, &[]).is_empty());
        // A run that never recovers: everything violates.
        let dead: Vec<_> = (0..scn.iterations())
            .map(|i| rec(i, f64::INFINITY))
            .collect();
        let v = check_invariants(&scn, &dead);
        assert!(v.iter().any(|m| m.contains("streak")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("clearance")), "{v:?}");
        // A healthy run passes.
        let fine: Vec<_> = (0..scn.iterations()).map(|i| rec(i, 200.0)).collect();
        assert_eq!(check_invariants(&scn, &fine), Vec::<String>::new());
    }
}
