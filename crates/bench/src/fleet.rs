//! Fleet-run reporting: per-tenant and aggregate CSVs, the cold-vs-warm
//! comparison behind the transfer headline, and the tenants-vs-wall-clock
//! scaling curve.
//!
//! The per-tenant and aggregate artifacts are pure functions of a
//! finished [`FleetRun`], so CI byte-compares them across `RAC_THREADS`
//! settings. The scaling curve records wall-clock — inherently
//! machine- and thread-dependent — and is **excluded** from any byte
//! comparison.

use fleet::{FleetRun, TenantOutcome, TenantSpec};

use crate::output::TextTable;

/// Per-tenant CSV (`results/fleet-tenants.csv`): one row per tenant in
/// roster order — spec columns, then the (possibly warm-started) run's
/// outcome, then the matched cold control's (`ctl_*`, empty for
/// cold-wave tenants and `--no-control` runs).
pub fn tenants_csv(run: &FleetRun) -> String {
    let mut t = TextTable::new(&[
        "tenant",
        "clients",
        "mix",
        "level",
        "sla_ms",
        "scenario",
        "start",
        "donor",
        "distance",
        "iterations",
        "iters_to_sla",
        "attained",
        "mean_ms",
        "ctl_iters_to_sla",
        "ctl_attained",
        "ctl_mean_ms",
    ]);
    for (spec, o) in run.roster().iter().zip(run.outcomes()) {
        let (start, donor, distance) = match &o.donor {
            Some(d) => ("warm", d.name.clone(), format!("{:.6}", d.distance)),
            None => ("cold", String::new(), String::new()),
        };
        let (ctl_iters, ctl_attained, ctl_mean) = match &o.control {
            Some(c) => (
                c.iters_to_sla.to_string(),
                c.attained.to_string(),
                format!("{:.3}", c.mean_ms),
            ),
            None => (String::new(), String::new(), String::new()),
        };
        t.row(&[
            spec.name(),
            spec.clients.to_string(),
            spec.mix.label().to_string(),
            spec.level.label().to_string(),
            format!("{:.0}", spec.sla_ms),
            spec.scenario.to_string(),
            start.to_string(),
            donor,
            distance,
            o.iterations.to_string(),
            o.iters_to_sla.to_string(),
            o.attained.to_string(),
            format!("{:.3}", o.mean_ms),
            ctl_iters,
            ctl_attained,
            ctl_mean,
        ]);
    }
    t.render_csv()
}

/// One cohort's aggregate row.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortStats {
    /// Cohort label (`cold`, `warm`, `warm-control`, `all`).
    pub cohort: &'static str,
    /// Tenants in the cohort.
    pub tenants: usize,
    /// Mean iterations-to-SLA (horizon counts as the full series).
    pub mean_iters_to_sla: f64,
    /// Median iterations-to-SLA.
    pub median_iters_to_sla: f64,
    /// Tenants that settled (reached their SLA streak before the
    /// horizon).
    pub settled: usize,
    /// SLA attainment: compliant iterations over all iterations, as a
    /// percentage.
    pub attainment_pct: f64,
    /// Mean response time across all cohort iterations (ms).
    pub mean_ms: f64,
}

/// One tenant session's results, flattened so primary runs and their
/// matched controls aggregate through the same path.
struct Row {
    iters_to_sla: usize,
    iterations: usize,
    attained: usize,
    mean_ms: f64,
}

impl Row {
    fn primary(o: &TenantOutcome) -> Row {
        Row {
            iters_to_sla: o.iters_to_sla,
            iterations: o.iterations,
            attained: o.attained,
            mean_ms: o.mean_ms,
        }
    }

    fn control(o: &TenantOutcome) -> Option<Row> {
        o.control.as_ref().map(|c| Row {
            iters_to_sla: c.iters_to_sla,
            iterations: o.iterations,
            attained: c.attained,
            mean_ms: c.mean_ms,
        })
    }
}

fn cohort_stats(cohort: &'static str, rows: &[Row]) -> CohortStats {
    let tenants = rows.len();
    if tenants == 0 {
        return CohortStats {
            cohort,
            tenants: 0,
            mean_iters_to_sla: f64::NAN,
            median_iters_to_sla: f64::NAN,
            settled: 0,
            attainment_pct: f64::NAN,
            mean_ms: f64::NAN,
        };
    }
    let mut iters: Vec<usize> = rows.iter().map(|r| r.iters_to_sla).collect();
    iters.sort_unstable();
    let median = if tenants % 2 == 1 {
        iters[tenants / 2] as f64
    } else {
        (iters[tenants / 2 - 1] + iters[tenants / 2]) as f64 / 2.0
    };
    let total_iters: usize = rows.iter().map(|r| r.iterations).sum();
    let attained: usize = rows.iter().map(|r| r.attained).sum();
    CohortStats {
        cohort,
        tenants,
        mean_iters_to_sla: iters.iter().sum::<usize>() as f64 / tenants as f64,
        median_iters_to_sla: median,
        settled: rows
            .iter()
            .filter(|r| r.iters_to_sla < r.iterations)
            .count(),
        attainment_pct: 100.0 * attained as f64 / total_iters.max(1) as f64,
        mean_ms: rows.iter().map(|r| r.mean_ms).sum::<f64>() / tenants as f64,
    }
}

/// Cold-wave, warm, warm-control, and whole-fleet aggregates, in that
/// order. The `warm`-vs-`warm-control` pair is the transfer headline:
/// identical tenant rosters, the only difference being the warm start —
/// unlike `warm` vs `cold`, which compares *different* tenants and so
/// also measures roster composition.
pub fn aggregate(run: &FleetRun) -> [CohortStats; 4] {
    let outcomes = run.outcomes();
    let cold: Vec<Row> = outcomes
        .iter()
        .filter(|o| o.donor.is_none())
        .map(Row::primary)
        .collect();
    let warm: Vec<Row> = outcomes
        .iter()
        .filter(|o| o.donor.is_some())
        .map(Row::primary)
        .collect();
    let control: Vec<Row> = outcomes.iter().filter_map(Row::control).collect();
    let all: Vec<Row> = outcomes.iter().map(Row::primary).collect();
    [
        cohort_stats("cold", &cold),
        cohort_stats("warm", &warm),
        cohort_stats("warm-control", &control),
        cohort_stats("all", &all),
    ]
}

/// The aggregate table (also rendered to
/// `results/fleet-aggregate.csv`).
pub fn aggregate_table(stats: &[CohortStats]) -> TextTable {
    let mut t = TextTable::new(&[
        "cohort",
        "tenants",
        "mean_iters_to_sla",
        "median_iters_to_sla",
        "settled",
        "sla_attainment_pct",
        "mean_ms",
    ]);
    for s in stats {
        t.row(&[
            s.cohort.to_string(),
            s.tenants.to_string(),
            format!("{:.3}", s.mean_iters_to_sla),
            format!("{:.1}", s.median_iters_to_sla),
            s.settled.to_string(),
            format!("{:.2}", s.attainment_pct),
            format!("{:.3}", s.mean_ms),
        ]);
    }
    t
}

/// The tenants-vs-wall-clock scaling curve
/// (`results/fleet-scaling.csv`): one row per step boundary. Wall-clock
/// data — never byte-compared.
pub fn scaling_csv(threads: usize, milestones: &[(usize, f64)]) -> String {
    let mut t = TextTable::new(&["tenants_done", "wall_clock_s", "tenants_per_s", "threads"]);
    for &(done, secs) in milestones {
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        t.row(&[
            done.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.3}"),
            threads.to_string(),
        ]);
    }
    t.render_csv()
}

/// Roster listing for `figures fleet --list`: the generated tenants,
/// no simulation.
pub fn roster_table(roster: &[TenantSpec]) -> TextTable {
    let mut t = TextTable::new(&[
        "tenant", "clients", "mix", "level", "sla_ms", "scenario", "seed",
    ]);
    for spec in roster {
        t.row(&[
            spec.name(),
            spec.clients.to_string(),
            spec.mix.label().to_string(),
            spec.level.label().to_string(),
            format!("{:.0}", spec.sla_ms),
            spec.scenario.to_string(),
            format!("{:#018x}", spec.seed),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet::{FleetConfig, FleetRun};
    use rac::runner::Runner;

    fn finished_run() -> FleetRun {
        let mut run = FleetRun::new(FleetConfig {
            tenants: 5,
            seed: 11,
            cold: 2,
            chunk: 2,
            scale_den: 60,
            online_levels: 3,
            control: true,
            radius: 2.0,
        })
        .unwrap();
        let runner = Runner::new(2);
        while !run.is_complete() {
            run.step(&runner).unwrap();
        }
        run
    }

    #[test]
    fn tenant_csv_has_spec_and_outcome_columns() {
        let run = finished_run();
        let csv = tenants_csv(&run);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "tenant,clients,mix,level,sla_ms,scenario,start,donor,distance,iterations,\
             iters_to_sla,attained,mean_ms,ctl_iters_to_sla,ctl_attained,ctl_mean_ms"
        );
        assert_eq!(csv.lines().count(), 6);
        // Cold rows carry no donor and no control; warm rows carry both.
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert!(rows[0].contains(",cold,,"));
        assert!(rows[0].ends_with(",,,"));
        assert!(rows[4].contains(",warm,t"));
        assert!(!rows[4].ends_with(",,,"));
    }

    #[test]
    fn aggregate_partitions_and_totals_are_consistent() {
        let run = finished_run();
        let [cold, warm, control, all] = aggregate(&run);
        assert_eq!(cold.tenants, 2);
        assert_eq!(warm.tenants, 3);
        assert_eq!(control.tenants, 3, "every warm tenant runs a control");
        assert_eq!(all.tenants, 5);
        assert_eq!(cold.settled + warm.settled, all.settled);
        for s in [&cold, &warm, &control, &all] {
            assert!(s.mean_iters_to_sla.is_finite());
            assert!((0.0..=100.0).contains(&s.attainment_pct), "{s:?}");
        }
        let csv = aggregate_table(&aggregate(&run)).render_csv();
        assert!(csv.starts_with("cohort,tenants,mean_iters_to_sla,"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn scaling_csv_reports_rates() {
        let csv = scaling_csv(8, &[(50, 10.0), (100, 18.0)]);
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows[0], "tenants_done,wall_clock_s,tenants_per_s,threads");
        assert_eq!(rows[1], "50,10.000,5.000,8");
        assert!(rows[2].starts_with("100,18.000,5.556,"));
    }

    #[test]
    fn roster_table_lists_without_running() {
        let roster = fleet::generate(4, 42);
        let t = roster_table(&roster);
        assert_eq!(t.len(), 4);
        assert!(t
            .render_csv()
            .starts_with("tenant,clients,mix,level,sla_ms,scenario,seed"));
    }
}
