//! Tournament harness behind `figures tournament`: RAC versus
//! trial-and-error versus the static default across hundreds of
//! generated scenarios.
//!
//! Each matchup draws one scenario from [`scenario::gen`] (difficulty
//! cycling calm → brisk → stormy unless `--profile` pins one), runs all
//! three arms through it sequentially, and scores the arms on the mean
//! response time over the scenario. Matchups are sharded across the
//! global [`rac::Runner`] — `run_tasks` returns results in submission
//! order, and each matchup is internally sequential, so the tournament
//! is a pure function of `(seed, N)`: the CSVs are byte-identical at
//! any `RAC_THREADS` setting.
//!
//! The RAC arm starts cold (no offline policy library), exactly like
//! the chaos harness: the tournament measures *online adaptation* on
//! never-seen-before workloads, where a library trained on the six
//! Table-2 contexts would be an unearned head start for one arm and a
//! disk-cache dependency for CI.

use rac::{Experiment, IterationRecord, RacAgent, Runner, StaticDefault, TrialAndError, Tuner};
use scenario::{gen, Difficulty, Scenario};

use crate::output::TextTable;
use crate::{paper_system_spec, standard_settings, ONLINE_LEVELS, SLA_MS};

/// Arm display names, in run (and CSV column) order.
pub const ARMS: [&str; 3] = ["RAC", "trial-and-error", "static-default"];

/// Index of the static-default arm — the baseline the scoreboard's
/// delta columns are measured against.
pub const BASELINE_ARM: usize = 2;

/// Golden-ratio stride decorrelating per-matchup scenario seeds.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tournament configuration (the parsed `figures tournament` CLI).
#[derive(Debug, Clone, Copy)]
pub struct TournamentOptions {
    /// Number of generated scenarios (matchups).
    pub scenarios: usize,
    /// Base seed; matchup `i` uses `seed + i * SEED_STRIDE` (wrapping).
    pub seed: u64,
    /// Compress every scenario's timeline 3× (`Scenario::scaled(1, 3)`).
    pub quick: bool,
    /// Pin one difficulty instead of cycling through all three.
    pub profile: Option<Difficulty>,
}

impl Default for TournamentOptions {
    fn default() -> Self {
        TournamentOptions {
            scenarios: 200,
            seed: 42,
            quick: false,
            profile: None,
        }
    }
}

/// One arm's summary over a single scenario.
#[derive(Debug, Clone, Copy)]
pub struct ArmScore {
    /// Mean response over the finite iterations (ms); NaN if none.
    pub mean_ms: f64,
    /// 95th percentile of the finite per-iteration responses (ms).
    pub p95_ms: f64,
    /// Fraction of iterations violating the SLA (dropped intervals —
    /// infinite response — count as violations).
    pub sla_rate: f64,
}

/// One scenario's results across all three arms.
#[derive(Debug, Clone)]
pub struct Matchup {
    /// Generated scenario name (`gen-<difficulty>-<seed>`).
    pub scenario: String,
    /// The scenario's derived seed.
    pub seed: u64,
    /// Difficulty the scenario was drawn at.
    pub difficulty: Difficulty,
    /// Scores in [`ARMS`] order.
    pub arms: [ArmScore; 3],
}

impl Matchup {
    /// The minimal mean among the arms (NaN-safe: NaN never wins).
    fn best_mean(&self) -> f64 {
        self.arms
            .iter()
            .map(|a| a.mean_ms)
            .filter(|m| m.is_finite())
            .fold(f64::INFINITY, f64::min)
    }

    /// `(wins, ties)` membership for arm `i`: a win is a strictly
    /// unique minimal mean, a tie is sharing the exact minimal mean.
    pub fn outcome(&self, i: usize) -> MatchOutcome {
        let best = self.best_mean();
        let mine = self.arms[i].mean_ms;
        if !mine.is_finite() || mine > best {
            return MatchOutcome::Loss;
        }
        let at_best = self
            .arms
            .iter()
            .filter(|a| a.mean_ms.is_finite() && a.mean_ms <= best)
            .count();
        if at_best == 1 {
            MatchOutcome::Win
        } else {
            MatchOutcome::Tie
        }
    }
}

/// How one arm fared in one matchup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// Strictly lowest mean response.
    Win,
    /// Shared the lowest mean response bit-for-bit.
    Tie,
    /// Beaten by at least one other arm.
    Loss,
}

/// The per-matchup scenario for slot `i` of a tournament, plus its
/// derived seed and difficulty. Exposed so tests and the perf suite can
/// reconstruct exactly what the harness runs.
pub fn scenario_for(opts: &TournamentOptions, i: usize) -> (Scenario, u64, Difficulty) {
    let seed = opts.seed.wrapping_add((i as u64).wrapping_mul(SEED_STRIDE));
    let difficulty = opts
        .profile
        .unwrap_or_else(|| Difficulty::all()[i % Difficulty::all().len()]);
    let scn = gen::generate(seed, difficulty);
    let scn = if opts.quick { scn.scaled(1, 3) } else { scn };
    (scn, seed, difficulty)
}

fn score(series: &[IterationRecord]) -> ArmScore {
    let mut finite: Vec<f64> = series
        .iter()
        .map(|r| r.response_ms)
        .filter(|x| x.is_finite())
        .collect();
    finite.sort_by(f64::total_cmp);
    let mean_ms = if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };
    let p95_ms = if finite.is_empty() {
        f64::NAN
    } else {
        // Nearest-rank ceil(0.95 * (len-1)) in integer arithmetic, so
        // the index is identical on every platform.
        finite[((finite.len() - 1) * 95).div_ceil(100)]
    };
    let violations = series
        .iter()
        .filter(|r| !r.response_ms.is_finite() || r.response_ms > SLA_MS)
        .count();
    ArmScore {
        mean_ms,
        p95_ms,
        sla_rate: violations as f64 / series.len().max(1) as f64,
    }
}

/// Runs matchup `i` of the tournament: one generated scenario through
/// all three arms, sequentially (purity within the matchup; the fan-out
/// is across matchups).
pub fn run_matchup(opts: &TournamentOptions, i: usize) -> Matchup {
    let (scn, seed, difficulty) = scenario_for(opts, i);
    let exp = Experiment::for_scenario(paper_system_spec(), &scn);
    let mut rac_agent = RacAgent::new(standard_settings());
    let mut tae = TrialAndError::new(ONLINE_LEVELS);
    let mut dflt = StaticDefault::new();
    let tuners: [&mut dyn Tuner; 3] = [&mut rac_agent, &mut tae, &mut dflt];
    let mut arms = [ArmScore {
        mean_ms: f64::NAN,
        p95_ms: f64::NAN,
        sla_rate: 0.0,
    }; 3];
    for (slot, tuner) in tuners.into_iter().enumerate() {
        arms[slot] = score(&exp.run_scenario(&scn, tuner));
    }
    Matchup {
        scenario: scn.name,
        seed,
        difficulty,
        arms,
    }
}

/// Runs the whole tournament, sharded over the global runner. Results
/// come back in matchup order regardless of `RAC_THREADS`.
pub fn run(opts: &TournamentOptions) -> Vec<Matchup> {
    Runner::global().run_tasks(opts.scenarios, |i| run_matchup(opts, i))
}

/// One arm's aggregate line on the scoreboard.
#[derive(Debug, Clone)]
pub struct ScoreboardRow {
    /// Arm display name.
    pub arm: &'static str,
    /// Matchups won outright / tied for best / lost.
    pub wins: usize,
    /// Exact shared-best matchups.
    pub ties: usize,
    /// Matchups some other arm won or tied ahead of this one.
    pub losses: usize,
    /// Mean of the per-scenario mean responses (finite scenarios only).
    pub mean_ms: f64,
    /// Mean of the per-scenario p95 responses.
    pub p95_ms: f64,
    /// Delta of `mean_ms` against the static-default arm.
    pub mean_delta_ms: f64,
    /// Delta of `p95_ms` against the static-default arm.
    pub p95_delta_ms: f64,
    /// Mean per-scenario SLA-violation rate.
    pub sla_rate: f64,
}

fn finite_mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Aggregates the matchups into one scoreboard row per arm.
pub fn scoreboard(matchups: &[Matchup]) -> Vec<ScoreboardRow> {
    let agg = |i: usize| {
        (
            finite_mean(matchups.iter().map(|m| m.arms[i].mean_ms)),
            finite_mean(matchups.iter().map(|m| m.arms[i].p95_ms)),
            finite_mean(matchups.iter().map(|m| m.arms[i].sla_rate)),
        )
    };
    let (base_mean, base_p95, _) = agg(BASELINE_ARM);
    ARMS.iter()
        .enumerate()
        .map(|(i, arm)| {
            let mut wins = 0;
            let mut ties = 0;
            let mut losses = 0;
            for m in matchups {
                match m.outcome(i) {
                    MatchOutcome::Win => wins += 1,
                    MatchOutcome::Tie => ties += 1,
                    MatchOutcome::Loss => losses += 1,
                }
            }
            let (mean_ms, p95_ms, sla_rate) = agg(i);
            ScoreboardRow {
                arm,
                wins,
                ties,
                losses,
                mean_ms,
                p95_ms,
                mean_delta_ms: mean_ms - base_mean,
                p95_delta_ms: p95_ms - base_p95,
                sla_rate,
            }
        })
        .collect()
}

/// The per-scenario matchup table (`results/tournament-matchups.csv`).
/// Fixed `{:.3}` formatting keeps the bytes identical across runs.
pub fn matchups_table(matchups: &[Matchup]) -> TextTable {
    let mut headers = vec!["scenario".to_string(), "seed".into(), "difficulty".into()];
    for arm in ARMS {
        headers.push(format!("{arm}_mean_ms"));
        headers.push(format!("{arm}_p95_ms"));
        headers.push(format!("{arm}_sla_rate"));
    }
    headers.push("winner".into());
    let refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&refs);
    for m in matchups {
        let mut cells = vec![
            m.scenario.clone(),
            m.seed.to_string(),
            m.difficulty.label().to_string(),
        ];
        for a in &m.arms {
            cells.push(format!("{:.3}", a.mean_ms));
            cells.push(format!("{:.3}", a.p95_ms));
            cells.push(format!("{:.3}", a.sla_rate));
        }
        let winner = (0..ARMS.len())
            .find(|&i| m.outcome(i) == MatchOutcome::Win)
            .map(|i| ARMS[i])
            .unwrap_or("tie");
        cells.push(winner.to_string());
        t.row(&cells);
    }
    t
}

/// The scoreboard table (`results/tournament-scoreboard.csv`).
pub fn scoreboard_table(rows: &[ScoreboardRow]) -> TextTable {
    let mut t = TextTable::new(&[
        "arm",
        "wins",
        "ties",
        "losses",
        "mean_ms",
        "p95_ms",
        "mean_delta_ms",
        "p95_delta_ms",
        "sla_rate",
    ]);
    for r in rows {
        t.row(&[
            r.arm.to_string(),
            r.wins.to_string(),
            r.ties.to_string(),
            r.losses.to_string(),
            format!("{:.3}", r.mean_ms),
            format!("{:.3}", r.p95_ms),
            format!("{:.3}", r.mean_delta_ms),
            format!("{:.3}", r.p95_delta_ms),
            format!("{:.3}", r.sla_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matchup(means: [f64; 3]) -> Matchup {
        let arm = |mean_ms: f64| ArmScore {
            mean_ms,
            p95_ms: mean_ms * 2.0,
            sla_rate: 0.1,
        };
        Matchup {
            scenario: "gen-test-1".into(),
            seed: 1,
            difficulty: Difficulty::Calm,
            arms: [arm(means[0]), arm(means[1]), arm(means[2])],
        }
    }

    #[test]
    fn outcomes_distinguish_win_tie_loss() {
        let m = matchup([100.0, 200.0, 300.0]);
        assert_eq!(m.outcome(0), MatchOutcome::Win);
        assert_eq!(m.outcome(1), MatchOutcome::Loss);
        let t = matchup([100.0, 100.0, 300.0]);
        assert_eq!(t.outcome(0), MatchOutcome::Tie);
        assert_eq!(t.outcome(1), MatchOutcome::Tie);
        assert_eq!(t.outcome(2), MatchOutcome::Loss);
        // An all-dropped arm can only lose.
        let n = matchup([f64::NAN, 150.0, 300.0]);
        assert_eq!(n.outcome(0), MatchOutcome::Loss);
        assert_eq!(n.outcome(1), MatchOutcome::Win);
    }

    #[test]
    fn scoreboard_counts_and_deltas() {
        let ms = vec![
            matchup([100.0, 200.0, 300.0]),
            matchup([250.0, 200.0, 300.0]),
        ];
        let rows = scoreboard(&ms);
        assert_eq!(rows.len(), 3);
        assert_eq!((rows[0].wins, rows[0].losses), (1, 1));
        assert_eq!((rows[1].wins, rows[1].losses), (1, 1));
        assert_eq!((rows[2].wins, rows[2].losses), (0, 2));
        // Baseline deltas are zero for the static-default row itself.
        assert_eq!(rows[BASELINE_ARM].mean_delta_ms, 0.0);
        assert!((rows[0].mean_delta_ms - (175.0 - 300.0)).abs() < 1e-9);
    }

    #[test]
    fn score_handles_drops_and_percentiles() {
        let rec = |rt: f64| IterationRecord {
            iteration: 0,
            phase: 0,
            response_ms: rt,
            p95_ms: rt,
            throughput_rps: 10.0,
            config: websim::ServerConfig::default(),
        };
        let series: Vec<IterationRecord> = (1..=19)
            .map(|i| rec(i as f64 * 100.0))
            .chain(std::iter::once(rec(f64::INFINITY)))
            .collect();
        let s = score(&series);
        // 19 finite samples 100..1900; mean 1000, p95 at ceil(.95*18)=18.
        assert!((s.mean_ms - 1000.0).abs() < 1e-9);
        assert_eq!(s.p95_ms, 1900.0);
        // > 1000 ms: 1100..1900 (9 samples) plus the dropped interval.
        assert!((s.sla_rate - 10.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_for_is_deterministic_and_cycles_difficulty() {
        let opts = TournamentOptions {
            scenarios: 6,
            ..TournamentOptions::default()
        };
        let (a, seed_a, da) = scenario_for(&opts, 0);
        let (b, _, _) = scenario_for(&opts, 0);
        assert_eq!(a, b);
        assert_eq!(seed_a, opts.seed);
        assert_eq!(da, Difficulty::Calm);
        let (_, _, d1) = scenario_for(&opts, 1);
        let (_, _, d4) = scenario_for(&opts, 4);
        assert_eq!(d1, Difficulty::Brisk);
        assert_eq!(d4, Difficulty::Brisk);
        let pinned = TournamentOptions {
            profile: Some(Difficulty::Stormy),
            ..opts
        };
        let (_, _, dp) = scenario_for(&pinned, 1);
        assert_eq!(dp, Difficulty::Stormy);
    }

    #[test]
    fn csv_formats_are_stable() {
        let rows = scoreboard(&[matchup([100.0, 200.0, 300.0])]);
        let csv = scoreboard_table(&rows).render_csv();
        assert!(csv.starts_with(
            "arm,wins,ties,losses,mean_ms,p95_ms,mean_delta_ms,p95_delta_ms,sla_rate\n"
        ));
        assert!(csv.contains("RAC,1,0,0,100.000,200.000,-200.000,-400.000,0.100"));
        let mcsv = matchups_table(&[matchup([100.0, 200.0, 300.0])]).render_csv();
        assert!(mcsv.contains("gen-test-1,1,calm,100.000"));
        assert!(mcsv.trim_end().ends_with("RAC"));
    }
}
