//! Reproduction harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run --release -p rac-bench --bin figures -- all
//! cargo run --release -p rac-bench --bin figures -- fig5
//! cargo run --release -p rac-bench --bin figures -- fig2 --quick
//! cargo run --release -p rac-bench --bin figures -- scenario diurnal
//! cargo run --release -p rac-bench --bin figures -- scenario --list
//! cargo run --release -p rac-bench --bin figures -- fleet            # 200 tenants
//! cargo run --release -p rac-bench --bin figures -- fleet 64 --seed 7 --quick
//! cargo run --release -p rac-bench --bin figures -- fleet --list
//! cargo run --release -p rac-bench --bin figures -- chaos            # pinned CI seeds
//! cargo run --release -p rac-bench --bin figures -- chaos 7 --iterations 36
//! cargo run --release -p rac-bench --bin figures -- crashdrill       # default drill seeds
//! cargo run --release -p rac-bench --bin figures -- crashdrill 7 --iterations 36
//! cargo run --release -p rac-bench --bin figures -- bench            # writes BENCH_9.json
//! cargo run --release -p rac-bench --bin figures -- bench --quick --check BENCH_9.json
//! cargo run --release -p rac-bench --bin figures -- tournament       # 200 generated scenarios
//! cargo run --release -p rac-bench --bin figures -- tournament 24 --quick --seed 7
//! RAC_THREADS=8 cargo run --release -p rac-bench --bin figures -- all
//! RAC_OBS=trace cargo run --release -p rac-bench --bin figures -- fig5
//!
//! # Crash-safe scenario runs
//! figures -- scenario flash-crowd --checkpoint ckpts
//! figures -- scenario flash-crowd --checkpoint ckpts --stop-after 10
//! figures -- scenario flash-crowd --resume ckpts/scenario-flash-crowd.ckpt
//! figures -- scenario diurnal --warm-start ckpts/scenario-flash-crowd.ckpt
//! ```
//!
//! `--checkpoint <dir>` snapshots the whole tuner line-up (learned
//! state, recorded series, decision-trace prefix) to
//! `<dir>/scenario-<name>.ckpt` every `--checkpoint-every N` (default 5)
//! line-up iterations, atomically. `--stop-after N` exits cleanly after
//! N iterations; `--resume <file>` picks the run back up and finishes
//! it, producing CSV and trace output byte-identical to an
//! uninterrupted run. `--warm-start <file>` seeds a fresh run's RAC
//! agent with the policy library stored in a previous run's checkpoint
//! instead of training/loading one from the cache.
//!
//! Each subcommand prints the series/rows the paper reports and writes a
//! CSV under `results/`. Offline-trained policies are cached under
//! `results/cache/`. Progress and timing chatter goes to stderr through
//! the obs console exporter; `--quiet` (or `RAC_OBS=off`) silences it
//! without touching the stdout report or the on-disk artifacts.
//!
//! With `RAC_OBS=trace`, each figure additionally drops a deterministic
//! decision trace at `results/<cmd>.trace.jsonl` (replay it with the
//! `inspect_trace` bin), and every run writes a metrics snapshot to
//! `results/metrics.prom` + `results/metrics.csv` unless observability
//! is off.
//!
//! Independent figure jobs run **concurrently** on the global parallel
//! runner (`RAC_THREADS` workers; see `rac::runner`), each buffering its
//! report so output appears in submission order with per-job wall-clock
//! timing — byte-identical to a serial run at any thread count. The
//! shared policy library is built once up front; measurement-level
//! fan-out inside each figure goes through the same runner, so points
//! shared between figures (e.g. the default configuration) simulate
//! only once per process.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use obs::{Console, TraceWriter};

use rac::{
    grouping, maxclients_sweep, paper_contexts, Experiment, IterationRecord, MeasureJob,
    PolicyLibrary, RacAgent, RacSettings, Runner, SimMeasurer, StaticDefault, TrialAndError, Tuner,
};
use rac_bench::checkpoint::{CheckpointOptions, LineupOutcome};
use rac_bench::output::{ascii_chart, TextTable};
use rac_bench::perfsuite;
use rac_bench::{
    paper_system_spec, standard_policy_library, standard_settings, ONLINE_LEVELS, SLA_MS,
};
use scenario::Scenario;
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{Param, ServerConfig, SystemSpec};

/// Global run options.
#[derive(Debug, Clone)]
struct Options {
    /// Shrink intervals/iterations for a fast smoke run.
    quick: bool,
    results_dir: PathBuf,
}

impl Options {
    fn interval(&self) -> SimDuration {
        SimDuration::from_secs(if self.quick { 90 } else { 300 })
    }

    fn warmup(&self) -> SimDuration {
        SimDuration::from_secs(if self.quick { 120 } else { 600 })
    }

    fn iters(&self, full: usize) -> usize {
        if self.quick {
            (full / 3).max(5)
        } else {
            full
        }
    }

    fn cache_dir(&self) -> PathBuf {
        self.results_dir.join("cache")
    }
}

const ALL_CMDS: [&str; 12] = [
    "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10",
];

fn needs_library(cmd: &str) -> bool {
    matches!(cmd, "fig5" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10")
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--serve <addr>` is global: extract it (and its value) before any
    // sub-grammar sees the tail, then start the embedded observability
    // server so it is already answering while the policy library builds.
    let serve_addr = extract_serve_flag(&mut args);
    let live = serve_addr.is_some();
    let quick = args.iter().any(|a| a == "--quick");
    let quiet = args.iter().any(|a| a == "--quiet");
    let cmds: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let opts = Options {
        quick,
        results_dir: PathBuf::from("results"),
    };
    let console = Console::from_env(quiet);
    let _server = serve_addr.map(|addr| start_obs_server(&addr));

    // `scenario` is its own sub-grammar (operands are scenario names or
    // .scn paths, plus `--list` and the checkpoint flags, some of which
    // take values), so it gets the *raw* argument tail and branches off
    // before the figure validation below.
    if cmds.first() == Some(&"scenario") {
        run_scenarios(subcommand_tail(&args, "scenario"), &opts, &console, live);
        return;
    }

    // `chaos` likewise: operands are RNG seeds (default: the pinned CI
    // seeds), and the exit code reports invariant violations.
    if cmds.first() == Some(&"chaos") {
        run_chaos_harness(subcommand_tail(&args, "chaos"), &opts, &console);
        return;
    }

    // `crashdrill` likewise: operands are drill seeds; each seed
    // SIGKILLs a live racd daemon at seeded points and asserts the
    // recovered output is byte-identical to an uninterrupted run.
    if cmds.first() == Some(&"crashdrill") {
        run_crashdrill(subcommand_tail(&args, "crashdrill"), &opts, &console);
        return;
    }

    // `bench` likewise: runs the perf-trajectory suite and writes (or,
    // with --check, regression-tests against) a BENCH_<n>.json; its
    // --out/--check flags take values.
    if cmds.first() == Some(&"bench") {
        run_bench_suite(subcommand_tail(&args, "bench"), &console);
        return;
    }

    // `fleet` likewise: the operand is a tenant count, and the flags
    // (seed, cold wave, chunking, checkpointing) form a sub-grammar.
    if cmds.first() == Some(&"fleet") {
        run_fleet(subcommand_tail(&args, "fleet"), &opts, &console);
        return;
    }

    // `tournament` likewise: the operand is a scenario count, with
    // seed/profile/out flags.
    if cmds.first() == Some(&"tournament") {
        run_tournament(subcommand_tail(&args, "tournament"), &opts, &console);
        return;
    }

    // `profile` runs one scenario line-up under the hierarchical
    // self-profiler and reports where the wall-clock went.
    if cmds.first() == Some(&"profile") {
        run_profile(subcommand_tail(&args, "profile"), &opts, &console);
        return;
    }

    let selected: Vec<&str> = if cmds.is_empty() || cmds.contains(&"all") {
        ALL_CMDS.to_vec()
    } else {
        cmds
    };
    for cmd in &selected {
        if !ALL_CMDS.contains(cmd) {
            eprintln!("unknown experiment: {cmd}");
            top_usage();
        }
    }

    // The policy library feeds six figures; build it once before the
    // fan-out so concurrent jobs share it (and the disk cache sees a
    // single writer).
    let library = if selected.iter().any(|c| needs_library(c)) {
        Some(standard_policy_library(&opts.cache_dir()))
    } else {
        None
    };

    let runner = Runner::global();
    if obs::enabled() {
        obs::health::global().begin_job(&format!("figures {}", selected.join(" ")));
    }
    console.note(format!(
        "figures: {} job(s) across {} worker thread(s) [RAC_THREADS]",
        selected.len(),
        runner.threads()
    ));
    let started = Instant::now();
    let tracing = obs::tracing_enabled();
    let reports = runner.run_tasks(selected.len(), |i| {
        let cmd = selected[i];
        let _span = obs::Span::start("figure");
        let mut out = String::new();
        let t0 = Instant::now();
        // Each figure gets its own trace scope: the scope is
        // thread-local and the figure job is single-threaded (its
        // measurement fan-out happens in untraced workers), so the
        // JSONL is deterministic per figure at any RAC_THREADS.
        let trace = if tracing {
            let writer = Arc::new(TraceWriter::new());
            obs::trace::with_writer(&writer, || {
                run_figure(cmd, &opts, library.as_ref(), &mut out)
            });
            Some(writer)
        } else {
            run_figure(cmd, &opts, library.as_ref(), &mut out);
            None
        };
        (out, t0.elapsed().as_secs_f64(), trace)
    });
    for (cmd, (out, secs, trace)) in selected.iter().zip(&reports) {
        print!("{out}");
        if let Some(writer) = trace {
            let path = opts.results_dir.join(format!("{cmd}.trace.jsonl"));
            match writer.write_to(&path) {
                Ok(()) => {
                    console.note(format!("  -> {} ({} events)", path.display(), writer.len()))
                }
                Err(e) => eprintln!("  could not write {}: {e}", path.display()),
            }
        }
        console.note(format!("  [{cmd}: {secs:.1}s wall-clock]"));
    }
    let stats = runner.cache_stats();
    console.note(format!(
        "\ntotal: {:.1}s wall-clock, {:.1}s summed over jobs ({} simulations, {} cache hits)",
        started.elapsed().as_secs_f64(),
        reports.iter().map(|(_, s, _)| s).sum::<f64>(),
        stats.misses,
        stats.hits
    ));
    write_metrics_snapshot(&opts, &console);
    if obs::enabled() {
        obs::health::global().finish_job(true);
    }
}

/// Prints the top-level usage synopsis and exits 2 — the shared exit
/// for every malformed top-level invocation.
fn top_usage() -> ! {
    eprintln!(
        "available: table1 table2 fig1..fig10 all | scenario <name|file.scn> [--list] \
         [--quick] [--quiet] | fleet [<tenants>] [--list] [--seed N] | chaos [<seed>...] \
         [--iterations <n>] | bench [--quick] \
         [--out <path>] [--check <committed.json>] | \
         tournament [<scenarios>] [--seed N] [--profile <calm|brisk|stormy>] [--out <dir>] \
         [--quick] | profile <name|file.scn> [--quick] | crashdrill [<seed>...] \
         [--iterations <n>]\n\
         global: --serve <addr> exposes /metrics, /healthz and /profile over HTTP \
         while the run executes"
    );
    std::process::exit(2);
}

/// The argument tail after the subcommand token the dispatch matched.
/// The token always exists (it came from scanning `args`), but if the
/// scan ever drifts the user gets the usage message and exit 2, never a
/// panic.
fn subcommand_tail<'a>(args: &'a [String], cmd: &str) -> &'a [String] {
    match args.iter().position(|a| a == cmd) {
        Some(pos) => &args[pos + 1..],
        None => {
            eprintln!("figures: cannot locate `{cmd}` among the arguments");
            top_usage();
        }
    }
}

/// Pulls a global `--serve <addr>` (and its value) out of the argument
/// list so subcommand parsers never see it.
fn extract_serve_flag(args: &mut Vec<String>) -> Option<String> {
    let pos = args.iter().position(|a| a == "--serve")?;
    if pos + 1 >= args.len() || args[pos + 1].starts_with("--") {
        eprintln!("--serve needs a bind address, e.g. --serve 127.0.0.1:9898 (port 0 = auto)");
        std::process::exit(2);
    }
    let addr = args.remove(pos + 1);
    args.remove(pos);
    Some(addr)
}

/// Starts the embedded observability server (and switches the profiler
/// on so `/profile` has data), or exits with a clear message.
fn start_obs_server(addr: &str) -> obs::ObsServer {
    obs::profile::set_enabled(true);
    match obs::ObsServer::start(addr) {
        Ok(server) => {
            // To stdout, not the console: scripts (and the CI
            // live-endpoint job) grep this line for the bound port.
            println!("obs: serving on http://{}", server.local_addr());
            server
        }
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            std::process::exit(2);
        }
    }
}

/// `figures bench [--quick] [--out <path>] [--check <committed.json>]`.
///
/// Default mode runs the perf-trajectory suite and writes the
/// `BENCH_<n>.json` report (full repeats unless `--quick`). `--check`
/// mode instead compares the fresh medians against a previously
/// committed report and exits 1 if any benchmark's median fell below
/// the regression floor — nothing is written, so the committed file
/// stays the authoritative trajectory point. Quick and full mode use
/// identical problem sizes (quick only repeats less), which is what
/// makes a quick-mode check against a full-mode file meaningful.
fn run_bench_suite(rest: &[String], console: &Console) {
    let mut quick = false;
    let mut check: Option<PathBuf> = None;
    let mut out = PathBuf::from(perfsuite::DEFAULT_OUTPUT);
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--quiet" => {}
            "--check" => match it.next() {
                Some(p) => check = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--check needs a path to a committed BENCH_<n>.json");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown bench argument: {other}");
                eprintln!(
                    "usage: figures bench [--quick] [--out <path>] [--check <committed.json>]"
                );
                std::process::exit(2);
            }
        }
    }
    console.note(format!(
        "bench: perf-trajectory suite, {} mode, {} worker thread(s) [RAC_THREADS]",
        if quick { "quick" } else { "full" },
        Runner::global().threads()
    ));
    if obs::enabled() {
        obs::health::global().begin_job("bench");
    }
    let started = Instant::now();
    let report = perfsuite::run_suite(&perfsuite::SuiteOptions { quick });
    console.note(format!(
        "bench: suite finished in {:.1}s",
        started.elapsed().as_secs_f64()
    ));
    if let Some(s) = report.event_queue_speedup() {
        console.note(format!("bench: calendar queue {s:.2}x over heap baseline"));
    }
    if let Some(s) = report.qsweep_speedup() {
        console.note(format!("bench: optimized sweep {s:.2}x over naive loop"));
    }
    match check {
        Some(path) => {
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(2);
            });
            let medians = perfsuite::parse_medians(&committed).unwrap_or_else(|e| {
                eprintln!("cannot parse {}: {e}", path.display());
                std::process::exit(2);
            });
            let failures =
                perfsuite::check_regressions(&medians, &report, perfsuite::REGRESSION_FLOOR);
            if !failures.is_empty() {
                eprintln!("bench regression vs {}:", path.display());
                for f in &failures {
                    eprintln!("  {f}");
                }
                if obs::enabled() {
                    obs::health::global().finish_job(false);
                }
                std::process::exit(1);
            }
            println!(
                "bench check OK: all medians within {}x of {}",
                perfsuite::REGRESSION_FLOOR,
                path.display()
            );
        }
        None => {
            if let Some(dir) = out.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).ok();
                }
            }
            std::fs::write(&out, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", out.display());
                std::process::exit(2);
            });
            println!("wrote {}", out.display());
        }
    }
    if obs::enabled() {
        obs::health::global().finish_job(true);
    }
}

fn tournament_usage() -> ! {
    eprintln!(
        "usage: figures tournament [<scenarios>] [--seed N] [--profile <calm|brisk|stormy>] \
         [--out <dir>] [--quick] [--quiet]"
    );
    eprintln!(
        "defaults: 200 generated scenarios, seed 42, difficulty cycling calm/brisk/stormy; \
         --quick compresses every scenario's timeline 3x; writes \
         <dir>/tournament-matchups.csv and <dir>/tournament-scoreboard.csv (default dir: \
         results)"
    );
    std::process::exit(2);
}

/// `figures tournament [N] [--seed S] [--quick] [--profile P] [--out D]`
/// — RAC vs trial-and-error vs static default across N generated
/// scenarios, sharded over the global runner. The scoreboard is a pure
/// function of (seed, N): byte-identical CSVs at any `RAC_THREADS`.
fn run_tournament(raw: &[String], opts: &Options, console: &Console) {
    let mut topts = rac_bench::tournament::TournamentOptions {
        quick: opts.quick,
        ..rac_bench::tournament::TournamentOptions::default()
    };
    let mut out_dir = opts.results_dir.clone();
    let mut count: Option<usize> = None;
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--quiet" => {}
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => topts.seed = seed,
                None => {
                    eprintln!("--seed needs an unsigned integer");
                    tournament_usage();
                }
            },
            "--profile" => match it.next().and_then(|v| scenario::Difficulty::by_name(v)) {
                Some(d) => topts.profile = Some(d),
                None => {
                    eprintln!("--profile needs one of: calm, brisk, stormy");
                    tournament_usage();
                }
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory");
                    tournament_usage();
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown tournament flag: {flag}");
                tournament_usage();
            }
            operand => {
                if count.is_some() {
                    eprintln!("tournament takes at most one scenario-count operand");
                    tournament_usage();
                }
                count = Some(match operand.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("scenario count must be a positive integer, got `{operand}`");
                        tournament_usage();
                    }
                });
            }
        }
    }
    if let Some(n) = count {
        topts.scenarios = n;
    }

    if obs::enabled() {
        obs::health::global().begin_job(&format!("tournament {}", topts.scenarios));
    }
    let runner = Runner::global();
    console.note(format!(
        "tournament: {} scenarios from seed {}, {} difficulty, {} worker thread(s) [RAC_THREADS]",
        topts.scenarios,
        topts.seed,
        topts
            .profile
            .map(|d| d.label())
            .unwrap_or("cycling calm/brisk/stormy"),
        runner.threads()
    ));
    let started = Instant::now();
    let matchups = rac_bench::tournament::run(&topts);
    let elapsed = started.elapsed().as_secs_f64();
    let rows = rac_bench::tournament::scoreboard(&matchups);
    let table = rac_bench::tournament::scoreboard_table(&rows);
    println!(
        "tournament: {} scenarios, seed {} — per-arm scoreboard",
        topts.scenarios, topts.seed
    );
    print!("{table}");
    std::fs::create_dir_all(&out_dir).ok();
    for (file, t) in [
        (
            "tournament-matchups.csv",
            rac_bench::tournament::matchups_table(&matchups),
        ),
        ("tournament-scoreboard.csv", table),
    ] {
        let path = out_dir.join(file);
        match t.write_csv(&path) {
            Ok(()) => println!("  -> {}", path.display()),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
    }
    console.note(format!(
        "\ntotal: {elapsed:.1}s wall-clock over {} scenario(s) ({:.2} scenarios/s)",
        topts.scenarios,
        topts.scenarios as f64 / elapsed.max(1e-9)
    ));
    write_metrics_snapshot(opts, console);
    if obs::enabled() {
        obs::health::global().finish_job(true);
    }
}

/// Drops the process-wide metrics next to the figure CSVs (Prometheus
/// text + CSV), unless observability is off.
fn write_metrics_snapshot(opts: &Options, console: &Console) {
    if !obs::enabled() {
        return;
    }
    let snapshot = obs::Registry::global().snapshot();
    if snapshot.is_empty() {
        return;
    }
    for (file, text) in [
        ("metrics.prom", obs::export::render_prometheus(&snapshot)),
        ("metrics.csv", obs::export::render_csv(&snapshot)),
    ] {
        let path = opts.results_dir.join(file);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, text) {
            Ok(()) => console.note(format!("  -> {}", path.display())),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
    }
}

fn run_figure(cmd: &str, opts: &Options, library: Option<&PolicyLibrary>, out: &mut String) {
    let library = || library.expect("library prebuilt for fig5..fig10");
    match cmd {
        "table1" => table1(opts, out),
        "table2" => table2(opts, out),
        "fig1" => fig1(opts, out),
        "fig2" => fig2(opts, out),
        "fig3" => fig3(opts, out),
        "fig4" => fig4(opts, out),
        "fig5" => fig5(opts, library(), out),
        "fig6" => fig6(opts, library(), out),
        "fig7" => fig7(opts, library(), out),
        "fig8" => fig8(opts, library(), out),
        "fig9" => fig9(opts, library(), out),
        "fig10" => fig10(opts, library(), out),
        other => unreachable!("validated in main: {other}"),
    }
}

fn banner(out: &mut String, title: &str) {
    let _ = writeln!(out);
    let _ = writeln!(out, "=== {title} ===");
}

// --------------------------------------------------------------------
// Tables
// --------------------------------------------------------------------

fn table1(opts: &Options, out: &mut String) {
    banner(out, "Table 1: tunable performance-critical parameters");
    let mut t = TextTable::new(&["tier", "parameter", "range", "default"]);
    for p in Param::ALL {
        let (lo, hi) = p.range();
        t.row(&[
            p.tier().to_string(),
            p.name().to_string(),
            format!("[{lo}, {hi}]"),
            p.default_value().to_string(),
        ]);
    }
    let _ = write!(out, "{t}");
    save(&t, opts, "table1.csv", out);
}

fn table2(opts: &Options, out: &mut String) {
    banner(out, "Table 2: example system contexts");
    let mut t = TextTable::new(&["context", "workload mix", "VM resources"]);
    for (i, c) in paper_contexts().iter().enumerate() {
        t.row(&[
            format!("Context-{}", i + 1),
            c.mix.to_string(),
            c.level.to_string(),
        ]);
    }
    let _ = write!(out, "{t}");
    save(&t, opts, "table2.csv", out);
}

// --------------------------------------------------------------------
// Motivation figures (Section 2)
// --------------------------------------------------------------------

/// Finds the best configuration for a context by measuring the coarse
/// grouped sampling plan (the paper's "best out of our test cases") —
/// one parallel, cached batch through the global runner.
fn best_config_for(spec: &SystemSpec, opts: &Options) -> (ServerConfig, f64) {
    let plan = grouping::sampling_plan(3);
    let configs: Vec<ServerConfig> = plan.iter().map(|(_, config)| *config).collect();
    let measurer = SimMeasurer::new(spec.clone(), opts.warmup(), opts.interval());
    let samples = measurer.sample_batch(&configs);
    configs
        .into_iter()
        .zip(samples)
        .map(|(config, s)| (config, s.mean_response_ms))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty sampling plan")
}

fn fig1(opts: &Options, out: &mut String) {
    banner(
        out,
        "Figure 1: performance under configurations tuned for different workloads",
    );
    let spec = paper_system_spec();
    let mixes = [Mix::Ordering, Mix::Shopping, Mix::Browsing];
    let tuned: Vec<(Mix, ServerConfig)> = mixes
        .iter()
        .map(|&mix| {
            let (cfg, _) = best_config_for(&spec.clone().with_mix(mix), opts);
            (mix, cfg)
        })
        .collect();

    // The full run-mix x tuned-config cross, as one parallel batch.
    let jobs: Vec<MeasureJob> = mixes
        .iter()
        .flat_map(|&run_mix| tuned.iter().map(move |&(_, cfg)| (run_mix, cfg)))
        .map(|(run_mix, cfg)| {
            MeasureJob::new(
                spec.clone().with_mix(run_mix),
                cfg,
                opts.warmup(),
                opts.interval(),
            )
        })
        .collect();
    let samples = Runner::global().run(&jobs);

    let mut t = TextTable::new(&[
        "workload",
        "ordering-best cfg",
        "shopping-best cfg",
        "browsing-best cfg",
    ]);
    for (r, &run_mix) in mixes.iter().enumerate() {
        let mut cells = vec![run_mix.to_string()];
        for c in 0..tuned.len() {
            cells.push(format!(
                "{:.0}",
                samples[r * tuned.len() + c].mean_response_ms
            ));
        }
        t.row(&cells);
    }
    let _ = write!(out, "{t}");
    let _ = writeln!(out, "(rows: workload actually run; columns: whose best configuration; cells: mean response time in ms)");
    save(&t, opts, "fig1.csv", out);
}

fn fig2(opts: &Options, out: &mut String) {
    banner(
        out,
        "Figure 2: effect of MaxClients under different VM configurations",
    );
    let sweep: Vec<u32> = vec![5, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600];
    let rows = maxclients_sweep(
        &paper_system_spec(),
        &ResourceLevel::ALL,
        &sweep,
        opts.warmup(),
        opts.interval(),
    );
    let mut t = TextTable::new(&["MaxClients", "Level-1", "Level-2", "Level-3"]);
    let mut series: Vec<(&str, Vec<f64>)> = vec![
        ("Level-1", Vec::new()),
        ("Level-2", Vec::new()),
        ("Level-3", Vec::new()),
    ];
    for (m, &mc) in sweep.iter().enumerate() {
        let mut cells = vec![mc.to_string()];
        for (i, _) in ResourceLevel::ALL.iter().enumerate() {
            let (_, _, s) = rows[i * sweep.len() + m];
            cells.push(format!("{:.0}", s.mean_response_ms));
            series[i].1.push(s.mean_response_ms);
        }
        t.row(&cells);
    }
    let _ = write!(out, "{t}");
    let _ = write!(out, "{}", ascii_chart(&series, 12));
    for (name, values) in &series {
        let (best_idx, best) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty sweep");
        let _ = writeln!(
            out,
            "  preferred MaxClients on {name}: {} ({best:.0} ms)",
            sweep[best_idx]
        );
    }
    save(&t, opts, "fig2.csv", out);
}

fn fig3(opts: &Options, out: &mut String) {
    banner(
        out,
        "Figure 3: performance under configurations tuned for different VM levels",
    );
    let spec = paper_system_spec();
    let tuned: Vec<(ResourceLevel, ServerConfig)> = ResourceLevel::ALL
        .iter()
        .map(|&level| {
            let (cfg, _) = best_config_for(&spec.clone().with_level(level), opts);
            (level, cfg)
        })
        .collect();

    let jobs: Vec<MeasureJob> = ResourceLevel::ALL
        .iter()
        .flat_map(|&run_level| tuned.iter().map(move |&(_, cfg)| (run_level, cfg)))
        .map(|(run_level, cfg)| {
            MeasureJob::new(
                spec.clone().with_level(run_level),
                cfg,
                opts.warmup(),
                opts.interval(),
            )
        })
        .collect();
    let samples = Runner::global().run(&jobs);

    let mut t = TextTable::new(&[
        "platform",
        "level1-best cfg",
        "level2-best cfg",
        "level3-best cfg",
    ]);
    for (r, &run_level) in ResourceLevel::ALL.iter().enumerate() {
        let mut cells = vec![run_level.to_string()];
        for c in 0..tuned.len() {
            cells.push(format!(
                "{:.0}",
                samples[r * tuned.len() + c].mean_response_ms
            ));
        }
        t.row(&cells);
    }
    let _ = write!(out, "{t}");
    save(&t, opts, "fig3.csv", out);
}

fn fig4(opts: &Options, out: &mut String) {
    banner(
        out,
        "Figure 4: concave upward effect of MaxClients and regression",
    );
    let sweep: Vec<u32> = (0..=11).map(|i| 50 + i * 50).collect();
    let spec = paper_system_spec();
    let configs: Vec<ServerConfig> = sweep
        .iter()
        .map(|&mc| {
            ServerConfig::default()
                .with(Param::MaxClients, mc)
                .expect("in range")
        })
        .collect();
    let measurer = SimMeasurer::new(spec, opts.warmup(), opts.interval());
    let samples = measurer.sample_batch(&configs);
    let xs: Vec<Vec<f64>> = sweep.iter().map(|&mc| vec![mc as f64]).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.mean_response_ms).collect();
    // Winsorize exactly like the initialization pipeline: the choked
    // low-MaxClients corner is orders of magnitude off-scale and would
    // dominate the least-squares fit.
    let mut sorted = ys.clone();
    sorted.sort_by(f64::total_cmp);
    let cap = sorted[sorted.len() / 2] * 25.0;
    let fit_ys: Vec<f64> = ys.iter().map(|y| y.min(cap)).collect();
    let model = numerics::PolynomialModel::fit(&xs, &fit_ys).expect("quadratic fit");
    let mut t = TextTable::new(&["MaxClients", "measured (ms)", "regression (ms)"]);
    let mut measured = Vec::new();
    let mut fitted = Vec::new();
    for (x, y) in xs.iter().zip(&ys) {
        let pred = model.predict(x);
        t.row(&[
            format!("{}", x[0] as u32),
            format!("{y:.0}"),
            format!("{pred:.0}"),
        ]);
        measured.push(*y);
        fitted.push(pred);
    }
    let _ = write!(out, "{t}");
    let _ = write!(
        out,
        "{}",
        ascii_chart(&[("measured", measured), ("regression", fitted)], 12)
    );
    let _ = writeln!(
        out,
        "  fit: r² = {:.3}, rmse = {:.1} ms",
        model.quality().r_squared,
        model.quality().rmse
    );
    save(&t, opts, "fig4.csv", out);
}

// --------------------------------------------------------------------
// Online-learning figures (Section 5)
// --------------------------------------------------------------------

/// Runs one tuner through an experiment and returns its response-time
/// series.
fn run_series(exp: &Experiment, tuner: &mut dyn Tuner) -> Vec<IterationRecord> {
    exp.run(tuner)
}

fn response_series(records: &[IterationRecord]) -> Vec<f64> {
    records.iter().map(|r| r.response_ms).collect()
}

/// The iteration after which the series stays within 20% of its final
/// plateau (mean of the last 5 samples) — "driven to a stable state".
fn convergence_iteration(series: &[f64]) -> Option<usize> {
    if series.len() < 6 {
        return None;
    }
    let tail: f64 = series[series.len() - 5..].iter().sum::<f64>() / 5.0;
    if !tail.is_finite() {
        return None;
    }
    let ok = |v: f64| v.is_finite() && (v - tail).abs() <= 0.2 * tail.abs().max(1.0);
    let mut candidate = None;
    for (i, &v) in series.iter().enumerate() {
        if ok(v) {
            candidate.get_or_insert(i);
        } else {
            candidate = None;
        }
    }
    candidate
}

fn experiment_123(opts: &Options) -> Experiment {
    let contexts = paper_contexts();
    let n = opts.iters(30);
    Experiment::new(paper_system_spec())
        .with_interval(opts.interval())
        .with_warmup(opts.warmup())
        .then(contexts[0], n)
        .then(contexts[1], n)
        .then(contexts[2], n)
}

fn series_table(
    opts: &Options,
    file: &str,
    named: &[(&str, &Vec<IterationRecord>)],
    out: &mut String,
) {
    let mut headers = vec!["iteration"];
    headers.extend(named.iter().map(|(n, _)| *n));
    let mut t = TextTable::new(&headers);
    let len = named.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..len {
        let mut cells = vec![i.to_string()];
        for (_, s) in named {
            cells.push(
                s.get(i)
                    .map(|r| format!("{:.0}", r.response_ms))
                    .unwrap_or_default(),
            );
        }
        t.row(&cells);
    }
    save(&t, opts, file, out);
    let chart: Vec<(&str, Vec<f64>)> = named
        .iter()
        .map(|(n, s)| (*n, response_series(s)))
        .collect();
    let _ = write!(out, "{}", ascii_chart(&chart, 14));
}

fn mean_of(series: &[IterationRecord]) -> f64 {
    rac::series_mean(series)
}

fn fig5(opts: &Options, library: &PolicyLibrary, out: &mut String) {
    banner(
        out,
        "Figure 5: performance due to different auto-configuration policies",
    );
    let exp = experiment_123(opts);

    let mut rac_agent = RacAgent::with_policy_library(standard_settings(), library.clone());
    let rac_series = run_series(&exp, &mut rac_agent);
    let mut tae = TrialAndError::new(ONLINE_LEVELS);
    let tae_series = run_series(&exp, &mut tae);
    let mut dflt = StaticDefault::new();
    let dflt_series = run_series(&exp, &mut dflt);

    series_table(
        opts,
        "fig5.csv",
        &[
            ("RAC", &rac_series),
            ("trial-and-error", &tae_series),
            ("static default", &dflt_series),
        ],
        out,
    );

    let (m_rac, m_tae, m_dflt) = (
        mean_of(&rac_series),
        mean_of(&tae_series),
        mean_of(&dflt_series),
    );
    let _ = writeln!(out, "  mean response time: RAC {m_rac:.0} ms | trial-and-error {m_tae:.0} ms | default {m_dflt:.0} ms");
    let _ = writeln!(
        out,
        "  RAC improvement: {:.0}% vs trial-and-error, {:.0}% vs static default",
        100.0 * (m_tae - m_rac) / m_tae,
        100.0 * (m_dflt - m_rac) / m_dflt
    );
    let n = exp.total_iterations() / 3;
    for (phase, label) in [(0, "context-1"), (1, "context-2"), (2, "context-3")] {
        let slice = &response_series(&rac_series)[phase * n..(phase + 1) * n];
        match convergence_iteration(slice) {
            Some(it) => {
                let _ = writeln!(out, "  RAC stabilized in {label} after {it} iterations");
            }
            None => {
                let _ = writeln!(out, "  RAC did not stabilize in {label}");
            }
        }
    }
    let _ = writeln!(
        out,
        "  RAC policy switches: {}",
        rac_agent.policy_switches()
    );
}

fn fig6(opts: &Options, library: &PolicyLibrary, out: &mut String) {
    banner(out, "Figure 6: effect of online training");
    let context = paper_contexts()[0];
    let policy = library
        .for_context(context)
        .expect("context-1 policy")
        .clone();
    let exp = Experiment::new(paper_system_spec())
        .with_interval(opts.interval())
        .with_warmup(opts.warmup())
        .then(context, opts.iters(40));

    let mut with_ol = RacAgent::with_initial_policy(standard_settings(), &policy);
    let with_series = run_series(&exp, &mut with_ol);
    let mut without_ol = RacAgent::with_initial_policy(
        RacSettings {
            online_learning: false,
            ..standard_settings()
        },
        &policy,
    );
    let without_series = run_series(&exp, &mut without_ol);

    series_table(
        opts,
        "fig6.csv",
        &[
            ("w/ online learning", &with_series),
            ("w/o online learning", &without_series),
        ],
        out,
    );
    let tail = with_series.len().saturating_sub(10);
    let _ = writeln!(
        out,
        "  stable performance: w/ online learning {:.0} ms | w/o {:.0} ms",
        mean_of(&with_series[tail..]),
        mean_of(&without_series[tail..])
    );
}

fn fig7(opts: &Options, library: &PolicyLibrary, out: &mut String) {
    banner(
        out,
        "Figure 7: performance with and without policy initialization",
    );
    for (sub, ctx_index) in [("a", 1usize), ("b", 3usize)] {
        let context = paper_contexts()[ctx_index];
        let _ = writeln!(out, "-- Figure 7({sub}): context-{}", ctx_index + 1);
        let policy = library
            .for_context(context)
            .expect("Table-2 context")
            .clone();
        let exp = Experiment::new(paper_system_spec())
            .with_interval(opts.interval())
            .with_warmup(opts.warmup())
            .then(context, opts.iters(30));

        let mut with_init = RacAgent::with_initial_policy(standard_settings(), &policy);
        let with_series = run_series(&exp, &mut with_init);
        let mut without_init = RacAgent::new(standard_settings());
        let without_series = run_series(&exp, &mut without_init);

        series_table(
            opts,
            &format!("fig7{sub}.csv"),
            &[
                ("w/ init policy", &with_series),
                ("w/o init policy", &without_series),
            ],
            out,
        );
        let _ = writeln!(
            out,
            "  mean: w/ init {:.0} ms | w/o init {:.0} ms | stable-after: {:?}",
            mean_of(&with_series),
            mean_of(&without_series),
            convergence_iteration(&response_series(&with_series))
        );
    }
}

fn fig8(opts: &Options, library: &PolicyLibrary, out: &mut String) {
    banner(out, "Figure 8: effect of online exploration rates");
    let context = paper_contexts()[0];
    let policy = library
        .for_context(context)
        .expect("context-1 policy")
        .clone();
    let exp = Experiment::new(paper_system_spec())
        .with_interval(opts.interval())
        .with_warmup(opts.warmup())
        .then(context, opts.iters(50));

    let mut all = Vec::new();
    for epsilon in [0.05, 0.1, 0.3] {
        // The paper's experiment uses plain (unguarded) ε-greedy — the
        // whole point is to see what raw exploration costs online.
        let mut agent = RacAgent::with_initial_policy(
            RacSettings {
                epsilon,
                exploration_guard: f64::INFINITY,
                ..standard_settings()
            },
            &policy,
        );
        all.push((format!("rate {epsilon}"), run_series(&exp, &mut agent)));
    }
    let named: Vec<(&str, &Vec<IterationRecord>)> =
        all.iter().map(|(n, s)| (n.as_str(), s)).collect();
    series_table(opts, "fig8.csv", &named, out);
    for (name, series) in &all {
        let rts = response_series(series);
        let median = {
            let mut v: Vec<f64> = rts.iter().copied().filter(|x| x.is_finite()).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let spikes = rts.iter().filter(|&&rt| rt > 2.0 * median).count();
        let _ = writeln!(
            out,
            "  {name}: mean {:.0} ms, spikes (>2x median): {spikes}",
            mean_of(series)
        );
    }
}

fn fig9(opts: &Options, library: &PolicyLibrary, out: &mut String) {
    banner(
        out,
        "Figure 9: performance with static and adaptive policy initialization",
    );
    let static_policy = library
        .for_context(paper_contexts()[1])
        .expect("context-2")
        .clone();
    for (sub, ctx_index) in [("a", 4usize), ("b", 5usize)] {
        let context = paper_contexts()[ctx_index];
        let _ = writeln!(out, "-- Figure 9({sub}): context-{}", ctx_index + 1);
        let exp = Experiment::new(paper_system_spec())
            .with_interval(opts.interval())
            .with_warmup(opts.warmup())
            .then(context, opts.iters(40));

        let mut adaptive = RacAgent::with_policy_library(standard_settings(), library.clone());
        let adaptive_series = run_series(&exp, &mut adaptive);
        let mut static_agent = RacAgent::with_initial_policy(standard_settings(), &static_policy);
        let static_series = run_series(&exp, &mut static_agent);

        series_table(
            opts,
            &format!("fig9{sub}.csv"),
            &[
                ("adaptive init policy", &adaptive_series),
                ("static init policy", &static_series),
            ],
            out,
        );
        let _ = writeln!(
            out,
            "  mean: adaptive {:.0} ms | static {:.0} ms | static stable-after {:?}",
            mean_of(&adaptive_series),
            mean_of(&static_series),
            convergence_iteration(&response_series(&static_series))
        );
    }
}

fn fig10(opts: &Options, library: &PolicyLibrary, out: &mut String) {
    banner(out, "Figure 10: performance due to different RL policies");
    let static_policy = library
        .for_context(paper_contexts()[1])
        .expect("context-2")
        .clone();
    let exp = experiment_123(opts);

    let mut adaptive = RacAgent::with_policy_library(standard_settings(), library.clone());
    let adaptive_series = run_series(&exp, &mut adaptive);
    let mut static_agent = RacAgent::with_initial_policy(standard_settings(), &static_policy);
    let static_series = run_series(&exp, &mut static_agent);
    let mut cold = RacAgent::new(standard_settings());
    let cold_series = run_series(&exp, &mut cold);

    series_table(
        opts,
        "fig10.csv",
        &[
            ("adaptive init", &adaptive_series),
            ("static init", &static_series),
            ("w/o init", &cold_series),
        ],
        out,
    );
    let (ma, ms, mc) = (
        mean_of(&adaptive_series),
        mean_of(&static_series),
        mean_of(&cold_series),
    );
    let _ = writeln!(
        out,
        "  mean response time: adaptive {ma:.0} ms | static {ms:.0} ms | w/o init {mc:.0} ms"
    );
    let _ = writeln!(
        out,
        "  static-vs-adaptive loss: {:.0}%",
        100.0 * (ms - ma) / ma
    );
}

// --------------------------------------------------------------------
// Scenario runs (time-varying workload & fault injection)
// --------------------------------------------------------------------

/// Parsed form of the `figures scenario` argument tail.
struct ScenarioCli {
    operands: Vec<String>,
    list: bool,
    checkpoint_dir: Option<PathBuf>,
    every: usize,
    stop_after: Option<usize>,
    resume: Option<PathBuf>,
    warm_start: Option<PathBuf>,
}

fn scenario_usage() -> ! {
    eprintln!(
        "usage: figures scenario <name|file.scn>... [--checkpoint <dir>] [--checkpoint-every N] \
         [--stop-after N] [--warm-start <file>]\n       \
         figures scenario <name|file.scn> --resume <file>\n       \
         figures scenario --list"
    );
    eprintln!(
        "bundled: {}",
        rac_bench::scenario::bundled_names().join(" ")
    );
    std::process::exit(2);
}

/// Parses the raw argument tail after the `scenario` token. The global
/// flags (`--quick`, `--quiet`) were consumed in `main` and are skipped
/// here; anything else starting with `--` must be a known scenario flag.
fn parse_scenario_cli(raw: &[String]) -> ScenarioCli {
    let mut cli = ScenarioCli {
        operands: Vec::new(),
        list: false,
        checkpoint_dir: None,
        every: 5,
        stop_after: None,
        resume: None,
        warm_start: None,
    };
    let mut i = 0;
    let value = |raw: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match raw.get(*i) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => {
                eprintln!("{flag} needs a value");
                scenario_usage();
            }
        }
    };
    let number = |raw: &[String], i: &mut usize, flag: &str| -> usize {
        let v = value(raw, i, flag);
        match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got `{v}`");
                scenario_usage();
            }
        }
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--list" => cli.list = true,
            "--quick" | "--quiet" => {}
            "--checkpoint" => {
                cli.checkpoint_dir = Some(PathBuf::from(value(raw, &mut i, "--checkpoint")))
            }
            "--checkpoint-every" => cli.every = number(raw, &mut i, "--checkpoint-every"),
            "--stop-after" => cli.stop_after = Some(number(raw, &mut i, "--stop-after")),
            "--resume" => cli.resume = Some(PathBuf::from(value(raw, &mut i, "--resume"))),
            "--warm-start" => {
                cli.warm_start = Some(PathBuf::from(value(raw, &mut i, "--warm-start")))
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown scenario flag: {flag}");
                scenario_usage();
            }
            operand => cli.operands.push(operand.to_string()),
        }
        i += 1;
    }
    if cli.stop_after.is_some() && cli.checkpoint_dir.is_none() && cli.resume.is_none() {
        eprintln!("--stop-after only makes sense with --checkpoint or --resume");
        scenario_usage();
    }
    if cli.resume.is_some() && cli.operands.len() != 1 {
        eprintln!("--resume continues exactly one scenario run");
        scenario_usage();
    }
    cli
}

/// Loads and verifies a snapshot file, or exits with a clear message —
/// a half-written, corrupt, or stale checkpoint must never panic.
fn load_snapshot_or_exit(path: &Path, what: &str) -> ckpt::Snapshot {
    match ckpt::Snapshot::load(path) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("cannot {what} from {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

/// [`load_snapshot_or_exit`] for resume paths: first sweeps away any
/// `.tmp` file a crash left beside the checkpoint. The committed
/// snapshot is always the one to resume from — the temp is a torn
/// write by construction — so it must never shadow the real file or
/// clutter the checkpoint directory.
fn load_resume_snapshot_or_exit(path: &Path) -> ckpt::Snapshot {
    match ckpt::remove_stale_temp(path) {
        Ok(true) => eprintln!(
            "note: removed stale temp checkpoint beside {} (crash mid-write)",
            path.display()
        ),
        Ok(false) => {}
        Err(e) => {
            eprintln!("cannot clean stale temp beside {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    load_snapshot_or_exit(path, "resume")
}

/// Entry point for `figures scenario ...`: lists the bundled scenarios
/// or runs each operand (bundled name or `.scn` path) through the
/// standard tuner line-up, writing `results/scenario-<name>.csv` per
/// run. With `--checkpoint`/`--resume`, the line-up persists and
/// restores itself through `rac_bench::checkpoint`.
///
/// Scenario runs are sequential end to end — the series must be a pure
/// function of (spec, scenario, seed), bit-identical at any
/// `RAC_THREADS` — so unlike the figure jobs there is no fan-out here.
///
/// With `live` (a `--serve` run), the growing trace is additionally
/// flushed to its final path as each tuner session completes, so
/// `inspect_trace --follow` can tail the run; the flushes are prefixes
/// of the final byte-identical file.
fn run_scenarios(raw: &[String], opts: &Options, console: &Console, live: bool) {
    let cli = parse_scenario_cli(raw);
    if cli.list {
        println!("bundled scenarios:");
        for (name, src) in scenario::bundled::all() {
            let scn = Scenario::parse(src).expect("bundled scenario parses");
            println!(
                "  {name}: {} iterations of {:.0}s, {} directives",
                scn.iterations(),
                scn.interval.as_secs_f64(),
                scn.directives.len()
            );
        }
        return;
    }
    if cli.operands.is_empty() {
        scenario_usage();
    }
    let scenarios: Vec<Scenario> = cli
        .operands
        .iter()
        .map(|arg| match rac_bench::scenario::resolve(arg) {
            Ok(scn) => {
                if opts.quick {
                    scn.scaled(1, 3)
                } else {
                    scn
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        })
        .collect();

    // Mark the job running before the (potentially long) library build
    // so live /healthz readers see it immediately.
    if obs::enabled() {
        obs::health::global().begin_job(&format!("scenario {}", cli.operands.join(" ")));
    }
    let library = match &cli.warm_start {
        Some(path) => {
            let snap = load_snapshot_or_exit(path, "warm-start");
            // The checked variant turns a snapshot trained on a
            // different lattice into a typed mismatch here, at the
            // seeding boundary, instead of a panic mid-run.
            match rac::library_from_snapshot_checked(
                &snap,
                rac_bench::standard_lattice().num_states(),
                rac::Action::COUNT,
            ) {
                Ok(lib) => {
                    console.note(format!(
                        "  warm start: {} policies from {}",
                        lib.len(),
                        path.display()
                    ));
                    lib
                }
                Err(e) => {
                    eprintln!("cannot warm-start from {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        None => standard_policy_library(&opts.cache_dir()),
    };
    let resume = cli
        .resume
        .as_ref()
        .map(|path| load_resume_snapshot_or_exit(path));
    let tracing = obs::tracing_enabled();
    let started = Instant::now();
    for scn in &scenarios {
        // Resume continues the checkpoint file it came from; a fresh
        // checkpointed run gets one file per scenario under the dir.
        let ckpt_plan = match (&cli.resume, &cli.checkpoint_dir) {
            (Some(path), _) => Some(CheckpointOptions {
                path: path.clone(),
                every: cli.every,
                stop_after: cli.stop_after,
            }),
            (None, Some(dir)) => Some(CheckpointOptions {
                path: dir.join(format!("scenario-{}.ckpt", scn.name)),
                every: cli.every,
                stop_after: cli.stop_after,
            }),
            (None, None) => None,
        };
        let trace_path = opts
            .results_dir
            .join(format!("scenario-{}.trace.jsonl", scn.name));
        // Live runs flush the growing trace between tuner sessions so
        // followers see events mid-run (never for checkpointed runs,
        // whose stop-after contract is "no trace file").
        let live_trace = if live && tracing && ckpt_plan.is_none() {
            Some(trace_path.clone())
        } else {
            None
        };
        let mut out = String::new();
        let t0 = Instant::now();
        // Failures must still flush telemetry — the failed run is
        // exactly the one you want data from — so panics are caught,
        // metrics/trace written, and only then does the process die.
        let mut writer = None;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if tracing {
                let w = Arc::new(TraceWriter::new());
                writer = Some(Arc::clone(&w));
                obs::trace::with_writer(&w, || {
                    scenario_figure(
                        scn,
                        &library,
                        opts,
                        ckpt_plan.as_ref(),
                        resume.as_ref(),
                        live_trace.as_deref(),
                        &mut out,
                    )
                })
            } else {
                scenario_figure(
                    scn,
                    &library,
                    opts,
                    ckpt_plan.as_ref(),
                    resume.as_ref(),
                    None,
                    &mut out,
                )
            }
        }));
        print!("{out}");
        let completed = match outcome {
            Ok(Ok(completed)) => completed,
            Ok(Err(e)) => {
                eprintln!("scenario {}: checkpoint error: {e}", scn.name);
                flush_failure_telemetry(scn, writer.as_deref(), opts, console);
                std::process::exit(2);
            }
            Err(payload) => {
                eprintln!("scenario {}: run panicked; flushing telemetry", scn.name);
                flush_failure_telemetry(scn, writer.as_deref(), opts, console);
                std::panic::resume_unwind(payload);
            }
        };
        // An interrupted (`--stop-after`) run writes neither CSV nor
        // trace: its outputs exist only to be byte-compared against an
        // uninterrupted run once resumed to completion.
        if let (true, Some(writer)) = (completed, &writer) {
            match writer.write_to(&trace_path) {
                Ok(()) => console.note(format!(
                    "  -> {} ({} events)",
                    trace_path.display(),
                    writer.len()
                )),
                Err(e) => eprintln!("  could not write {}: {e}", trace_path.display()),
            }
        }
        console.note(format!(
            "  [scenario {}: {:.1}s wall-clock]",
            scn.name,
            t0.elapsed().as_secs_f64()
        ));
    }
    console.note(format!(
        "\ntotal: {:.1}s wall-clock over {} scenario(s)",
        started.elapsed().as_secs_f64(),
        scenarios.len()
    ));
    write_metrics_snapshot(opts, console);
    if obs::enabled() {
        obs::health::global().finish_job(true);
    }
}

/// Flush-on-failure: a failing scenario run still writes the metrics
/// snapshot and the buffered trace (under a `.failed.` name so partial
/// output can never masquerade as a completed run's artifact).
fn flush_failure_telemetry(
    scn: &Scenario,
    writer: Option<&TraceWriter>,
    opts: &Options,
    console: &Console,
) {
    if let Some(writer) = writer {
        let path = opts
            .results_dir
            .join(format!("scenario-{}.failed.trace.jsonl", scn.name));
        match writer.write_to(&path) {
            Ok(()) => console.note(format!(
                "  -> {} ({} events, partial)",
                path.display(),
                writer.len()
            )),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
    }
    write_metrics_snapshot(opts, console);
    if obs::enabled() {
        obs::health::global().finish_job(false);
    }
}

/// Runs one scenario through RAC, trial-and-error, and the static
/// default, then reports the series table, chart, and summary stats.
/// Returns `Ok(false)` when a checkpointed run stopped early
/// (`--stop-after`) — the caller then skips the CSV and trace artifacts
/// — and `Err` on checkpoint I/O or validation failures, so the caller
/// can flush telemetry before exiting.
fn scenario_figure(
    scn: &Scenario,
    library: &PolicyLibrary,
    opts: &Options,
    ckpt_plan: Option<&CheckpointOptions>,
    resume: Option<&ckpt::Snapshot>,
    live_trace: Option<&Path>,
    out: &mut String,
) -> Result<bool, ckpt::CkptError> {
    banner(
        out,
        &format!(
            "Scenario {}: {} iterations of {:.0}s ({} timeline events)",
            scn.name,
            scn.iterations(),
            scn.interval.as_secs_f64(),
            scn.compile().len()
        ),
    );
    let series = match ckpt_plan {
        None => match live_trace {
            // Live run: flush the (prefix-stable) trace after each
            // tuner session so followers see it grow mid-run.
            Some(path) => rac_bench::scenario::run_tuners_with(scn, library, |_| {
                if let Some(text) = obs::trace::snapshot_serialized() {
                    let _ = std::fs::write(path, text);
                }
            }),
            None => rac_bench::scenario::run_tuners(scn, library),
        },
        Some(plan) => {
            match rac_bench::checkpoint::run_tuners_checkpointed(scn, library, plan, resume)? {
                LineupOutcome::Complete(series) => series,
                LineupOutcome::Interrupted { global_iterations } => {
                    let _ = writeln!(
                        out,
                        "  stopped after {global_iterations} line-up iterations \
                         (checkpoint: {})",
                        plan.path.display()
                    );
                    let _ = writeln!(
                        out,
                        "  resume with: figures scenario {} --resume {}",
                        scn.name,
                        plan.path.display()
                    );
                    return Ok(false);
                }
            }
        }
    };
    let t = rac_bench::scenario::scenario_table(scn, &series);
    let _ = write!(out, "{t}");
    let chart: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, s)| (*n, response_series(s)))
        .collect();
    let _ = write!(out, "{}", ascii_chart(&chart, 14));
    for (name, s) in &series {
        let finite: Vec<f64> = response_series(s)
            .into_iter()
            .filter(|x| x.is_finite())
            .collect();
        let worst = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let violations = finite.iter().filter(|&&rt| rt > SLA_MS).count();
        let dropped = s.len() - finite.len();
        let _ = writeln!(
            out,
            "  {name}: mean {:.0} ms, worst {worst:.0} ms, SLA violations {violations}/{}, dropped intervals {dropped}",
            rac_bench::scenario::finite_mean(s),
            s.len()
        );
    }
    save(&t, opts, &format!("scenario-{}.csv", scn.name), out);
    Ok(true)
}

fn profile_usage() -> ! {
    eprintln!("usage: figures profile <name|file.scn> [--quick] [--quiet]");
    eprintln!("  runs the tuner line-up once under the hierarchical self-profiler,");
    eprintln!("  prints a self-time table, and writes results/profile-<name>.folded");
    std::process::exit(2);
}

/// `figures profile <scenario>` — one checkpointed line-up run with the
/// self-profiler on, reported as a self-time table plus a
/// flamegraph-compatible folded-stack file. The run is checkpointed
/// (to a throwaway snapshot, deleted afterwards) so the `checkpoint`
/// phase shows up in the attribution alongside measure/tuner/sweep.
fn run_profile(raw: &[String], opts: &Options, console: &Console) {
    let mut operand: Option<&str> = None;
    for a in raw {
        match a.as_str() {
            "--quick" | "--quiet" => {}
            s if s.starts_with("--") => profile_usage(),
            s => {
                if operand.replace(s).is_some() {
                    eprintln!("profile: exactly one scenario, got several");
                    profile_usage();
                }
            }
        }
    }
    let Some(arg) = operand else { profile_usage() };
    let scn = match rac_bench::scenario::resolve(arg) {
        Ok(scn) => {
            if opts.quick {
                scn.scaled(1, 3)
            } else {
                scn
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    obs::profile::set_enabled(true);
    obs::profile::reset();
    if obs::enabled() {
        obs::health::global().begin_job(&format!("profile {}", scn.name));
    }
    let library = standard_policy_library(&opts.cache_dir());
    let ckpt_path = opts.results_dir.join(format!("profile-{}.ckpt", scn.name));
    let plan = CheckpointOptions {
        path: ckpt_path.clone(),
        every: 5,
        stop_after: None,
    };
    console.note(format!(
        "profiling scenario {}: {} iterations of {:.0}s per tuner",
        scn.name,
        scn.iterations(),
        scn.interval.as_secs_f64()
    ));
    let t0 = Instant::now();
    let outcome = rac_bench::checkpoint::run_tuners_checkpointed(&scn, &library, &plan, None);
    let _ = std::fs::remove_file(&ckpt_path);
    match outcome {
        Ok(LineupOutcome::Complete(_)) => {}
        Ok(LineupOutcome::Interrupted { .. }) => unreachable!("stop_after is None"),
        Err(e) => {
            eprintln!("profile {}: checkpoint error: {e}", scn.name);
            if obs::enabled() {
                obs::health::global().finish_job(false);
            }
            std::process::exit(2);
        }
    }
    console.note(format!(
        "  [profile {}: {:.1}s wall-clock]",
        scn.name,
        t0.elapsed().as_secs_f64()
    ));

    let snapshot = obs::profile::snapshot();
    print!("{}", rac_bench::profile::self_time_table(&snapshot));
    let folded_path = opts
        .results_dir
        .join(format!("profile-{}.folded", scn.name));
    match rac_bench::profile::write_folded(&folded_path) {
        Ok(()) => println!(
            "wrote {} ({} call paths)",
            folded_path.display(),
            snapshot.len()
        ),
        Err(e) => {
            eprintln!("cannot write {}: {e}", folded_path.display());
            std::process::exit(2);
        }
    }
    write_metrics_snapshot(opts, console);
    if obs::enabled() {
        obs::health::global().finish_job(true);
    }
}

fn chaos_usage() -> ! {
    eprintln!("usage: figures chaos [<seed>...] [--iterations <n>] [--quiet]");
    eprintln!("  (no seeds: runs the pinned CI seeds)");
    std::process::exit(2);
}

/// `figures chaos` — the deterministic chaos harness: for each seed,
/// generate a randomized fault schedule, run a cold-started RAC agent
/// through it, write `results/chaos-<seed>.csv` (and a trace under
/// `RAC_OBS=trace`), and check the guardrail invariants. Exits nonzero
/// if any invariant is violated, so CI can gate on it.
fn run_chaos_harness(raw: &[String], opts: &Options, console: &Console) {
    let mut seeds: Vec<u64> = Vec::new();
    let mut iterations = rac_bench::chaos::DEFAULT_ITERATIONS;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--iterations" => {
                i += 1;
                iterations = raw
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| chaos_usage());
            }
            "--quiet" | "--quick" => {}
            a if a.starts_with("--") => chaos_usage(),
            a => match a.parse::<u64>() {
                Ok(seed) => seeds.push(seed),
                Err(_) => {
                    eprintln!("chaos: seeds are unsigned integers, got {a:?}");
                    chaos_usage();
                }
            },
        }
        i += 1;
    }
    if seeds.is_empty() {
        seeds = rac_bench::chaos::PINNED_SEEDS.to_vec();
    }

    let tracing = obs::tracing_enabled();
    if obs::enabled() {
        let names: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        obs::health::global().begin_job(&format!("chaos {}", names.join(" ")));
    }
    let started = Instant::now();
    let mut violation_count = 0usize;
    for &seed in &seeds {
        let scn = rac_bench::chaos::chaos_scenario(seed, iterations);
        let t0 = Instant::now();
        let mut series = Vec::new();
        let trace = if tracing {
            let writer = Arc::new(TraceWriter::new());
            obs::trace::with_writer(&writer, || series = rac_bench::chaos::run_chaos(&scn));
            Some(writer)
        } else {
            series = rac_bench::chaos::run_chaos(&scn);
            None
        };
        let mut out = String::new();
        banner(
            &mut out,
            &format!(
                "Chaos seed {seed}: {} iterations of {:.0}s, {} directives",
                scn.iterations(),
                scn.interval.as_secs_f64(),
                scn.directives.len()
            ),
        );
        let t = rac_bench::chaos::chaos_table(&series);
        let _ = write!(out, "{t}");
        let finite: Vec<f64> = series
            .iter()
            .map(|r| r.response_ms)
            .filter(|x| x.is_finite())
            .collect();
        let worst = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sla_misses = finite.iter().filter(|&&rt| rt > SLA_MS).count();
        let _ = writeln!(
            out,
            "  worst {worst:.0} ms, SLA misses {sla_misses}/{}, lost intervals {}",
            series.len(),
            series.len() - finite.len()
        );
        let violations = rac_bench::chaos::check_invariants(&scn, &series);
        if violations.is_empty() {
            let _ = writeln!(out, "  invariants hold");
        }
        for v in &violations {
            let _ = writeln!(out, "  INVARIANT VIOLATED: {v}");
        }
        violation_count += violations.len();
        save(&t, opts, &format!("chaos-{seed}.csv"), &mut out);
        print!("{out}");
        if let Some(writer) = &trace {
            let path = opts.results_dir.join(format!("chaos-{seed}.trace.jsonl"));
            match writer.write_to(&path) {
                Ok(()) => {
                    console.note(format!("  -> {} ({} events)", path.display(), writer.len()))
                }
                Err(e) => eprintln!("  could not write {}: {e}", path.display()),
            }
        }
        console.note(format!(
            "  [chaos {seed}: {:.1}s wall-clock]",
            t0.elapsed().as_secs_f64()
        ));
    }
    console.note(format!(
        "\ntotal: {:.1}s wall-clock over {} seed(s)",
        started.elapsed().as_secs_f64(),
        seeds.len()
    ));
    write_metrics_snapshot(opts, console);
    if obs::enabled() {
        obs::health::global().finish_job(violation_count == 0);
    }
    if violation_count > 0 {
        eprintln!("chaos: {violation_count} invariant violation(s)");
        std::process::exit(1);
    }
}

// --------------------------------------------------------------------
// `figures crashdrill`: SIGKILL a live racd daemon at seeded points and
// assert byte-identical convergence after recovery.

fn run_crashdrill(raw: &[String], opts: &Options, console: &Console) {
    let usage = || -> ! {
        eprintln!("usage: figures crashdrill [<seed>...] [--iterations <n>]");
        std::process::exit(2);
    };
    let mut seeds: Vec<u64> = Vec::new();
    let mut iterations = rac_bench::chaos::DEFAULT_ITERATIONS;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--iterations" => {
                i += 1;
                iterations = raw
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quiet" | "--quick" => {}
            a if a.starts_with("--") => usage(),
            a => match a.parse::<u64>() {
                Ok(seed) => seeds.push(seed),
                Err(_) => {
                    eprintln!("crashdrill: seeds are unsigned integers, got {a:?}");
                    usage();
                }
            },
        }
        i += 1;
    }
    if seeds.is_empty() {
        seeds = rac_bench::crashdrill::DEFAULT_SEEDS.to_vec();
    }

    let racd = match rac_bench::crashdrill::find_racd() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("crashdrill: {e}");
            std::process::exit(2);
        }
    };
    console.note(format!("crashdrill: daemon binary {}", racd.display()));
    let drill_opts = rac_bench::crashdrill::DrillOptions {
        out_dir: opts.results_dir.clone(),
        iterations,
    };
    let started = Instant::now();
    let mut failure_count = 0usize;
    for &seed in &seeds {
        let t0 = Instant::now();
        match rac_bench::crashdrill::run_drill(&racd, seed, &drill_opts) {
            Ok(report) => {
                println!("crashdrill seed {seed}:");
                for k in &report.kills {
                    println!("  {k}");
                }
                if report.failures.is_empty() {
                    println!(
                        "  converged byte-identically after {} kill(s)",
                        report.kills.len()
                    );
                } else {
                    for f in &report.failures {
                        println!("  FAILED: {f}");
                    }
                    failure_count += report.failures.len();
                }
                console.note(format!(
                    "  [crashdrill {seed}: {:.1}s wall-clock]",
                    t0.elapsed().as_secs_f64()
                ));
            }
            Err(e) => {
                eprintln!("crashdrill seed {seed}: {e}");
                failure_count += 1;
            }
        }
    }
    console.note(format!(
        "\ntotal: {:.1}s wall-clock over {} seed(s)",
        started.elapsed().as_secs_f64(),
        seeds.len()
    ));
    if failure_count > 0 {
        eprintln!("crashdrill: {failure_count} failure(s)");
        std::process::exit(1);
    }
}

// --------------------------------------------------------------------

fn save(t: &TextTable, opts: &Options, file: &str, out: &mut String) {
    let path: &Path = &opts.results_dir.join(file);
    match t.write_csv(path) {
        Ok(()) => {
            let _ = writeln!(out, "  -> {}", path.display());
        }
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

// --------------------------------------------------------------------
// `figures fleet`: multi-tenant runs with cross-tenant policy transfer.

struct FleetCli {
    tenants: Option<usize>,
    seed: u64,
    cold: Option<usize>,
    chunk: usize,
    list: bool,
    no_control: bool,
    radius: f64,
    checkpoint_dir: Option<PathBuf>,
    stop_after: Option<usize>,
    resume: Option<PathBuf>,
    warm_start: Option<PathBuf>,
}

fn fleet_usage() -> ! {
    eprintln!(
        "usage: figures fleet [<tenants>] [--seed N] [--cold N] [--chunk N] [--radius D] \
         [--quick] [--no-control] [--checkpoint <dir>] [--stop-after N] \
         [--warm-start <file>]\n       \
         figures fleet [<tenants>] [--seed N] --resume <file>\n       \
         figures fleet [<tenants>] [--seed N] --list"
    );
    eprintln!(
        "defaults: 200 tenants, seed 42, cold wave = tenants/4, chunk 25, transfer radius \
         0.005; --list prints the generated roster without running anything; --radius sets \
         the max squared feature distance a donor may sit at (>= 2.0 accepts any donor); \
         --no-control skips the matched cold-control run each warm tenant gets by default \
         (halves warm-tenant cost, drops the paired comparison)"
    );
    std::process::exit(2);
}

/// Parses the raw argument tail after the `fleet` token (the global
/// `--quick`/`--quiet` flags were consumed in `main` and are skipped).
fn parse_fleet_cli(raw: &[String]) -> FleetCli {
    let mut cli = FleetCli {
        tenants: None,
        seed: 42,
        cold: None,
        chunk: 25,
        list: false,
        no_control: false,
        radius: 0.005,
        checkpoint_dir: None,
        stop_after: None,
        resume: None,
        warm_start: None,
    };
    let mut i = 0;
    let value = |raw: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match raw.get(*i) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => {
                eprintln!("{flag} needs a value");
                fleet_usage();
            }
        }
    };
    let number = |raw: &[String], i: &mut usize, flag: &str| -> usize {
        let v = value(raw, i, flag);
        match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got `{v}`");
                fleet_usage();
            }
        }
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--list" => cli.list = true,
            "--quick" | "--quiet" => {}
            "--no-control" => cli.no_control = true,
            "--radius" => {
                let v = value(raw, &mut i, "--radius");
                cli.radius = match v.parse::<f64>() {
                    Ok(d) if d > 0.0 => d,
                    _ => {
                        eprintln!("--radius needs a positive number, got `{v}`");
                        fleet_usage();
                    }
                };
            }
            "--seed" => {
                let v = value(raw, &mut i, "--seed");
                cli.seed = match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--seed needs an unsigned integer, got `{v}`");
                        fleet_usage();
                    }
                };
            }
            "--cold" => cli.cold = Some(number(raw, &mut i, "--cold")),
            "--chunk" => cli.chunk = number(raw, &mut i, "--chunk"),
            "--checkpoint" => {
                cli.checkpoint_dir = Some(PathBuf::from(value(raw, &mut i, "--checkpoint")))
            }
            "--stop-after" => cli.stop_after = Some(number(raw, &mut i, "--stop-after")),
            "--resume" => cli.resume = Some(PathBuf::from(value(raw, &mut i, "--resume"))),
            "--warm-start" => {
                cli.warm_start = Some(PathBuf::from(value(raw, &mut i, "--warm-start")))
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown fleet flag: {flag}");
                fleet_usage();
            }
            operand => {
                if cli.tenants.is_some() {
                    eprintln!(
                        "fleet takes at most one tenant-count operand, got a second: {operand}"
                    );
                    fleet_usage();
                }
                cli.tenants = Some(match operand.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("tenant count must be a positive integer, got `{operand}`");
                        fleet_usage();
                    }
                });
            }
        }
        i += 1;
    }
    if cli.stop_after.is_some() && cli.checkpoint_dir.is_none() && cli.resume.is_none() {
        eprintln!("--stop-after only makes sense with --checkpoint or --resume");
        fleet_usage();
    }
    if cli.resume.is_some() && cli.warm_start.is_some() {
        eprintln!(
            "--resume restores the transfer store from the checkpoint; --warm-start \
                   only applies to a fresh fleet"
        );
        fleet_usage();
    }
    cli
}

/// Entry point for `figures fleet ...`: generates the tenant roster,
/// runs every tenant's RAC experiment sharded over the global runner
/// with nearest-neighbor policy transfer, and writes the per-tenant,
/// aggregate, and scaling CSVs under `results/`.
fn run_fleet(raw: &[String], opts: &Options, console: &Console) {
    let cli = parse_fleet_cli(raw);
    let tenants = cli.tenants.unwrap_or(200);
    let cold = cli.cold.unwrap_or_else(|| (tenants / 4).max(1));
    let config = fleet::FleetConfig {
        tenants,
        seed: cli.seed,
        cold,
        chunk: cli.chunk,
        // Bundled scenarios span 7200 s; compress the timeline (same
        // iteration count, shorter intervals) so a 200-tenant fleet
        // finishes in minutes. `--quick` compresses 3x harder.
        scale_den: if opts.quick { 15 } else { 5 },
        online_levels: ONLINE_LEVELS,
        control: !cli.no_control,
        radius: cli.radius,
    };

    if cli.list {
        let roster = fleet::generate(config.tenants, config.seed);
        println!(
            "fleet roster: {} tenants from seed {}",
            config.tenants, config.seed
        );
        print!("{}", rac_bench::fleet::roster_table(&roster));
        return;
    }

    if obs::enabled() {
        obs::health::global().begin_job(&format!("fleet {tenants}"));
    }
    let fail = |msg: String| -> ! {
        eprintln!("{msg}");
        if obs::enabled() {
            obs::health::global().finish_job(false);
        }
        std::process::exit(2);
    };

    let mut run = if let Some(path) = &cli.resume {
        let snap = load_resume_snapshot_or_exit(path);
        match fleet::FleetRun::resume(config.clone(), &snap) {
            Ok(run) => {
                console.note(format!(
                    "  resume: {}/{} tenants already finished ({} donors)",
                    run.done(),
                    tenants,
                    run.store().len()
                ));
                run
            }
            Err(e) => fail(format!("cannot resume from {}: {e}", path.display())),
        }
    } else if let Some(path) = &cli.warm_start {
        let snap = load_snapshot_or_exit(path, "warm-start");
        match fleet::FleetRun::with_library(config.clone(), &snap) {
            Ok(run) => {
                console.note(format!(
                    "  warm start: {} library donor(s) from {}",
                    run.store().len(),
                    path.display()
                ));
                run
            }
            Err(e) => fail(format!("cannot warm-start from {}: {e}", path.display())),
        }
    } else {
        match fleet::FleetRun::new(config.clone()) {
            Ok(run) => run,
            Err(e) => fail(format!("{e}")),
        }
    };

    let ckpt_path = match (&cli.resume, &cli.checkpoint_dir) {
        (Some(path), _) => Some(path.clone()),
        (None, Some(dir)) => Some(dir.join("fleet.ckpt")),
        (None, None) => None,
    };

    let runner = Runner::global();
    console.note(format!(
        "fleet: {} tenants (cold wave {}, chunks of {}), seed {}, {} worker thread(s) [RAC_THREADS]",
        tenants,
        config.cold,
        config.chunk,
        config.seed,
        runner.threads()
    ));
    let started = Instant::now();
    let mut milestones: Vec<(usize, f64)> = Vec::new();
    while !run.is_complete() {
        match run.step(runner) {
            Ok(_) => {}
            Err(e) => fail(format!("fleet step failed: {e}")),
        }
        milestones.push((run.done(), started.elapsed().as_secs_f64()));
        console.note(format!(
            "  fleet: {}/{} tenants, {} donor(s), {:.1}s",
            run.done(),
            tenants,
            run.store().len(),
            started.elapsed().as_secs_f64()
        ));
        if let Some(path) = &ckpt_path {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).ok();
                }
            }
            let mut snap = ckpt::SnapshotWriter::new();
            run.save(&mut snap);
            if let Err(e) = snap.write_atomic(path) {
                fail(format!("cannot checkpoint to {}: {e}", path.display()));
            }
        }
        if let Some(stop) = cli.stop_after {
            if run.done() >= stop && !run.is_complete() {
                // Interrupted runs write no CSVs: their outputs exist to
                // be byte-compared once resumed to completion.
                console.note(format!(
                    "  fleet: stopping after {} tenants (checkpointed; resume with --resume)",
                    run.done()
                ));
                if obs::enabled() {
                    obs::health::global().finish_job(true);
                }
                return;
            }
        }
    }

    let stats = rac_bench::fleet::aggregate(&run);
    let table = rac_bench::fleet::aggregate_table(&stats);
    println!(
        "fleet: {} tenants, seed {} — SLA attainment by cohort",
        tenants, config.seed
    );
    print!("{table}");
    let [cold_stats, warm_stats, control_stats, _] = &stats;
    if control_stats.tenants > 0 {
        // The matched-pair comparison: the same tenants, warm vs cold.
        // (warm vs the cold *wave* compares different tenants and mostly
        // measures roster composition.)
        println!(
            "policy transfer: warm-started tenants reached SLA in {:.1} iterations (mean) vs \
             {:.1} for their matched cold controls — {:.1}% fewer",
            warm_stats.mean_iters_to_sla,
            control_stats.mean_iters_to_sla,
            100.0 * (1.0 - warm_stats.mean_iters_to_sla / control_stats.mean_iters_to_sla)
        );
    } else if warm_stats.tenants > 0 && cold_stats.tenants > 0 {
        println!(
            "policy transfer: warm cohort mean {:.1} iterations to SLA vs cold wave {:.1} \
             (unmatched cohorts — rerun without --no-control for the paired comparison)",
            warm_stats.mean_iters_to_sla, cold_stats.mean_iters_to_sla
        );
    }

    std::fs::create_dir_all(&opts.results_dir).ok();
    for (file, text) in [
        ("fleet-tenants.csv", rac_bench::fleet::tenants_csv(&run)),
        ("fleet-aggregate.csv", table.render_csv()),
        (
            "fleet-scaling.csv",
            rac_bench::fleet::scaling_csv(runner.threads(), &milestones),
        ),
    ] {
        let path = opts.results_dir.join(file);
        match std::fs::write(&path, text) {
            Ok(()) => println!("  -> {}", path.display()),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
    }
    console.note(format!(
        "\ntotal: {:.1}s wall-clock over {} tenants ({:.2} tenants/s)",
        started.elapsed().as_secs_f64(),
        tenants,
        tenants as f64 / started.elapsed().as_secs_f64().max(1e-9)
    ));
    write_metrics_snapshot(opts, console);
    if obs::enabled() {
        obs::health::global().finish_job(true);
    }
}
