//! Reproduction harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run --release -p rac-bench --bin figures -- all
//! cargo run --release -p rac-bench --bin figures -- fig5
//! cargo run --release -p rac-bench --bin figures -- fig2 --quick
//! ```
//!
//! Each subcommand prints the series/rows the paper reports and writes a
//! CSV under `results/`. Offline-trained policies are cached under
//! `results/cache/`.

use std::path::{Path, PathBuf};

use rac::{
    grouping, paper_contexts, Experiment, IterationRecord, RacAgent, RacSettings, StaticDefault,
    TrialAndError, Tuner,
};
use rac_bench::output::{ascii_chart, TextTable};
use rac_bench::{paper_system_spec, standard_policy_library, standard_settings, ONLINE_LEVELS};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{measure_config, Param, ServerConfig, SystemSpec};

/// Global run options.
#[derive(Debug, Clone)]
struct Options {
    /// Shrink intervals/iterations for a fast smoke run.
    quick: bool,
    results_dir: PathBuf,
}

impl Options {
    fn interval(&self) -> SimDuration {
        SimDuration::from_secs(if self.quick { 90 } else { 300 })
    }

    fn warmup(&self) -> SimDuration {
        SimDuration::from_secs(if self.quick { 120 } else { 600 })
    }

    fn iters(&self, full: usize) -> usize {
        if self.quick {
            (full / 3).max(5)
        } else {
            full
        }
    }

    fn cache_dir(&self) -> PathBuf {
        self.results_dir.join("cache")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cmds: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let opts = Options { quick, results_dir: PathBuf::from("results") };

    let run = |cmd: &str| match cmd {
        "table1" => table1(&opts),
        "table2" => table2(&opts),
        "fig1" => fig1(&opts),
        "fig2" => fig2(&opts),
        "fig3" => fig3(&opts),
        "fig4" => fig4(&opts),
        "fig5" => fig5(&opts),
        "fig6" => fig6(&opts),
        "fig7" => fig7(&opts),
        "fig8" => fig8(&opts),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&opts),
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("available: table1 table2 fig1..fig10 all [--quick]");
            std::process::exit(2);
        }
    };

    if cmds.is_empty() || cmds.contains(&"all") {
        for cmd in [
            "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10",
        ] {
            run(cmd);
        }
    } else {
        for cmd in cmds {
            run(cmd);
        }
    }
}

fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

// --------------------------------------------------------------------
// Tables
// --------------------------------------------------------------------

fn table1(opts: &Options) {
    banner("Table 1: tunable performance-critical parameters");
    let mut t = TextTable::new(&["tier", "parameter", "range", "default"]);
    for p in Param::ALL {
        let (lo, hi) = p.range();
        t.row(&[
            p.tier().to_string(),
            p.name().to_string(),
            format!("[{lo}, {hi}]"),
            p.default_value().to_string(),
        ]);
    }
    print!("{t}");
    save(&t, opts, "table1.csv");
}

fn table2(opts: &Options) {
    banner("Table 2: example system contexts");
    let mut t = TextTable::new(&["context", "workload mix", "VM resources"]);
    for (i, c) in paper_contexts().iter().enumerate() {
        t.row(&[
            format!("Context-{}", i + 1),
            c.mix.to_string(),
            c.level.to_string(),
        ]);
    }
    print!("{t}");
    save(&t, opts, "table2.csv");
}

// --------------------------------------------------------------------
// Motivation figures (Section 2)
// --------------------------------------------------------------------

/// Finds the best configuration for a context by measuring the coarse
/// grouped sampling plan (the paper's "best out of our test cases").
fn best_config_for(spec: &SystemSpec, opts: &Options) -> (ServerConfig, f64) {
    let plan = grouping::sampling_plan(3);
    let mut best = (ServerConfig::default(), f64::INFINITY);
    for (_, config) in plan {
        let s = measure_config(spec, config, opts.warmup(), opts.interval());
        if s.mean_response_ms < best.1 {
            best = (config, s.mean_response_ms);
        }
    }
    best
}

fn fig1(opts: &Options) {
    banner("Figure 1: performance under configurations tuned for different workloads");
    let spec = paper_system_spec();
    let mixes = [Mix::Ordering, Mix::Shopping, Mix::Browsing];
    let tuned: Vec<(Mix, ServerConfig)> = mixes
        .iter()
        .map(|&mix| {
            eprintln!("  tuning for {mix}…");
            let (cfg, _) = best_config_for(&spec.clone().with_mix(mix), opts);
            (mix, cfg)
        })
        .collect();

    let mut t = TextTable::new(&["workload", "ordering-best cfg", "shopping-best cfg", "browsing-best cfg"]);
    for &run_mix in &mixes {
        let mut cells = vec![run_mix.to_string()];
        for (_, cfg) in &tuned {
            let s = measure_config(
                &spec.clone().with_mix(run_mix),
                *cfg,
                opts.warmup(),
                opts.interval(),
            );
            cells.push(format!("{:.0}", s.mean_response_ms));
        }
        t.row(&cells);
    }
    print!("{t}");
    println!("(rows: workload actually run; columns: whose best configuration; cells: mean response time in ms)");
    save(&t, opts, "fig1.csv");
}

fn fig2(opts: &Options) {
    banner("Figure 2: effect of MaxClients under different VM configurations");
    let sweep: Vec<u32> = vec![5, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600];
    let mut t = TextTable::new(&["MaxClients", "Level-1", "Level-2", "Level-3"]);
    let mut series: Vec<(&str, Vec<f64>)> =
        vec![("Level-1", Vec::new()), ("Level-2", Vec::new()), ("Level-3", Vec::new())];
    for &mc in &sweep {
        let cfg = ServerConfig::default().with(Param::MaxClients, mc).expect("in range");
        let mut cells = vec![mc.to_string()];
        for (i, level) in ResourceLevel::ALL.iter().enumerate() {
            let spec = paper_system_spec().with_level(*level);
            let s = measure_config(&spec, cfg, opts.warmup(), opts.interval());
            cells.push(format!("{:.0}", s.mean_response_ms));
            series[i].1.push(s.mean_response_ms);
        }
        t.row(&cells);
    }
    print!("{t}");
    print!("{}", ascii_chart(&series, 12));
    for (name, values) in &series {
        let (best_idx, best) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty sweep");
        println!("  preferred MaxClients on {name}: {} ({best:.0} ms)", sweep[best_idx]);
    }
    save(&t, opts, "fig2.csv");
}

fn fig3(opts: &Options) {
    banner("Figure 3: performance under configurations tuned for different VM levels");
    let spec = paper_system_spec();
    let tuned: Vec<(ResourceLevel, ServerConfig)> = ResourceLevel::ALL
        .iter()
        .map(|&level| {
            eprintln!("  tuning for {level}…");
            let (cfg, _) = best_config_for(&spec.clone().with_level(level), opts);
            (level, cfg)
        })
        .collect();

    let mut t =
        TextTable::new(&["platform", "level1-best cfg", "level2-best cfg", "level3-best cfg"]);
    for &run_level in &ResourceLevel::ALL {
        let mut cells = vec![run_level.to_string()];
        for (_, cfg) in &tuned {
            let s = measure_config(
                &spec.clone().with_level(run_level),
                *cfg,
                opts.warmup(),
                opts.interval(),
            );
            cells.push(format!("{:.0}", s.mean_response_ms));
        }
        t.row(&cells);
    }
    print!("{t}");
    save(&t, opts, "fig3.csv");
}

fn fig4(opts: &Options) {
    banner("Figure 4: concave upward effect of MaxClients and regression");
    let sweep: Vec<u32> = (0..=11).map(|i| 50 + i * 50).collect();
    let spec = paper_system_spec();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &mc in &sweep {
        let cfg = ServerConfig::default().with(Param::MaxClients, mc).expect("in range");
        let s = measure_config(&spec, cfg, opts.warmup(), opts.interval());
        xs.push(vec![mc as f64]);
        ys.push(s.mean_response_ms);
    }
    // Winsorize exactly like the initialization pipeline: the choked
    // low-MaxClients corner is orders of magnitude off-scale and would
    // dominate the least-squares fit.
    let mut sorted = ys.clone();
    sorted.sort_by(f64::total_cmp);
    let cap = sorted[sorted.len() / 2] * 25.0;
    let fit_ys: Vec<f64> = ys.iter().map(|y| y.min(cap)).collect();
    let model = numerics::PolynomialModel::fit(&xs, &fit_ys).expect("quadratic fit");
    let mut t = TextTable::new(&["MaxClients", "measured (ms)", "regression (ms)"]);
    let mut measured = Vec::new();
    let mut fitted = Vec::new();
    for (x, y) in xs.iter().zip(&ys) {
        let pred = model.predict(x);
        t.row(&[format!("{}", x[0] as u32), format!("{y:.0}"), format!("{pred:.0}")]);
        measured.push(*y);
        fitted.push(pred);
    }
    print!("{t}");
    print!("{}", ascii_chart(&[("measured", measured), ("regression", fitted)], 12));
    println!("  fit: r² = {:.3}, rmse = {:.1} ms", model.quality().r_squared, model.quality().rmse);
    save(&t, opts, "fig4.csv");
}

// --------------------------------------------------------------------
// Online-learning figures (Section 5)
// --------------------------------------------------------------------

/// Runs one tuner through an experiment and returns its response-time
/// series.
fn run_series(exp: &Experiment, tuner: &mut dyn Tuner) -> Vec<IterationRecord> {
    exp.run(tuner)
}

fn response_series(records: &[IterationRecord]) -> Vec<f64> {
    records.iter().map(|r| r.response_ms).collect()
}

/// The iteration after which the series stays within 20% of its final
/// plateau (mean of the last 5 samples) — "driven to a stable state".
fn convergence_iteration(series: &[f64]) -> Option<usize> {
    if series.len() < 6 {
        return None;
    }
    let tail: f64 = series[series.len() - 5..].iter().sum::<f64>() / 5.0;
    if !tail.is_finite() {
        return None;
    }
    let ok = |v: f64| v.is_finite() && (v - tail).abs() <= 0.2 * tail.abs().max(1.0);
    let mut candidate = None;
    for (i, &v) in series.iter().enumerate() {
        if ok(v) {
            candidate.get_or_insert(i);
        } else {
            candidate = None;
        }
    }
    candidate
}

fn experiment_123(opts: &Options) -> Experiment {
    let contexts = paper_contexts();
    let n = opts.iters(30);
    Experiment::new(paper_system_spec())
        .with_interval(opts.interval())
        .with_warmup(opts.warmup())
        .then(contexts[0], n)
        .then(contexts[1], n)
        .then(contexts[2], n)
}

fn series_table(
    opts: &Options,
    file: &str,
    named: &[(&str, &Vec<IterationRecord>)],
) {
    let mut headers = vec!["iteration"];
    headers.extend(named.iter().map(|(n, _)| *n));
    let mut t = TextTable::new(&headers);
    let len = named.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..len {
        let mut cells = vec![i.to_string()];
        for (_, s) in named {
            cells.push(
                s.get(i).map(|r| format!("{:.0}", r.response_ms)).unwrap_or_default(),
            );
        }
        t.row(&cells);
    }
    save(&t, opts, file);
    let chart: Vec<(&str, Vec<f64>)> =
        named.iter().map(|(n, s)| (*n, response_series(s))).collect();
    print!("{}", ascii_chart(&chart, 14));
}

fn mean_of(series: &[IterationRecord]) -> f64 {
    rac::series_mean(series)
}

fn fig5(opts: &Options) {
    banner("Figure 5: performance due to different auto-configuration policies");
    let library = standard_policy_library(&opts.cache_dir());
    let exp = experiment_123(opts);

    let mut rac_agent = RacAgent::with_policy_library(standard_settings(), library);
    let rac_series = run_series(&exp, &mut rac_agent);
    let mut tae = TrialAndError::new(ONLINE_LEVELS);
    let tae_series = run_series(&exp, &mut tae);
    let mut dflt = StaticDefault::new();
    let dflt_series = run_series(&exp, &mut dflt);

    series_table(
        opts,
        "fig5.csv",
        &[
            ("RAC", &rac_series),
            ("trial-and-error", &tae_series),
            ("static default", &dflt_series),
        ],
    );

    let (m_rac, m_tae, m_dflt) =
        (mean_of(&rac_series), mean_of(&tae_series), mean_of(&dflt_series));
    println!("  mean response time: RAC {m_rac:.0} ms | trial-and-error {m_tae:.0} ms | default {m_dflt:.0} ms");
    println!(
        "  RAC improvement: {:.0}% vs trial-and-error, {:.0}% vs static default",
        100.0 * (m_tae - m_rac) / m_tae,
        100.0 * (m_dflt - m_rac) / m_dflt
    );
    let n = exp.total_iterations() / 3;
    for (phase, label) in [(0, "context-1"), (1, "context-2"), (2, "context-3")] {
        let slice = &response_series(&rac_series)[phase * n..(phase + 1) * n];
        match convergence_iteration(slice) {
            Some(it) => println!("  RAC stabilized in {label} after {it} iterations"),
            None => println!("  RAC did not stabilize in {label}"),
        }
    }
    println!("  RAC policy switches: {}", rac_agent.policy_switches());
}

fn fig6(opts: &Options) {
    banner("Figure 6: effect of online training");
    let library = standard_policy_library(&opts.cache_dir());
    let context = paper_contexts()[0];
    let policy = library.for_context(context).expect("context-1 policy").clone();
    let exp = Experiment::new(paper_system_spec())
        .with_interval(opts.interval())
        .with_warmup(opts.warmup())
        .then(context, opts.iters(40));

    let mut with_ol = RacAgent::with_initial_policy(standard_settings(), &policy);
    let with_series = run_series(&exp, &mut with_ol);
    let mut without_ol = RacAgent::with_initial_policy(
        RacSettings { online_learning: false, ..standard_settings() },
        &policy,
    );
    let without_series = run_series(&exp, &mut without_ol);

    series_table(
        opts,
        "fig6.csv",
        &[("w/ online learning", &with_series), ("w/o online learning", &without_series)],
    );
    let tail = with_series.len().saturating_sub(10);
    println!(
        "  stable performance: w/ online learning {:.0} ms | w/o {:.0} ms",
        mean_of(&with_series[tail..]),
        mean_of(&without_series[tail..])
    );
}

fn fig7(opts: &Options) {
    banner("Figure 7: performance with and without policy initialization");
    let library = standard_policy_library(&opts.cache_dir());
    for (sub, ctx_index) in [("a", 1usize), ("b", 3usize)] {
        let context = paper_contexts()[ctx_index];
        println!("-- Figure 7({sub}): context-{}", ctx_index + 1);
        let policy = library.for_context(context).expect("Table-2 context").clone();
        let exp = Experiment::new(paper_system_spec())
            .with_interval(opts.interval())
            .with_warmup(opts.warmup())
            .then(context, opts.iters(30));

        let mut with_init = RacAgent::with_initial_policy(standard_settings(), &policy);
        let with_series = run_series(&exp, &mut with_init);
        let mut without_init = RacAgent::new(standard_settings());
        let without_series = run_series(&exp, &mut without_init);

        series_table(
            opts,
            &format!("fig7{sub}.csv"),
            &[("w/ init policy", &with_series), ("w/o init policy", &without_series)],
        );
        println!(
            "  mean: w/ init {:.0} ms | w/o init {:.0} ms | stable-after: {:?}",
            mean_of(&with_series),
            mean_of(&without_series),
            convergence_iteration(&response_series(&with_series))
        );
    }
}

fn fig8(opts: &Options) {
    banner("Figure 8: effect of online exploration rates");
    let library = standard_policy_library(&opts.cache_dir());
    let context = paper_contexts()[0];
    let policy = library.for_context(context).expect("context-1 policy").clone();
    let exp = Experiment::new(paper_system_spec())
        .with_interval(opts.interval())
        .with_warmup(opts.warmup())
        .then(context, opts.iters(50));

    let mut all = Vec::new();
    for epsilon in [0.05, 0.1, 0.3] {
        // The paper's experiment uses plain (unguarded) ε-greedy — the
        // whole point is to see what raw exploration costs online.
        let mut agent = RacAgent::with_initial_policy(
            RacSettings {
                epsilon,
                exploration_guard: f64::INFINITY,
                ..standard_settings()
            },
            &policy,
        );
        all.push((format!("rate {epsilon}"), run_series(&exp, &mut agent)));
    }
    let named: Vec<(&str, &Vec<IterationRecord>)> =
        all.iter().map(|(n, s)| (n.as_str(), s)).collect();
    series_table(opts, "fig8.csv", &named);
    for (name, series) in &all {
        let rts = response_series(series);
        let median = {
            let mut v: Vec<f64> = rts.iter().copied().filter(|x| x.is_finite()).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let spikes = rts.iter().filter(|&&rt| rt > 2.0 * median).count();
        println!("  {name}: mean {:.0} ms, spikes (>2x median): {spikes}", mean_of(series));
    }
}

fn fig9(opts: &Options) {
    banner("Figure 9: performance with static and adaptive policy initialization");
    let library = standard_policy_library(&opts.cache_dir());
    let static_policy = library.for_context(paper_contexts()[1]).expect("context-2").clone();
    for (sub, ctx_index) in [("a", 4usize), ("b", 5usize)] {
        let context = paper_contexts()[ctx_index];
        println!("-- Figure 9({sub}): context-{}", ctx_index + 1);
        let exp = Experiment::new(paper_system_spec())
            .with_interval(opts.interval())
            .with_warmup(opts.warmup())
            .then(context, opts.iters(40));

        let mut adaptive = RacAgent::with_policy_library(standard_settings(), library.clone());
        let adaptive_series = run_series(&exp, &mut adaptive);
        let mut static_agent = RacAgent::with_initial_policy(standard_settings(), &static_policy);
        let static_series = run_series(&exp, &mut static_agent);

        series_table(
            opts,
            &format!("fig9{sub}.csv"),
            &[("adaptive init policy", &adaptive_series), ("static init policy", &static_series)],
        );
        println!(
            "  mean: adaptive {:.0} ms | static {:.0} ms | static stable-after {:?}",
            mean_of(&adaptive_series),
            mean_of(&static_series),
            convergence_iteration(&response_series(&static_series))
        );
    }
}

fn fig10(opts: &Options) {
    banner("Figure 10: performance due to different RL policies");
    let library = standard_policy_library(&opts.cache_dir());
    let static_policy = library.for_context(paper_contexts()[1]).expect("context-2").clone();
    let exp = experiment_123(opts);

    let mut adaptive = RacAgent::with_policy_library(standard_settings(), library.clone());
    let adaptive_series = run_series(&exp, &mut adaptive);
    let mut static_agent = RacAgent::with_initial_policy(standard_settings(), &static_policy);
    let static_series = run_series(&exp, &mut static_agent);
    let mut cold = RacAgent::new(standard_settings());
    let cold_series = run_series(&exp, &mut cold);

    series_table(
        opts,
        "fig10.csv",
        &[
            ("adaptive init", &adaptive_series),
            ("static init", &static_series),
            ("w/o init", &cold_series),
        ],
    );
    let (ma, ms, mc) =
        (mean_of(&adaptive_series), mean_of(&static_series), mean_of(&cold_series));
    println!("  mean response time: adaptive {ma:.0} ms | static {ms:.0} ms | w/o init {mc:.0} ms");
    println!("  static-vs-adaptive loss: {:.0}%", 100.0 * (ms - ma) / ma);
}

// --------------------------------------------------------------------

fn save(t: &TextTable, opts: &Options, file: &str) {
    let path: &Path = &opts.results_dir.join(file);
    match t.write_csv(path) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}
