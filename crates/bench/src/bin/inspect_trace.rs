//! Replays a decision trace (`results/<cmd>.trace.jsonl`, written by the
//! `figures` bin under `RAC_OBS=trace`) into summary tables: the reward
//! curve, the per-context action mix, violation episodes and policy
//! switches, and runner-batch cache efficiency.
//!
//! ```text
//! RAC_OBS=trace cargo run --release -p rac-bench --bin figures -- fig5 --quick
//! cargo run --release -p rac-bench --bin inspect_trace -- results/fig5.trace.jsonl
//! ```
//!
//! The bin doubles as a schema check: any malformed line, unknown event
//! kind, or decision event missing a required field fails the process
//! with a non-zero exit status (CI runs it after a traced figure).
//!
//! With `--follow` the bin tails one growing trace instead: a live
//! `figures scenario <name> --serve <addr>` run flushes its
//! (prefix-stable) trace between tuner sessions, and the follower polls
//! the file, schema-checks each appended line, and prints a one-line
//! summary per event until the file stays idle for `--max-idle-ms`
//! (default 15000).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use obs::event::parse_line;
use obs::{Event, Value};
use rac_bench::output::{ascii_chart, TextTable};

/// Field names every `decision` event must carry (the schema contract
/// documented in DESIGN.md; `inspect_trace` is its executable check).
const DECISION_FIELDS: [&str; 17] = [
    "iter",
    "rt_ms",
    "p95_ms",
    "tput_rps",
    "completed",
    "refused",
    "reward",
    "epsilon",
    "state",
    "action",
    "next_state",
    "q_delta",
    "sweep_passes",
    "streak",
    "switched",
    "switches",
    "calibration",
];

fn usage() -> ExitCode {
    eprintln!("usage: inspect_trace <trace.jsonl>...");
    eprintln!("       inspect_trace --follow <trace.jsonl> [--max-idle-ms <n>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut follow_mode = false;
    let mut max_idle_ms: u64 = 15_000;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--follow" => follow_mode = true,
            "--max-idle-ms" => {
                i += 1;
                max_idle_ms = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return usage(),
                };
            }
            a if a.starts_with("--") => return usage(),
            a => paths.push(a.to_string()),
        }
        i += 1;
    }
    if follow_mode {
        let [path] = paths.as_slice() else {
            eprintln!("inspect_trace: --follow takes exactly one trace file");
            return usage();
        };
        return match follow(Path::new(path), max_idle_ms) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if paths.is_empty() {
        return usage();
    }
    let mut failed = false;
    for path in &paths {
        match inspect(Path::new(path)) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Tails a growing trace: polls the file, parses + schema-checks lines
/// beyond the last seen one, prints a one-line summary per new event,
/// and returns once the file has been idle for `max_idle_ms`.
///
/// The writer flushes whole-prefix snapshots (`fs::write`), so a poll
/// can catch a torn mid-write file; parse errors are therefore treated
/// as transient and only reported if they persist through the idle
/// window. A file that *shrinks* (a fresh run truncated it) resets the
/// follower to the top.
fn follow(path: &Path, max_idle_ms: u64) -> Result<(), String> {
    let poll = Duration::from_millis(200);
    let max_idle = Duration::from_millis(max_idle_ms);
    let mut seen = 0usize;
    let mut idle = Duration::ZERO;
    let mut last_err: Option<String> = None;
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let complete = complete_lines(&text);
        if complete < seen {
            println!("-- follow: {} truncated; restarting", path.display());
            seen = 0;
        }
        match scan_new(&text, seen) {
            Ok(events) if !events.is_empty() => {
                idle = Duration::ZERO;
                last_err = None;
                for event in &events {
                    println!("{}", brief(event));
                }
                seen = complete;
            }
            Ok(_) => idle += poll,
            Err(e) => {
                // Possibly a torn write: hold the error, retry.
                idle += poll;
                last_err = Some(e);
            }
        }
        if idle >= max_idle {
            return match last_err {
                Some(e) => Err(e),
                None => {
                    println!(
                        "-- follow: {seen} events, idle {}ms; stopping",
                        max_idle.as_millis()
                    );
                    Ok(())
                }
            };
        }
        std::thread::sleep(poll);
    }
}

/// Number of newline-terminated lines in `text`. The final line of a
/// snapshot mid-write may be torn, so the follower only ever consumes
/// terminated lines.
fn complete_lines(text: &str) -> usize {
    text.bytes().filter(|&b| b == b'\n').count()
}

/// Parses + schema-checks the newline-terminated lines after the first
/// `seen`, returning the new events. Line numbers in errors are 1-based
/// over the whole file.
fn scan_new(text: &str, seen: usize) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text
        .split_inclusive('\n')
        .filter(|l| l.ends_with('\n'))
        .enumerate()
        .skip(seen)
    {
        let line = line.trim_end_matches('\n');
        let event = parse_line(line).map_err(|e| {
            format!(
                "line {}: parse error at byte {}: {}",
                lineno + 1,
                e.at,
                e.message
            )
        })?;
        check_schema(&event).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// One-line summary of an event for `--follow` output.
fn brief(event: &Event) -> String {
    let s = |name: &str| {
        event
            .get(name)
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let f = |name: &str| event.get(name).and_then(Value::as_f64).unwrap_or(f64::NAN);
    let u = |name: &str| event.get(name).and_then(Value::as_u64).unwrap_or(0);
    let detail = match event.kind.as_str() {
        "decision" => format!(
            "iter {} action {} reward {:.2} rt {:.0} ms",
            u("iter"),
            s("action"),
            f("reward"),
            f("rt_ms")
        ),
        "experiment" => format!("tuner {}", s("tuner")),
        "phase" => format!("phase {} context {}", u("phase"), s("context")),
        "reconfigure" => format!("iter {}: {} -> {}", u("iter"), s("from"), s("to")),
        "guardrail" => format!("{}: {}", s("action"), s("detail")),
        "scenario_event" => format!("{} ({})", s("event"), s("detail")),
        "checkpoint" => format!("iter {} tuner_iter {}", u("iter"), u("tuner_iter")),
        "runner_batch" => format!("{} jobs, {} distinct", u("jobs"), u("distinct")),
        _ => String::new(),
    };
    format!(
        "[run {}] t={:.0}s {} {}",
        event.run,
        event.t_us as f64 / 1e6,
        event.kind,
        detail
    )
}

fn inspect(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read trace: {e}"))?;
    let events = parse_and_check(&text)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n=== {} ({} events) ===",
        path.display(),
        events.len()
    );
    render_runs(&events, &mut out);
    render_guardrail(&events, &mut out);
    render_scenario(&events, &mut out);
    render_cache(&events, &mut out);
    Ok(out)
}

/// Parses every line and enforces the event schema. Line numbers in
/// errors are 1-based.
fn parse_and_check(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let event = parse_line(line).map_err(|e| {
            format!(
                "line {}: parse error at byte {}: {}",
                lineno + 1,
                e.at,
                e.message
            )
        })?;
        check_schema(&event).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(event);
    }
    Ok(events)
}

fn check_schema(event: &Event) -> Result<(), String> {
    let require = |names: &[&str]| -> Result<(), String> {
        for name in names {
            if event.get(name).is_none() {
                return Err(format!("{} event missing field '{name}'", event.kind));
            }
        }
        Ok(())
    };
    match event.kind.as_str() {
        "decision" => {
            require(&DECISION_FIELDS)?;
            for name in ["rt_ms", "reward", "epsilon", "q_delta", "calibration"] {
                if event.get(name).and_then(Value::as_f64).is_none() {
                    return Err(format!("decision field '{name}' is not numeric"));
                }
            }
            if event.get("action").and_then(Value::as_str).is_none() {
                return Err("decision field 'action' is not a string".to_string());
            }
            if event.get("switched").and_then(Value::as_bool).is_none() {
                return Err("decision field 'switched' is not a bool".to_string());
            }
            Ok(())
        }
        "experiment" => require(&["tuner", "phases", "iterations", "interval_s", "warmup_s"]),
        "phase" => require(&["phase", "context", "iterations"]),
        "reconfigure" => require(&["iter", "from", "to"]),
        "runner_batch" => require(&["jobs", "distinct"]),
        "offline_training" => require(&["context"]),
        "offline_policy" => require(&["samples", "passes", "r_squared"]),
        "scenario_event" => require(&["event", "detail"]),
        "guardrail" => {
            require(&["iter", "action", "detail"])?;
            match event.get("action").and_then(Value::as_str) {
                Some("retry" | "trip" | "probe" | "recover" | "reopen" | "rollback") => Ok(()),
                Some(other) => Err(format!("unknown guardrail action '{other}'")),
                None => Err("guardrail field 'action' is not a string".to_string()),
            }
        }
        "checkpoint" => require(&["iter", "tuner_iter", "tuner"]),
        other => Err(format!("unknown event kind '{other}'")),
    }
}

/// Summarizes each run (one tuning session) in the trace: reward curve,
/// per-context action mix, violation episodes.
fn render_runs(events: &[Event], out: &mut String) {
    let runs: Vec<u64> = {
        let mut seen = Vec::new();
        for e in events {
            if e.kind == "decision" && !seen.contains(&e.run) {
                seen.push(e.run);
            }
        }
        seen
    };
    for run in runs {
        let in_run: Vec<&Event> = events.iter().filter(|e| e.run == run).collect();
        let tuner = in_run
            .iter()
            .find(|e| e.kind == "experiment")
            .and_then(|e| e.get("tuner"))
            .and_then(Value::as_str)
            .unwrap_or("?");
        let _ = writeln!(out, "-- run {run}: {tuner}");

        // Replay in order, tracking the active context from phase events.
        let mut context = String::from("?");
        let mut rewards: Vec<f64> = Vec::new();
        let mut rts: Vec<f64> = Vec::new();
        let mut action_mix: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut episodes = 0u64;
        let mut in_episode = false;
        let mut switches = 0u64;
        for e in &in_run {
            match e.kind.as_str() {
                "phase" => {
                    context = e
                        .get("context")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string();
                }
                "decision" => {
                    rewards.push(e.get("reward").and_then(Value::as_f64).unwrap_or(f64::NAN));
                    rts.push(e.get("rt_ms").and_then(Value::as_f64).unwrap_or(f64::NAN));
                    let action = e
                        .get("action")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string();
                    *action_mix.entry((context.clone(), action)).or_insert(0) += 1;
                    let streak = e.get("streak").and_then(Value::as_u64).unwrap_or(0);
                    if streak > 0 && !in_episode {
                        episodes += 1;
                    }
                    in_episode = streak > 0;
                    if e.get("switched").and_then(Value::as_bool) == Some(true) {
                        switches += 1;
                        // A detector firing ends its episode even though
                        // the streak counter resets to 0 on the same event.
                        in_episode = false;
                    }
                }
                _ => {}
            }
        }
        if rewards.is_empty() {
            let _ = writeln!(out, "   (no decision events)");
            continue;
        }

        let mean = |v: &[f64]| {
            let f: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
            if f.is_empty() {
                f64::NAN
            } else {
                f.iter().sum::<f64>() / f.len() as f64
            }
        };
        let _ = writeln!(
            out,
            "   {} decisions | reward first {:.2} last {:.2} mean {:.2} | mean rt {:.0} ms",
            rewards.len(),
            rewards.first().copied().unwrap_or(f64::NAN),
            rewards.last().copied().unwrap_or(f64::NAN),
            mean(&rewards),
            mean(&rts),
        );
        let _ = write!(out, "{}", ascii_chart(&[("reward", rewards)], 10));

        let mut t = TextTable::new(&["context", "action", "count"]);
        for ((ctx, action), count) in &action_mix {
            t.row(&[ctx.clone(), action.clone(), count.to_string()]);
        }
        let _ = write!(out, "{t}");
        let _ = writeln!(
            out,
            "   violation episodes: {episodes} | policy switches: {switches}"
        );
    }
}

/// Guardrail activity per run: retry absorptions, breaker trips /
/// reopens / recoveries, last-known-good rollbacks, and the number of
/// degraded iterations (derived from trip→recover iteration spans; a
/// trip the trace never sees recover counts up to the last guardrail
/// event). Silent when the trace has no guardrail events.
fn render_guardrail(events: &[Event], out: &mut String) {
    let guard: Vec<&Event> = events.iter().filter(|e| e.kind == "guardrail").collect();
    if guard.is_empty() {
        return;
    }
    let runs: Vec<u64> = {
        let mut seen = Vec::new();
        for e in &guard {
            if !seen.contains(&e.run) {
                seen.push(e.run);
            }
        }
        seen
    };
    let _ = writeln!(out, "-- guardrail: {} events", guard.len());
    let mut t = TextTable::new(&[
        "run",
        "retries",
        "trips",
        "reopens",
        "recoveries",
        "degraded iters",
        "rollbacks",
    ]);
    for run in runs {
        let (mut retries, mut trips, mut reopens, mut recoveries, mut rollbacks) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut degraded = 0u64;
        let mut open_at: Option<u64> = None;
        let mut last_iter = 0u64;
        for e in guard.iter().filter(|e| e.run == run) {
            let iter = e.get("iter").and_then(Value::as_u64).unwrap_or(0);
            last_iter = last_iter.max(iter);
            match e.get("action").and_then(Value::as_str).unwrap_or("?") {
                "retry" => retries += 1,
                "trip" => {
                    trips += 1;
                    open_at.get_or_insert(iter);
                }
                "reopen" => reopens += 1,
                "recover" => {
                    recoveries += 1;
                    if let Some(at) = open_at.take() {
                        degraded += iter.saturating_sub(at);
                    }
                }
                "rollback" => rollbacks += 1,
                _ => {}
            }
        }
        if let Some(at) = open_at {
            // Breaker still open when the trace ends.
            degraded += last_iter.saturating_sub(at);
        }
        t.row(&[
            run.to_string(),
            retries.to_string(),
            trips.to_string(),
            reopens.to_string(),
            recoveries.to_string(),
            degraded.to_string(),
            rollbacks.to_string(),
        ]);
    }
    let _ = write!(out, "{t}");
}

/// Per-event-type summary of the scenario timeline injections recorded
/// in the trace (intensity steps, mix drift, faults, ...), with the
/// first and last occurrence so the injection window is visible at a
/// glance. Silent when the trace has no scenario events.
fn render_scenario(events: &[Event], out: &mut String) {
    let mut by_type: BTreeMap<String, (u64, String, u64, u64)> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "scenario_event") {
        let name = e
            .get("event")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let detail = e
            .get("detail")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        by_type
            .entry(name)
            .and_modify(|(count, _, _, last)| {
                *count += 1;
                *last = e.t_us;
            })
            .or_insert((1, detail, e.t_us, e.t_us));
    }
    if by_type.is_empty() {
        return;
    }
    let total: u64 = by_type.values().map(|(c, _, _, _)| c).sum();
    let _ = writeln!(out, "-- scenario: {total} timeline events");
    let mut t = TextTable::new(&["event", "count", "first (s)", "last (s)", "first detail"]);
    for (name, (count, detail, first, last)) in &by_type {
        t.row(&[
            name.clone(),
            count.to_string(),
            format!("{:.0}", *first as f64 / 1e6),
            format!("{:.0}", *last as f64 / 1e6),
            detail.clone(),
        ]);
    }
    let _ = write!(out, "{t}");
}

/// Cache efficiency as far as the deterministic trace can tell it:
/// within-batch duplicate collapse. (Cross-batch hit rates depend on
/// scheduling and live in `results/metrics.csv` instead.)
fn render_cache(events: &[Event], out: &mut String) {
    let batches: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.kind == "runner_batch")
        .map(|e| {
            (
                e.get("jobs").and_then(Value::as_u64).unwrap_or(0),
                e.get("distinct").and_then(Value::as_u64).unwrap_or(0),
            )
        })
        .collect();
    if batches.is_empty() {
        return;
    }
    let jobs: u64 = batches.iter().map(|&(j, _)| j).sum();
    let distinct: u64 = batches.iter().map(|&(_, d)| d).sum();
    let _ = writeln!(
        out,
        "-- runner: {} batches, {jobs} jobs, {distinct} distinct points ({:.0}% within-batch dedup)",
        batches.len(),
        if jobs > 0 {
            100.0 * (jobs - distinct) as f64 / jobs as f64
        } else {
            0.0
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::trace::{self, TraceWriter};
    use std::sync::Arc;

    fn decision(iter: u64, reward: f64, action: &str, streak: u64, switched: bool) -> Event {
        Event::new("decision")
            .field("iter", iter)
            .field("rt_ms", 500.0)
            .field("p95_ms", 800.0)
            .field("tput_rps", 30.0)
            .field("completed", 900u64)
            .field("refused", 0u64)
            .field("reward", reward)
            .field("epsilon", 0.05)
            .field("state", 1u64)
            .field("action", action)
            .field("next_state", 2u64)
            .field("q_delta", 0.01)
            .field("sweep_passes", 3u64)
            .field("streak", streak)
            .field("switched", switched)
            .field("switches", u64::from(switched))
            .field("calibration", 1.0)
    }

    fn sample_trace() -> String {
        let w = Arc::new(TraceWriter::new());
        trace::with_writer(&w, || {
            trace::begin_run();
            trace::emit(|| {
                Event::new("experiment")
                    .field("tuner", "RAC")
                    .field("phases", 1u64)
                    .field("iterations", 3u64)
                    .field("interval_s", 300.0)
                    .field("warmup_s", 600.0)
            });
            trace::emit(|| {
                Event::new("phase")
                    .field("phase", 0u64)
                    .field("context", "shopping @ Level-1")
                    .field("iterations", 3u64)
            });
            for i in 1..=3u64 {
                trace::set_sim_time_us(i * 300_000_000);
                trace::emit(|| decision(i, i as f64, "Keep", u64::from(i == 2), i == 3));
            }
            trace::emit(|| {
                Event::new("runner_batch")
                    .field("jobs", 10u64)
                    .field("distinct", 7u64)
            });
        });
        w.serialize()
    }

    #[test]
    fn sample_trace_passes_schema_and_summarizes() {
        let text = sample_trace();
        let events = parse_and_check(&text).unwrap();
        assert_eq!(events.len(), 6);
        let mut out = String::new();
        render_runs(&events, &mut out);
        render_cache(&events, &mut out);
        assert!(out.contains("run 1: RAC"), "{out}");
        assert!(out.contains("3 decisions"), "{out}");
        assert!(out.contains("shopping @ Level-1"), "{out}");
        assert!(out.contains("Keep"), "{out}");
        assert!(out.contains("policy switches: 1"), "{out}");
        assert!(out.contains("within-batch dedup"), "{out}");
    }

    #[test]
    fn scenario_events_pass_schema_and_summarize_by_type() {
        let w = Arc::new(TraceWriter::new());
        trace::with_writer(&w, || {
            trace::begin_run();
            for (t_s, event, detail) in [
                (0u64, "intensity", "x1.00"),
                (300, "intensity", "x1.45"),
                (600, "stall", "appdb for 120s"),
                (900, "intensity", "x1.00"),
            ] {
                trace::set_sim_time_us(t_s * 1_000_000);
                trace::emit(|| {
                    Event::new("scenario_event")
                        .field("event", event)
                        .field("detail", detail)
                });
            }
        });
        let events = parse_and_check(&w.serialize()).unwrap();
        let mut out = String::new();
        render_scenario(&events, &mut out);
        assert!(out.contains("4 timeline events"), "{out}");
        assert!(out.contains("intensity"), "{out}");
        assert!(out.contains("appdb for 120s"), "{out}");

        // A scenario event missing its detail fails the schema check.
        let bad = Event::new("scenario_event").field("event", "stall");
        assert!(check_schema(&bad).unwrap_err().contains("detail"));
    }

    #[test]
    fn guardrail_events_pass_schema_and_summarize() {
        let w = Arc::new(TraceWriter::new());
        trace::with_writer(&w, || {
            trace::begin_run();
            for (iter, action, detail) in [
                (2u64, "retry", "timeout recovered by retry"),
                (4, "trip", "2 consecutive acquisition failures"),
                (6, "probe", "cooldown elapsed; probing channel"),
                (7, "recover", "channel healthy after 3 degraded intervals"),
                (
                    9,
                    "rollback",
                    "persistent severe violation; restoring last-known-good state 5",
                ),
            ] {
                trace::set_sim_time_us(iter * 60_000_000);
                trace::emit(|| {
                    Event::new("guardrail")
                        .field("iter", iter)
                        .field("action", action)
                        .field("detail", detail)
                });
            }
        });
        let events = parse_and_check(&w.serialize()).unwrap();
        let mut out = String::new();
        render_guardrail(&events, &mut out);
        assert!(out.contains("guardrail: 5 events"), "{out}");
        // retries=1, trips=1, reopens=0, recoveries=1, degraded 7-4=3,
        // rollbacks=1 for run 1.
        assert!(out.contains('3'), "{out}");
        let row: Vec<&str> = out
            .lines()
            .find(|l| l.trim_start().starts_with('1'))
            .expect("summary row")
            .split_whitespace()
            .collect();
        assert_eq!(row, ["1", "1", "1", "0", "1", "3", "1"], "{out}");

        // An unknown action and a missing field both fail the schema.
        let bad = Event::new("guardrail")
            .field("iter", 1u64)
            .field("action", "explode")
            .field("detail", "boom");
        assert!(check_schema(&bad).unwrap_err().contains("explode"));
        let missing = Event::new("guardrail").field("iter", 1u64);
        assert!(check_schema(&missing).unwrap_err().contains("action"));
    }

    #[test]
    fn decision_rollback_action_passes_schema() {
        let e = decision(3, 0.1, "rollback", 2, false);
        check_schema(&e).unwrap();
    }

    #[test]
    fn unknown_kind_fails_schema() {
        let e = Event::new("mystery");
        assert!(check_schema(&e).is_err());
    }

    #[test]
    fn checkpoint_events_pass_schema() {
        let e = Event::new("checkpoint")
            .field("iter", 10u64)
            .field("tuner_iter", 4u64)
            .field("tuner", 1u64);
        check_schema(&e).unwrap();
        let bad = Event::new("checkpoint").field("iter", 10u64);
        assert!(check_schema(&bad).unwrap_err().contains("tuner"));
    }

    #[test]
    fn missing_decision_field_fails_schema() {
        let e = Event::new("decision").field("iter", 1u64);
        let err = check_schema(&e).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn malformed_line_reports_position() {
        let err =
            parse_and_check("{\"run\":0,\"t_us\":0,\"seq\":0,\"kind\":\"decision\"\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn scan_new_consumes_only_new_terminated_lines() {
        let text = sample_trace();
        let all = scan_new(&text, 0).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(complete_lines(&text), 6);

        // A follower that has seen 4 lines picks up exactly the last 2.
        let tail = scan_new(&text, 4).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].kind, all[4].kind);

        // Nothing new: empty.
        assert!(scan_new(&text, 6).unwrap().is_empty());

        // A torn (unterminated) final line is left for the next poll.
        let torn = format!("{}{}", text, "{\"run\":9,\"t_us\":0,\"se");
        assert_eq!(complete_lines(&torn), 6);
        assert!(scan_new(&torn, 6).unwrap().is_empty());
    }

    #[test]
    fn scan_new_reports_schema_errors_with_line_numbers() {
        let mut text = sample_trace();
        text.push_str("{\"run\":1,\"t_us\":0,\"seq\":99,\"kind\":\"mystery\"}\n");
        let err = scan_new(&text, 6).unwrap_err();
        assert!(err.contains("line 7"), "{err}");
        assert!(err.contains("mystery"), "{err}");
    }

    #[test]
    fn brief_lines_name_the_event() {
        let text = sample_trace();
        let events = scan_new(&text, 0).unwrap();
        let lines: Vec<String> = events.iter().map(brief).collect();
        assert!(lines[0].contains("experiment tuner RAC"), "{:?}", lines[0]);
        assert!(
            lines[2].contains("decision iter 1 action Keep"),
            "{:?}",
            lines[2]
        );
        assert!(lines[2].starts_with("[run 1] t=300s"), "{:?}", lines[2]);
        assert!(
            lines[5].contains("runner_batch 10 jobs, 7 distinct"),
            "{:?}",
            lines[5]
        );
    }
}
