//! `check_prom` — validates Prometheus text-exposition files.
//!
//! CI scrapes the live `/metrics` endpoint into a file and runs this
//! checker over it; any line that is not a well-formed comment, blank,
//! or sample fails the build with its line number and reason.
//!
//! Usage: `check_prom <file>...` (exit 0 iff every file validates).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: check_prom <file>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match obs::export::validate_prometheus(&text) {
            Ok(()) => {
                let samples = text
                    .lines()
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .count();
                println!("{path}: ok ({samples} samples)");
            }
            Err(why) => {
                eprintln!("{path}: {why}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
