//! Diagnostic: inspect cached initial policies — where does each
//! predicted landscape put its optimum, and does the greedy walk from
//! the default configuration pass through dangerous states?
//!
//! Output goes through the obs console exporter; `--quiet` (or
//! `RAC_OBS=off`) suppresses it, which makes the bin usable as a pure
//! cache-validity check via its exit status.

use std::fmt::Write as _;

use obs::Console;
use rac::{Action, ConfigLattice, ConfigMdp, SlaReward};
use rac_bench::{cache, ONLINE_LEVELS, SLA_MS};
use rl::Environment;
use websim::ServerConfig;

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let console = Console::from_env(quiet);
    let _span = obs::Span::start("inspect_policy");
    let lattice = ConfigLattice::new(ONLINE_LEVELS);
    for i in 1..=6 {
        let path =
            std::path::PathBuf::from(format!("results/cache/policy-ctx{i}-L{ONLINE_LEVELS}.bin"));
        let Some(policy) = cache::load_policy(&path, &lattice) else {
            console.note(format!("ctx{i}: no cache"));
            continue;
        };
        let (argmin, min) = policy
            .perf_ms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        let (argmax, max) = policy
            .perf_ms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        console.note(format!(
            "ctx{i}: fit r2={:.3} rmse={:.0} | predicted min {min:.0}ms at {}",
            policy.fit.r_squared,
            policy.fit.rmse,
            lattice.config_at(argmin)
        ));
        console.note(format!(
            "       predicted max {max:.0}ms at {}",
            lattice.config_at(argmax)
        ));

        // Greedy walk from the default configuration.
        let mdp = ConfigMdp::new(&lattice, SlaReward::new(SLA_MS));
        let mut s = lattice.state_of(&ServerConfig::default());
        let mut walk = String::from("       walk:");
        for _ in 0..24 {
            let a = policy.qtable.best_action(s);
            let s2 = mdp.transition(s, a);
            if s2 == s && a == Action::Keep.index() {
                break;
            }
            s = s2;
            let _ = write!(walk, " ->{}", lattice.config_at(s).max_clients());
        }
        let _ = write!(walk, "  end: {}", lattice.config_at(s));
        console.note(walk);
        console.note(format!(
            "       predicted perf at end: {:.0}ms",
            policy.predicted_perf(s)
        ));
    }
}
