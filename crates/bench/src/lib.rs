//! Shared infrastructure for the paper-reproduction harness.
//!
//! The `figures` binary (one subcommand per table/figure of the paper)
//! builds on the helpers here: the canonical testbed specification, the
//! standard agent settings, a disk-cached policy library, and plain-text
//! table / CSV output.

pub mod cache;
pub mod chaos;
pub mod checkpoint;
pub mod crashdrill;
pub mod fleet;
pub mod output;
pub mod perfsuite;
pub mod profile;
pub mod scenario;
pub mod tournament;

use rac::{
    build_policy_library, paper_contexts, ConfigLattice, PolicyLibrary, RacSettings, SlaReward,
    SystemContext, TrainingOptions,
};
use simkernel::SimDuration;
use websim::SystemSpec;

/// Lattice resolution used by all reproduction experiments.
pub const ONLINE_LEVELS: usize = 4;

/// SLA reference used by the reward function (ms).
pub const SLA_MS: f64 = 1_000.0;

/// The canonical simulated testbed: the paper's host (two quad-core
/// Xeons, 8 GB) with a client population heavy enough that configuration
/// genuinely matters.
pub fn paper_system_spec() -> SystemSpec {
    SystemSpec::default().with_clients(600).with_seed(42)
}

/// Standard agent hyper-parameters for the reproduction (paper values).
pub fn standard_settings() -> RacSettings {
    RacSettings {
        online_levels: ONLINE_LEVELS,
        sla_ms: SLA_MS,
        ..RacSettings::default()
    }
}

/// The standard online lattice.
pub fn standard_lattice() -> ConfigLattice {
    ConfigLattice::new(ONLINE_LEVELS)
}

/// Offline-training options used for the policy library.
pub fn standard_training_options() -> TrainingOptions {
    TrainingOptions {
        warmup: SimDuration::from_secs(600),
        measure: SimDuration::from_secs(240),
        ..TrainingOptions::default()
    }
}

/// Builds (or loads from `results/cache/`) the policy library for the
/// six Table-2 contexts. Offline training is the expensive step — the
/// paper reports "more than ten hours" of data collection — so the
/// result is cached on disk keyed by context.
pub fn standard_policy_library(cache_dir: &std::path::Path) -> PolicyLibrary {
    let lattice = standard_lattice();
    let spec = paper_system_spec();
    let reward = SlaReward::new(SLA_MS);
    let options = standard_training_options();
    let mut library = PolicyLibrary::new();
    for (i, context) in paper_contexts().iter().enumerate() {
        let key = format!("policy-ctx{}-L{}.bin", i + 1, ONLINE_LEVELS);
        let path = cache_dir.join(&key);
        let policy = match cache::load_policy(&path, &lattice) {
            Some(policy) => policy,
            None => {
                eprintln!(
                    "  [offline] training initial policy for context-{} ({context})",
                    i + 1
                );
                let policy =
                    rac::train_policy_for_context(&spec, *context, &lattice, reward, options);
                if let Err(e) = cache::store_policy(&path, &policy) {
                    eprintln!("  [offline] warning: could not cache policy: {e}");
                }
                policy
            }
        };
        library.insert(*context, policy);
    }
    library
}

/// Builds the library for a subset of contexts (used by single-figure
/// runs that do not need all six).
pub fn policy_library_for(cache_dir: &std::path::Path, wanted: &[SystemContext]) -> PolicyLibrary {
    let full = standard_policy_library(cache_dir);
    let mut lib = PolicyLibrary::new();
    for ctx in wanted {
        let policy = full.for_context(*ctx).expect("Table-2 context").clone();
        lib.insert(*ctx, policy);
    }
    lib
}

/// Convenience: train the library fresh with cheap settings, for smoke
/// tests of the harness itself.
pub fn quick_policy_library(contexts: &[SystemContext]) -> PolicyLibrary {
    let lattice = ConfigLattice::new(3);
    build_policy_library(
        &paper_system_spec().with_clients(80),
        contexts,
        &lattice,
        SlaReward::new(SLA_MS),
        TrainingOptions {
            warmup: SimDuration::from_secs(60),
            measure: SimDuration::from_secs(60),
            ..TrainingOptions::default()
        },
    )
}

/// A single-context library at the *standard* lattice with cheap
/// training, disk-cached like [`standard_policy_library`]. This is the
/// `racd --library quick` flavor: fast enough for the crash drill and
/// the CI daemon job (one short training pass, then cache hits), while
/// matching the lineup's `ONLINE_LEVELS` lattice so checkpoint
/// dimension checks pass. Deterministic: cached and freshly-trained
/// libraries are identical, so a relaunched daemon seeds the same
/// agent.
pub fn daemon_quick_library(cache_dir: &std::path::Path) -> PolicyLibrary {
    let lattice = standard_lattice();
    let context = paper_contexts()[0];
    let path = cache_dir.join(format!("policy-daemon-quick-L{ONLINE_LEVELS}.bin"));
    let mut library = PolicyLibrary::new();
    let policy = match cache::load_policy(&path, &lattice) {
        Some(policy) => policy,
        None => {
            let lib = build_policy_library(
                &paper_system_spec().with_clients(60),
                &[context],
                &lattice,
                SlaReward::new(SLA_MS),
                TrainingOptions {
                    warmup: SimDuration::from_secs(60),
                    measure: SimDuration::from_secs(60),
                    ..TrainingOptions::default()
                },
            );
            let policy = lib.for_context(context).expect("trained context").clone();
            if let Err(e) = cache::store_policy(&path, &policy) {
                eprintln!("  [offline] warning: could not cache policy: {e}");
            }
            policy
        }
    };
    library.insert(context, policy);
    library
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_and_settings_consistent() {
        let spec = paper_system_spec();
        assert_eq!(spec.clients, 600);
        let s = standard_settings();
        assert_eq!(s.online_levels, ONLINE_LEVELS);
        assert_eq!(standard_lattice().levels(), ONLINE_LEVELS);
    }

    #[test]
    fn quick_library_builds() {
        let contexts = [rac::paper_contexts()[0]];
        let lib = quick_policy_library(&contexts);
        assert_eq!(lib.len(), 1);
    }
}
