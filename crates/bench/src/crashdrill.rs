//! The kill-storm drill: repeatedly SIGKILL a live `racd` daemon at
//! seeded random points — mid-iteration, mid-outage while the
//! measurement breaker is open, and (emulated) mid-checkpoint-write —
//! then assert the relaunched daemon converges to CSV/trace output
//! byte-identical to an uninterrupted run.
//!
//! The drill is a pure function of its seed: the scenario is the
//! seeded chaos schedule (guaranteed blackout, so every seed has a
//! breaker-open window to kill inside) and the kill plan is drawn from
//! the same [`Pcg64`] stream. Kill *timing* is necessarily wall-clock
//! (we are killing a real process), so a targeted kill may land late
//! or after the job finished — the report records where each kill
//! landed, and the byte-identity assertion holds regardless, which is
//! exactly the property under test: no kill point may change the final
//! bytes.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use simkernel::Pcg64;

use crate::chaos::chaos_scenario;

/// Seeds `figures crashdrill` runs when none are given (also the CI
/// daemon job's set).
pub const DEFAULT_SEEDS: [u64; 2] = [7, 77];

/// How one kill was aimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillAim {
    /// As soon as the daemon answers on the admin socket (library
    /// load / scenario start window).
    Startup,
    /// Once `status` reports at least this lineup iteration.
    AtIteration(u64),
    /// Once `status` reports the measurement breaker open (inside the
    /// blackout window).
    BreakerOpen,
}

/// One kill of the plan: an aim, plus whether a torn checkpoint temp
/// file is planted after the kill (the mid-checkpoint-write case — a
/// SIGKILL between the temp write and the atomic rename).
#[derive(Debug, Clone, Copy)]
pub struct PlannedKill {
    /// Where to aim.
    pub aim: KillAim,
    /// Plant `<ckpt>.tmp` garbage after this kill.
    pub torn_tmp: bool,
}

/// The seeded kill plan: 2–4 kills; at least one aims at the
/// breaker-open window and at least one plants a torn temp.
pub fn kill_plan(seed: u64, total_iterations: u64) -> Vec<PlannedKill> {
    let mut rng = Pcg64::seed_from_u64(seed ^ 0xD217);
    let n = 2 + rng.below(3) as usize;
    let mut plan = Vec::with_capacity(n);
    for i in 0..n {
        let aim = match (i, rng.below(4)) {
            // The first kill always exercises the breaker-open window.
            (0, _) => KillAim::BreakerOpen,
            (_, 0) => KillAim::Startup,
            _ => KillAim::AtIteration(1 + rng.below(total_iterations.saturating_sub(2).max(1))),
        };
        plan.push(PlannedKill {
            aim,
            torn_tmp: rng.chance(0.5),
        });
    }
    // Guarantee the mid-checkpoint-write case every seed.
    if !plan.iter().any(|k| k.torn_tmp) {
        plan[0].torn_tmp = true;
    }
    plan
}

/// What happened in one seed's drill.
#[derive(Debug)]
pub struct DrillReport {
    /// The drill seed.
    pub seed: u64,
    /// One human-readable line per kill: aim and where it landed.
    pub kills: Vec<String>,
    /// Failures (empty = converged byte-identically).
    pub failures: Vec<String>,
}

/// Options for [`run_drill`].
pub struct DrillOptions {
    /// Working directory for state/results (usually `results/`).
    pub out_dir: PathBuf,
    /// Scenario length in measured iterations.
    pub iterations: usize,
}

/// Locates the `racd` binary: `$RACD_BIN`, else a sibling of the
/// running executable (both land in `target/<profile>/`).
pub fn find_racd() -> Result<PathBuf, String> {
    if let Ok(p) = std::env::var("RACD_BIN") {
        let p = PathBuf::from(p);
        return if p.exists() {
            Ok(p)
        } else {
            Err(format!("RACD_BIN={} does not exist", p.display()))
        };
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = exe.with_file_name("racd");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "racd binary not found at {} — build it with `cargo build -p racd` \
             or point RACD_BIN at it",
            sibling.display()
        ))
    }
}

/// Runs the full drill for one seed. See the module docs.
///
/// # Errors
///
/// Infrastructure problems (cannot spawn/write); assertion failures are
/// reported in [`DrillReport::failures`] instead.
pub fn run_drill(racd: &Path, seed: u64, opts: &DrillOptions) -> Result<DrillReport, String> {
    let scn = chaos_scenario(seed, opts.iterations);
    // `status` reports the *current tuner's* iteration, so targets aim
    // within one session; which of the three lineup sessions a kill
    // lands in depends on wall-clock, and any landing is a valid drill.
    let total_iterations = scn.iterations() as u64;
    let root = opts.out_dir.join(format!("crashdrill/seed-{seed}"));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| format!("mkdir {}: {e}", root.display()))?;
    let cache = opts.out_dir.join("cache");
    let scn_path = root.join(format!("{}.scn", scn.name));
    std::fs::write(&scn_path, scn.to_string())
        .map_err(|e| format!("write {}: {e}", scn_path.display()))?;
    let csv_name = format!("scenario-{}.csv", scn.name);
    let trace_name = format!("scenario-{}.trace.jsonl", scn.name);

    let mut report = DrillReport {
        seed,
        kills: Vec::new(),
        failures: Vec::new(),
    };

    // Uninterrupted reference run.
    let clean = root.join("clean");
    let status = launch(racd, &clean, &cache, Some(&scn_path), true)
        .map_err(|e| format!("spawn reference racd: {e}"))?
        .wait()
        .map_err(|e| format!("wait reference racd: {e}"))?;
    if status.code() != Some(0) {
        return Err(format!("reference run exited with {status}"));
    }
    let reference_csv = std::fs::read(clean.join("results").join(&csv_name))
        .map_err(|e| format!("reference CSV missing: {e}"))?;
    let reference_trace = std::fs::read(clean.join("results").join(&trace_name)).ok();

    // The drill proper: launch, kill per plan, relaunch.
    let drill = root.join("drill");
    let plan = kill_plan(seed, total_iterations);
    for (i, kill) in plan.iter().enumerate() {
        // Only the first launch injects the scenario; relaunches drain
        // the persisted queue.
        let operand = if i == 0 {
            Some(scn_path.as_path())
        } else {
            None
        };
        let _ = std::fs::remove_file(drill.join("admin.addr"));
        let mut child = launch(racd, &drill, &cache, operand, false)
            .map_err(|e| format!("spawn drill racd: {e}"))?;
        let landed = aim_and_wait(&drill, kill.aim);
        child.kill().map_err(|e| format!("SIGKILL racd: {e}"))?;
        let _ = child.wait();
        report.kills.push(format!(
            "kill {}: aimed {:?}, landed {landed}",
            i + 1,
            kill.aim
        ));
        if !drill.join("racd.dirty").exists() {
            report.failures.push(format!(
                "kill {}: dirty marker not armed after SIGKILL",
                i + 1
            ));
        }
        if kill.torn_tmp {
            // Emulate dying mid-checkpoint-write: a torn temp beside
            // whatever the daemon last committed.
            let ckpt_dir = drill.join("ckpt");
            let _ = std::fs::create_dir_all(&ckpt_dir);
            std::fs::write(
                ckpt_dir.join(format!("{}.ckpt.tmp", scn.name)),
                b"RACCKPT\x00torn-mid-write",
            )
            .map_err(|e| format!("plant torn tmp: {e}"))?;
        }
    }

    // Final relaunch drains the queue to completion.
    let status = launch(racd, &drill, &cache, None, true)
        .map_err(|e| format!("spawn final racd: {e}"))?
        .wait()
        .map_err(|e| format!("wait final racd: {e}"))?;
    if status.code() != Some(0) {
        report
            .failures
            .push(format!("final recovery run exited with {status}"));
        return Ok(report);
    }

    match std::fs::read(drill.join("results").join(&csv_name)) {
        Ok(bytes) if bytes == reference_csv => {}
        Ok(_) => report
            .failures
            .push("CSV bytes differ from the uninterrupted run".to_string()),
        Err(e) => report.failures.push(format!("recovered CSV missing: {e}")),
    }
    match (
        reference_trace,
        std::fs::read(drill.join("results").join(&trace_name)).ok(),
    ) {
        (Some(a), Some(b)) if a == b => {}
        (Some(_), Some(_)) => report
            .failures
            .push("trace bytes differ from the uninterrupted run".to_string()),
        (Some(_), None) => report
            .failures
            .push("recovered trace missing while reference has one".to_string()),
        (None, _) => {} // tracing off
    }
    if drill.join("racd.dirty").exists() {
        report
            .failures
            .push("dirty marker still armed after a clean recovery run".to_string());
    }
    Ok(report)
}

fn launch(
    racd: &Path,
    state: &Path,
    cache: &Path,
    scenario: Option<&Path>,
    once: bool,
) -> std::io::Result<Child> {
    let mut cmd = Command::new(racd);
    cmd.args(["--state", &state.display().to_string()])
        .args(["--cache", &cache.display().to_string()])
        .args(["--every", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if once {
        cmd.arg("--once");
    }
    if let Some(p) = scenario {
        cmd.arg(p);
    }
    cmd.spawn()
}

/// Waits until the aim condition holds (bounded), returning a
/// description of the state the kill actually landed in.
fn aim_and_wait(state: &Path, aim: KillAim) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last = String::from("no status yet");
    while Instant::now() < deadline {
        if let Some(s) = admin_status(state) {
            let done = s.contains("state=idle") && s.contains("queue=0");
            last = s.clone();
            let ready = match aim {
                KillAim::Startup => true,
                KillAim::AtIteration(n) => done || status_field(&s, "iter=") >= n,
                KillAim::BreakerOpen => done || s.contains("breaker_open=true"),
            };
            if ready {
                return last;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    format!("timed out aiming; last status: {last}")
}

fn admin_status(state: &Path) -> Option<String> {
    let addr = std::fs::read_to_string(state.join("admin.addr")).ok()?;
    let mut s = TcpStream::connect(addr.trim()).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    s.write_all(b"status\n").ok()?;
    let mut reply = String::new();
    BufReader::new(s).read_line(&mut reply).ok()?;
    Some(reply.trim_end().to_string())
}

/// Extracts the number following `key` from a status line (0 if absent).
fn status_field(status: &str, key: &str) -> u64 {
    status
        .split(key)
        .nth(1)
        .map(|rest| {
            rest.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
        })
        .and_then(|d| d.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_plans_are_seeded_and_complete() {
        for seed in DEFAULT_SEEDS {
            let a = kill_plan(seed, 72);
            let b = kill_plan(seed, 72);
            assert_eq!(a.len(), b.len(), "plan for seed {seed} not deterministic");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.aim, y.aim);
                assert_eq!(x.torn_tmp, y.torn_tmp);
            }
            assert!((2..=4).contains(&a.len()));
            assert!(
                a.iter().any(|k| matches!(k.aim, KillAim::BreakerOpen)),
                "seed {seed}: no breaker-open kill"
            );
            assert!(
                a.iter().any(|k| k.torn_tmp),
                "seed {seed}: no mid-checkpoint-write kill"
            );
        }
    }

    #[test]
    fn status_fields_parse() {
        let s = "ok state=running job=chaos-7 queue=1 iter=12/72 breaker_open=true \
                 heartbeat=991 restarts=0 dirty_start=true";
        assert_eq!(status_field(s, "iter="), 12);
        assert_eq!(status_field(s, "queue="), 1);
        assert_eq!(status_field(s, "missing="), 0);
    }
}
