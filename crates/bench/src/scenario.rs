//! Scenario-run helpers shared by the `figures scenario` subcommand and
//! the integration tests (golden digest, determinism).
//!
//! Everything here is deliberately sequential: a scenario run must be a
//! pure function of (spec, scenario, seed), bit-identical at any
//! `RAC_THREADS` setting, so the tuner line-up runs one after another
//! instead of fanning out over the global runner.

use std::path::Path;

use rac::{
    Experiment, IterationRecord, PolicyLibrary, RacAgent, StaticDefault, TrialAndError, Tuner,
};
use scenario::Scenario;

use crate::output::TextTable;
use crate::{paper_system_spec, standard_settings, ONLINE_LEVELS};

/// Names of the bundled scenarios, in bundle order.
pub fn bundled_names() -> Vec<&'static str> {
    scenario::bundled::all()
        .into_iter()
        .map(|(n, _)| n)
        .collect()
}

/// Why a scenario operand could not be turned into a [`Scenario`].
#[derive(Debug)]
pub enum ResolveError {
    /// The operand named neither a bundled scenario nor a readable file.
    NotFound {
        /// The operand as given.
        arg: String,
        /// The bundled names that *would* have resolved.
        bundled: Vec<&'static str>,
        /// The error from trying it as a path.
        source: std::io::Error,
    },
    /// The operand was readable but is not a valid scenario.
    Parse {
        /// Where the text came from (operand or `bundled scenario X`).
        origin: String,
        /// The scenario-language error, with line number.
        source: scenario::ParseError,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::NotFound {
                arg,
                bundled,
                source,
            } => write!(
                f,
                "{arg}: not a bundled scenario ({}) and not a readable file: {source}",
                bundled.join(", ")
            ),
            ResolveError::Parse { origin, source } => write!(f, "{origin}: {source}"),
        }
    }
}

impl std::error::Error for ResolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResolveError::NotFound { source, .. } => Some(source),
            ResolveError::Parse { source, .. } => Some(source),
        }
    }
}

/// Resolves a scenario operand: a bundled name first, then a path to a
/// `.scn` file on disk. Parser warnings (directives in the dead zone at
/// or past `duration`) go to stderr — the scenario still runs, but
/// silently inert directives deserve a note.
///
/// # Errors
///
/// Returns [`ResolveError`] when the operand is neither.
pub fn resolve(arg: &str) -> Result<Scenario, ResolveError> {
    let (origin, src) = match scenario::bundled::by_name(arg) {
        Some(src) => (format!("bundled scenario {arg}"), src.to_string()),
        None => {
            let src = std::fs::read_to_string(Path::new(arg)).map_err(|source| {
                ResolveError::NotFound {
                    arg: arg.to_string(),
                    bundled: bundled_names(),
                    source,
                }
            })?;
            (arg.to_string(), src)
        }
    };
    let (scn, warnings) =
        Scenario::parse_with_warnings(&src).map_err(|source| ResolveError::Parse {
            origin: origin.clone(),
            source,
        })?;
    for w in &warnings {
        eprintln!("warning: {origin}: {w}");
    }
    Ok(scn)
}

/// Runs the standard tuner line-up — RAC seeded from the offline policy
/// library, trial-and-error, and the static default — through one
/// scenario, returning each tuner's series under its display name.
pub fn run_tuners(
    scn: &Scenario,
    library: &PolicyLibrary,
) -> Vec<(&'static str, Vec<IterationRecord>)> {
    run_tuners_with(scn, library, |_| {})
}

/// [`run_tuners`] with an `after_each(name)` callback invoked as each
/// tuner's session completes. Live `--serve` runs use it to flush the
/// growing trace to disk between sessions (the serialized trace is
/// prefix-stable, so mid-run flushes are prefixes of the final file);
/// the callback cannot see or influence the runs themselves.
pub fn run_tuners_with<F: FnMut(&'static str)>(
    scn: &Scenario,
    library: &PolicyLibrary,
    mut after_each: F,
) -> Vec<(&'static str, Vec<IterationRecord>)> {
    let exp = Experiment::for_scenario(paper_system_spec(), scn);
    let mut rac_agent = RacAgent::with_policy_library(standard_settings(), library.clone());
    let mut tae = TrialAndError::new(ONLINE_LEVELS);
    let mut dflt = StaticDefault::new();
    let tuners: [(&'static str, &mut dyn Tuner); 3] = [
        ("RAC", &mut rac_agent),
        ("trial-and-error", &mut tae),
        ("static default", &mut dflt),
    ];
    tuners
        .into_iter()
        .map(|(name, tuner)| {
            let series = exp.run_scenario(scn, tuner);
            after_each(name);
            (name, series)
        })
        .collect()
}

/// The per-iteration scenario table: interval start time and offered
/// client population alongside each tuner's mean response time.
pub fn scenario_table(scn: &Scenario, series: &[(&str, Vec<IterationRecord>)]) -> TextTable {
    let base = scn.clients.unwrap_or_else(|| paper_system_spec().clients);
    let clients = scn.offered_clients(base);
    let mut headers = vec!["iteration", "t_s", "clients"];
    headers.extend(series.iter().map(|(n, _)| *n));
    let mut t = TextTable::new(&headers);
    for i in 0..scn.iterations() {
        let t_s = i as u64 * scn.interval.as_micros() / 1_000_000;
        let mut cells = vec![
            i.to_string(),
            t_s.to_string(),
            clients.get(i).map(|c| c.to_string()).unwrap_or_default(),
        ];
        for (_, s) in series {
            cells.push(
                s.get(i)
                    .map(|r| format!("{:.1}", r.response_ms))
                    .unwrap_or_default(),
            );
        }
        t.row(&cells);
    }
    t
}

/// Mean over the finite samples of a series (dropped intervals record an
/// infinite response time and would otherwise poison the mean).
pub fn finite_mean(series: &[IterationRecord]) -> f64 {
    let finite: Vec<f64> = series
        .iter()
        .map(|r| r.response_ms)
        .filter(|x| x.is_finite())
        .collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.iter().sum::<f64>() / finite.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_finds_bundled_and_rejects_garbage() {
        for name in bundled_names() {
            let scn = resolve(name).expect("bundled scenario resolves");
            assert_eq!(scn.name, name);
        }
        let err = resolve("no-such-scenario").unwrap_err();
        assert!(matches!(err, ResolveError::NotFound { .. }));
        let msg = err.to_string();
        assert!(
            msg.contains("diurnal"),
            "error must list bundled names: {msg}"
        );
    }

    #[test]
    fn table_has_time_and_client_columns() {
        let scn = resolve("flash-crowd").unwrap();
        let series: Vec<(&str, Vec<IterationRecord>)> = vec![("RAC", Vec::new())];
        let t = scenario_table(&scn, &series);
        assert_eq!(t.len(), scn.iterations());
        let csv = t.render_csv();
        assert!(csv.starts_with("iteration,t_s,clients,RAC\n"));
        // The spike at 2400s must show in the offered-client column.
        let peak = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse::<usize>().unwrap())
            .max()
            .unwrap();
        assert!(peak > 400, "spike must lift clients above base: {peak}");
    }

    #[test]
    fn finite_mean_skips_dropped_intervals() {
        let rec = |rt: f64| IterationRecord {
            iteration: 0,
            phase: 0,
            response_ms: rt,
            p95_ms: rt,
            throughput_rps: 0.0,
            config: websim::ServerConfig::default(),
        };
        let series = [rec(100.0), rec(f64::INFINITY), rec(200.0)];
        assert!((finite_mean(&series) - 150.0).abs() < 1e-9);
        assert!(finite_mean(&[]).is_nan());
    }
}
