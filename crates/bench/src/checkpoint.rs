//! Crash-safe scenario lineups: one checkpoint file spans the whole
//! three-tuner run of `figures scenario --checkpoint`.
//!
//! The snapshot holds the lineup cursor (which tuner is active), the
//! series of every finished tuner, the active tuner's
//! [`ScenarioProgress`] and learned state, and the serialized decision
//! trace prefix. Resuming restores all of that, replays the active
//! tuner's completed intervals deterministically
//! ([`Experiment::run_scenario_resumable`]), and continues — producing
//! CSV and trace output byte-identical to an uninterrupted run at any
//! `RAC_THREADS`.
//!
//! Trace-equivalence invariants (all load-bearing):
//!
//! * The `checkpoint` trace event is emitted *before* the snapshot is
//!   encoded, so the embedded trace prefix includes it — an interrupted
//!   and resumed run then replays the event from the prefix instead of
//!   re-emitting it.
//! * The event carries only deterministic fields (global iteration,
//!   tuner iteration, tuner index). Bytes written and wall-clock
//!   durations vary run to run, so they go to metrics only.
//! * Whether a boundary flushes is a pure function of the *global*
//!   (whole-lineup) iteration count, so an interrupted run and its
//!   resumption agree on the schedule without communicating.
//! * Restoring is metrics/console-only — no `checkpoint_restored` trace
//!   event, because the uninterrupted reference run never restores.

use std::path::PathBuf;
use std::time::Instant;

use ckpt::{CkptError, Snapshot, SnapshotWriter};
use obs::trace;
use rac::{
    decode_series, encode_series, BoundaryAction, Experiment, IterationRecord, PersistTuner,
    PolicyLibrary, RacAgent, ScenarioProgress, ScenarioRunOutcome, StaticDefault, TrialAndError,
};
use scenario::Scenario;

use crate::{paper_system_spec, standard_settings, ONLINE_LEVELS};

/// Display names of the standard tuner lineup, in run order.
pub const LINEUP: [&str; 3] = ["RAC", "trial-and-error", "static default"];

const SECTION_META: &str = "lineup.meta";
const SECTION_DONE: &str = "lineup.done";
const SECTION_PROGRESS: &str = "lineup.progress";
const SECTION_TRACE: &str = "lineup.trace";

/// How a checkpointed lineup run persists itself.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Snapshot file (atomically replaced at every flush).
    pub path: PathBuf,
    /// Flush to disk every N lineup iterations.
    pub every: usize,
    /// Stop cleanly once N lineup iterations have completed (testing /
    /// CI hook for "the process died here").
    pub stop_after: Option<usize>,
}

/// How a checkpointed lineup run ended.
#[derive(Debug)]
pub enum LineupOutcome {
    /// All three tuners ran; same shape as
    /// [`run_tuners`](crate::scenario::run_tuners).
    Complete(Vec<(&'static str, Vec<IterationRecord>)>),
    /// `stop_after` hit or the control callback asked to stop; the
    /// snapshot on disk resumes the run (unless the stop was an
    /// [`LineupCommand::Abort`], which leaves the last *flushed*
    /// snapshot untouched instead).
    Interrupted {
        /// Lineup iterations completed across all tuners.
        global_iterations: usize,
    },
}

/// What the lineup looks like at one iteration boundary, as seen by the
/// control callback of [`run_tuners_checkpointed_with`].
#[derive(Debug, Clone, Copy)]
pub struct LineupStatus {
    /// Completed lineup iterations across all tuners so far.
    pub global_iteration: usize,
    /// Index into [`LINEUP`] of the active tuner.
    pub tuner_index: usize,
    /// Completed iterations of the active tuner's own session.
    pub tuner_iteration: usize,
    /// Whether the measurement-channel breaker is currently open.
    pub breaker_open: bool,
}

/// A control decision returned from the boundary callback of
/// [`run_tuners_checkpointed_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineupCommand {
    /// Keep running; flushes follow the periodic schedule.
    Continue,
    /// Flush the just-encoded snapshot now (checkpoint-on-demand), then
    /// keep running. Like an off-schedule stop flush, this writes
    /// *without* a `checkpoint` trace event, so on-demand flushes never
    /// perturb trace bytes.
    Checkpoint,
    /// Flush the just-encoded snapshot, then stop cleanly — the daemon's
    /// checkpoint-then-graceful-shutdown path.
    Stop,
    /// Stop immediately *without* writing anything, leaving the last
    /// flushed snapshot as the resume point. Used by a supervisor
    /// abandoning a superseded worker: a stale worker must never
    /// overwrite state a newer attempt is building on.
    Abort,
}

/// Runs the standard tuner lineup through one scenario with periodic
/// snapshots, optionally resuming a previous run's snapshot.
///
/// Byte-identical to [`run_tuners`](crate::scenario::run_tuners) in
/// series and trace output — checkpointing only *adds* the
/// deterministic `checkpoint` trace events.
///
/// # Errors
///
/// Returns [`CkptError::Mismatch`] when `resume` was written for a
/// different system spec or scenario, any decoding error from a corrupt
/// snapshot, and I/O errors from writing the snapshot file.
pub fn run_tuners_checkpointed(
    scn: &Scenario,
    library: &PolicyLibrary,
    options: &CheckpointOptions,
    resume: Option<&Snapshot>,
) -> Result<LineupOutcome, CkptError> {
    run_tuners_checkpointed_with(scn, library, options, resume, |_| LineupCommand::Continue)
}

/// [`run_tuners_checkpointed`] with a control callback consulted at
/// every iteration boundary. The callback sees the lineup position
/// ([`LineupStatus`]) and steers the run with a [`LineupCommand`]:
/// pause-free continuation, checkpoint-on-demand, a clean
/// checkpoint-then-stop, or an abandon-without-write abort. This is the
/// daemon's (`racd`) drive shaft — signals and admin commands turn into
/// commands here, always at an iteration boundary, never mid-interval.
///
/// Determinism: `Continue` is byte-identical to the plain entry point;
/// `Checkpoint` and `Stop` write without trace events (the periodic
/// schedule alone emits them), so a run steered by any command sequence
/// still converges to the uninterrupted run's CSV/trace bytes once
/// resumed to completion.
///
/// # Errors
///
/// As [`run_tuners_checkpointed`].
pub fn run_tuners_checkpointed_with(
    scn: &Scenario,
    library: &PolicyLibrary,
    options: &CheckpointOptions,
    resume: Option<&Snapshot>,
    mut control: impl FnMut(&LineupStatus) -> LineupCommand,
) -> Result<LineupOutcome, CkptError> {
    let exp = Experiment::for_scenario(paper_system_spec(), scn);
    let spec_fp = exp.spec().fingerprint();
    let scn_fp = scn.fingerprint();

    let mut done: Vec<(&'static str, Vec<IterationRecord>)> = Vec::new();
    let mut tuner_index = 0usize;
    let mut active: Option<(Box<dyn PersistTuner>, ScenarioProgress)> = None;
    if let Some(snap) = resume {
        let t0 = Instant::now();
        let resumed = decode_lineup(snap, spec_fp, scn_fp)?;
        tuner_index = resumed.tuner_index;
        done = resumed.done;
        active = Some((resumed.tuner, resumed.progress));
        let m = obs::Registry::global();
        m.counter("rac_ckpt_restores_total").inc();
        m.histogram("rac_ckpt_restore_us")
            .record_us(t0.elapsed().as_micros() as u64);
    }

    let mut sink = CkptSink {
        options,
        library,
        spec_fp,
        scn_fp,
        pending: None,
        control_stop: false,
    };
    while tuner_index < LINEUP.len() {
        let (mut tuner, progress) = match active.take() {
            Some((t, p)) => (t, Some(p)),
            None => (fresh_tuner(tuner_index, library), None),
        };
        let base: usize = done.iter().map(|(_, s)| s.len()).sum();
        let outcome = exp.run_scenario_resumable(scn, tuner.as_mut(), progress, |p, t| {
            let status = LineupStatus {
                global_iteration: base + p.iterations_done,
                tuner_index,
                tuner_iteration: p.iterations_done,
                breaker_open: p.channel.is_open(),
            };
            let cmd = control(&status);
            sink.boundary(tuner_index, &done, status.global_iteration, p, t, cmd)
        })?;
        match outcome {
            ScenarioRunOutcome::Complete(series) => {
                done.push((LINEUP[tuner_index], series));
                tuner_index += 1;
                // A stop landing exactly on a tuner's final iteration is
                // swallowed by the scenario runner (the run is complete);
                // honor it at the lineup level instead. The snapshot
                // already on disk resumes by replaying the finished
                // tuner, then starts the next one fresh. Control-driven
                // stops (and aborts) are honored the same way.
                let global: usize = done.iter().map(|(_, s)| s.len()).sum();
                if (sink.stop_requested(global) || sink.control_stop) && tuner_index < LINEUP.len()
                {
                    return Ok(LineupOutcome::Interrupted {
                        global_iterations: global,
                    });
                }
            }
            ScenarioRunOutcome::Interrupted(p) => {
                return Ok(LineupOutcome::Interrupted {
                    global_iterations: base + p.iterations_done,
                });
            }
        }
    }
    // Leave the finished run's final state on disk (warm-start food for
    // the next run) even when the last boundary missed the schedule.
    sink.flush_pending()?;
    Ok(LineupOutcome::Complete(done))
}

fn fresh_tuner(index: usize, library: &PolicyLibrary) -> Box<dyn PersistTuner> {
    match index {
        0 => Box::new(RacAgent::with_policy_library(
            standard_settings(),
            library.clone(),
        )),
        1 => Box::new(TrialAndError::new(ONLINE_LEVELS)),
        _ => Box::new(StaticDefault::new()),
    }
}

/// The periodic-snapshot sink driven by the scenario runner's boundary
/// callback. Encodes the full lineup snapshot at *every* boundary and
/// flushes it on the schedule; whatever is pending when the sink drops
/// (error paths, panics) is flushed best-effort so no completed work is
/// lost.
struct CkptSink<'a> {
    options: &'a CheckpointOptions,
    library: &'a PolicyLibrary,
    spec_fp: u64,
    scn_fp: u64,
    pending: Option<Vec<u8>>,
    /// Whether the control callback asked to stop (or abort) — consulted
    /// at the lineup level because the scenario runner swallows a stop
    /// landing on a tuner's final iteration.
    control_stop: bool,
}

impl CkptSink<'_> {
    fn stop_requested(&self, global: usize) -> bool {
        self.options.stop_after.is_some_and(|n| global >= n)
    }

    fn boundary(
        &mut self,
        tuner_index: usize,
        done: &[(&'static str, Vec<IterationRecord>)],
        global: usize,
        progress: &ScenarioProgress,
        tuner: &dyn PersistTuner,
        cmd: LineupCommand,
    ) -> Result<BoundaryAction, CkptError> {
        if cmd == LineupCommand::Abort {
            // Abandon without touching disk: clear anything pending so
            // not even the drop rescue writes, and stop here. The last
            // *flushed* snapshot stays the authoritative resume point.
            self.pending = None;
            self.control_stop = true;
            return Ok(BoundaryAction::Stop);
        }
        // Wall-clock attribution of encode+write time (metrics/profile
        // only; the trace event below is simulated-time as ever).
        let _span = obs::Span::start("checkpoint");
        let flush = self.options.every > 0 && global.is_multiple_of(self.options.every);
        if flush {
            // Emitted before encoding so the snapshot's trace prefix
            // includes this event: a resumed run replays it from the
            // prefix and never re-emits it.
            trace::emit(|| {
                obs::Event::new("checkpoint")
                    .field("iter", global as u64)
                    .field("tuner_iter", progress.iterations_done as u64)
                    .field("tuner", tuner_index as u64)
            });
        }
        let bytes = encode_lineup(
            self.spec_fp,
            self.scn_fp,
            tuner_index,
            done,
            progress,
            tuner,
            self.library,
        );
        if flush {
            self.write(&bytes)?;
            self.pending = None;
        } else {
            self.pending = Some(bytes);
        }
        if cmd == LineupCommand::Checkpoint {
            // Checkpoint-on-demand: persist now, off the schedule and
            // therefore without a trace event, then keep running.
            self.flush_pending()?;
        }
        if cmd == LineupCommand::Stop {
            // Checkpoint-then-stop (graceful shutdown): same flush
            // semantics as an off-schedule `stop_after` stop.
            self.flush_pending()?;
            self.control_stop = true;
            return Ok(BoundaryAction::Stop);
        }
        if self.stop_requested(global) {
            // Make the stop resumable even off-schedule: persist the
            // just-encoded state, without a trace event (the resumed
            // run's schedule is what keeps traces identical).
            self.flush_pending()?;
            return Ok(BoundaryAction::Stop);
        }
        Ok(BoundaryAction::Continue)
    }

    fn write(&self, bytes: &[u8]) -> Result<(), CkptError> {
        let t0 = Instant::now();
        ckpt::write_bytes_atomic(bytes, &self.options.path)?;
        let m = obs::Registry::global();
        m.counter("rac_ckpt_writes_total").inc();
        m.counter("rac_ckpt_bytes_total").add(bytes.len() as u64);
        m.histogram("rac_ckpt_write_us")
            .record_us(t0.elapsed().as_micros() as u64);
        Ok(())
    }

    fn flush_pending(&mut self) -> Result<(), CkptError> {
        match self.pending.take() {
            Some(bytes) => self.write(&bytes),
            None => Ok(()),
        }
    }
}

impl Drop for CkptSink<'_> {
    fn drop(&mut self) {
        // Snapshot-on-drop: error paths and panics still leave the last
        // boundary's state behind. Errors are swallowed — this is a
        // best-effort rescue, never the primary persistence path.
        let _ = self.flush_pending();
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_lineup(
    spec_fp: u64,
    scn_fp: u64,
    tuner_index: usize,
    done: &[(&'static str, Vec<IterationRecord>)],
    progress: &ScenarioProgress,
    tuner: &dyn PersistTuner,
    library: &PolicyLibrary,
) -> Vec<u8> {
    let mut snap = SnapshotWriter::new();
    snap.section(SECTION_META, |w| {
        w.put_u64(spec_fp);
        w.put_u64(scn_fp);
        w.put_usize(tuner_index);
    });
    snap.section(SECTION_DONE, |w| {
        w.put_usize(done.len());
        for (_, series) in done {
            encode_series(w, series);
        }
    });
    snap.section(SECTION_PROGRESS, |w| progress.encode(w));
    tuner.save_state(&mut snap);
    if tuner_index != 0 {
        // The RAC agent (tuner 0) saves its own library section; once a
        // later tuner is active, persist the lineup's library here so
        // any snapshot of the run — including the final one — can seed
        // a warm start.
        rac::library_to_snapshot(&mut snap, library);
    }
    let prefix = trace::snapshot_serialized();
    snap.section(SECTION_TRACE, |w| {
        w.put_bool(prefix.is_some());
        w.put_str(prefix.as_deref().unwrap_or(""));
    });
    snap.to_bytes()
}

struct ResumedLineup {
    tuner_index: usize,
    done: Vec<(&'static str, Vec<IterationRecord>)>,
    tuner: Box<dyn PersistTuner>,
    progress: ScenarioProgress,
}

fn decode_lineup(snap: &Snapshot, spec_fp: u64, scn_fp: u64) -> Result<ResumedLineup, CkptError> {
    let mut r = snap.section(SECTION_META)?;
    let snap_spec = r.get_u64()?;
    let snap_scn = r.get_u64()?;
    let tuner_index = r.get_usize()?;
    r.finish()?;
    if snap_spec != spec_fp {
        return Err(CkptError::Mismatch {
            detail: format!(
                "checkpoint was written for a different system spec \
                 (fingerprint {snap_spec:#018x}, this run has {spec_fp:#018x})"
            ),
        });
    }
    if snap_scn != scn_fp {
        return Err(CkptError::Mismatch {
            detail: format!(
                "checkpoint was written for a different scenario or scaling \
                 (fingerprint {snap_scn:#018x}, this run has {scn_fp:#018x})"
            ),
        });
    }
    if tuner_index >= LINEUP.len() {
        return Err(CkptError::Corrupt {
            detail: format!("lineup cursor {tuner_index} out of range"),
        });
    }

    let mut r = snap.section(SECTION_DONE)?;
    let count = r.get_usize()?;
    if count != tuner_index {
        return Err(CkptError::Corrupt {
            detail: format!("lineup cursor at tuner {tuner_index} but {count} finished series"),
        });
    }
    let mut done = Vec::with_capacity(count);
    for (i, name) in LINEUP.iter().enumerate().take(count) {
        let series = decode_series(&mut r).map_err(|e| CkptError::Corrupt {
            detail: format!("finished series {i}: {e}"),
        })?;
        done.push((*name, series));
    }
    r.finish()?;

    let mut r = snap.section(SECTION_PROGRESS)?;
    let progress = ScenarioProgress::decode(&mut r)?;
    r.finish()?;

    let tuner: Box<dyn PersistTuner> = match tuner_index {
        0 => Box::new(RacAgent::restore(snap)?),
        1 => Box::new(TrialAndError::restore(snap)?),
        _ => Box::new(StaticDefault::new()),
    };

    let mut r = snap.section(SECTION_TRACE)?;
    let has_trace = r.get_bool()?;
    let prefix = r.get_str()?;
    r.finish()?;
    if has_trace && trace::scoped() {
        trace::restore_serialized(&prefix).map_err(|e| CkptError::Corrupt {
            detail: format!("embedded trace prefix: {e}"),
        })?;
        // The active tuner's session header is part of the restored
        // prefix; its remaining live events must land in the same run.
        trace::set_run(tuner_index as u64 + 1);
    }

    Ok(ResumedLineup {
        tuner_index,
        done,
        tuner,
        progress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario::parse(
            "name tiny\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 5\n\
             at 60s intensity 1.4\nfault at 200s drop\n",
        )
        .unwrap()
    }

    fn tiny_library() -> PolicyLibrary {
        // A fast single-context library at the standard lattice
        // resolution (the checkpoint validates Q-table dimensions, so
        // the lattice must match ONLINE_LEVELS).
        rac::build_policy_library(
            &paper_system_spec().with_clients(60),
            &[rac::paper_contexts()[0]],
            &crate::standard_lattice(),
            rac::SlaReward::new(crate::SLA_MS),
            rac::TrainingOptions {
                warmup: simkernel::SimDuration::from_secs(60),
                measure: simkernel::SimDuration::from_secs(60),
                ..rac::TrainingOptions::default()
            },
        )
    }

    #[test]
    fn checkpointed_lineup_matches_plain_lineup_and_resumes_identically() {
        let scn = tiny_scenario();
        let library = tiny_library();
        let dir = std::env::temp_dir().join(format!("rac-ckpt-test-{}", std::process::id()));
        let plain = crate::scenario::run_tuners(&scn, &library);

        let opts = CheckpointOptions {
            path: dir.join("full.ckpt"),
            every: 4,
            stop_after: None,
        };
        let full = match run_tuners_checkpointed(&scn, &library, &opts, None).unwrap() {
            LineupOutcome::Complete(series) => series,
            LineupOutcome::Interrupted { .. } => panic!("no stop requested"),
        };
        assert_eq!(full, plain, "checkpointing must not perturb the series");

        // Interrupt at a mid-lineup boundary (tuner 1 mid-run) and at a
        // non-schedule boundary (pending flush), then resume each.
        for stop_after in [8usize, 7] {
            let path = dir.join(format!("stop-{stop_after}.ckpt"));
            let opts = CheckpointOptions {
                path: path.clone(),
                every: 4,
                stop_after: Some(stop_after),
            };
            let outcome = run_tuners_checkpointed(&scn, &library, &opts, None).unwrap();
            let LineupOutcome::Interrupted { global_iterations } = outcome else {
                panic!("run should stop after {stop_after} lineup iterations");
            };
            assert_eq!(global_iterations, stop_after);

            let snap = Snapshot::load(&path).unwrap();
            let opts = CheckpointOptions {
                path,
                every: 4,
                stop_after: None,
            };
            let resumed = match run_tuners_checkpointed(&scn, &library, &opts, Some(&snap)).unwrap()
            {
                LineupOutcome::Complete(series) => series,
                LineupOutcome::Interrupted { .. } => panic!("resume should finish"),
            };
            assert_eq!(resumed, full, "resume after {stop_after} diverged");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn control_commands_checkpoint_stop_abort() {
        let scn = tiny_scenario();
        let library = tiny_library();
        let dir = std::env::temp_dir().join(format!("rac-ckpt-ctl-{}", std::process::id()));
        let plain = crate::scenario::run_tuners(&scn, &library);

        // Checkpoint-on-demand at boundary 3, graceful stop at 7. The
        // schedule (every=1000) never fires, so any file on disk came
        // from a control command.
        let path = dir.join("ctl.ckpt");
        let opts = CheckpointOptions {
            path: path.clone(),
            every: 1000,
            stop_after: None,
        };
        let mut on_demand_seen = false;
        let outcome = run_tuners_checkpointed_with(&scn, &library, &opts, None, |s| {
            if s.global_iteration == 4 {
                on_demand_seen = path.exists();
            }
            match s.global_iteration {
                3 => LineupCommand::Checkpoint,
                7 => LineupCommand::Stop,
                _ => LineupCommand::Continue,
            }
        })
        .unwrap();
        let LineupOutcome::Interrupted { global_iterations } = outcome else {
            panic!("control stop must interrupt the lineup");
        };
        assert_eq!(global_iterations, 7);
        assert!(on_demand_seen, "on-demand checkpoint must hit disk");

        // Resuming the stopped run converges to the plain series.
        let snap = Snapshot::load(&path).unwrap();
        let resumed = match run_tuners_checkpointed(&scn, &library, &opts, Some(&snap)).unwrap() {
            LineupOutcome::Complete(series) => series,
            LineupOutcome::Interrupted { .. } => panic!("resume should finish"),
        };
        assert_eq!(resumed, plain, "control-steered run diverged");

        // Abort stops without touching disk — not even the drop rescue.
        let path2 = dir.join("abort.ckpt");
        let opts = CheckpointOptions {
            path: path2.clone(),
            every: 1000,
            stop_after: None,
        };
        let outcome = run_tuners_checkpointed_with(&scn, &library, &opts, None, |s| {
            if s.global_iteration == 2 {
                LineupCommand::Abort
            } else {
                LineupCommand::Continue
            }
        })
        .unwrap();
        assert!(matches!(
            outcome,
            LineupOutcome::Interrupted {
                global_iterations: 2
            }
        ));
        assert!(!path2.exists(), "abort must never write");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_wrong_scenario() {
        let scn = tiny_scenario();
        let library = tiny_library();
        let dir = std::env::temp_dir().join(format!("rac-ckpt-mism-{}", std::process::id()));
        let path = dir.join("run.ckpt");
        let opts = CheckpointOptions {
            path: path.clone(),
            every: 2,
            stop_after: Some(2),
        };
        run_tuners_checkpointed(&scn, &library, &opts, None).unwrap();
        let snap = Snapshot::load(&path).unwrap();

        let other = Scenario::parse(
            "name other\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 5\n",
        )
        .unwrap();
        let err = run_tuners_checkpointed(&other, &library, &opts, Some(&snap)).unwrap_err();
        assert!(matches!(err, CkptError::Mismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
