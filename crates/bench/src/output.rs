//! Plain-text tables, ASCII series plots, and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use rac_bench::output::TextTable;
///
/// let mut t = TextTable::new(&["param", "value"]);
/// t.row(&["MaxClients".into(), "150".into()]);
/// let s = t.to_string();
/// assert!(s.contains("MaxClients"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a CSV string (what [`write_csv`](Self::write_csv)
    /// puts on disk) — lets tests digest the exact bytes without I/O.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render_csv())
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} ")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Renders one or more aligned series as a rough ASCII chart, so figure
/// shapes are visible directly in the terminal.
///
/// # Example
///
/// ```
/// use rac_bench::output::ascii_chart;
///
/// let chart = ascii_chart(
///     &[("flat", vec![1.0; 20]), ("ramp", (0..20).map(f64::from).collect())],
///     12,
/// );
/// assert!(chart.contains("ramp"));
/// ```
pub fn ascii_chart(series: &[(&str, Vec<f64>)], height: usize) -> String {
    let mut out = String::new();
    let finite: Vec<f64> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|x| x.is_finite())
        .collect();
    if finite.is_empty() {
        return "(no data)\n".to_string();
    }
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let span = (max - min).max(1e-9);
    let width = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let marks = ['*', 'o', '+', 'x', '#', '@'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (x, v) in values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let t = (v - min) / span;
            let y = ((1.0 - t) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x] = mark;
        }
    }
    let _ = writeln!(out, "{max:>10.1} ┤");
    for row in grid {
        let _ = writeln!(out, "{:>10} │{}", "", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{min:>10.1} ┴{}", "─".repeat(width));
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>12} {} = {}", "", marks[si % marks.len()], name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1".into(), "hello, world".into()]);
        t.row(&["2".into(), "x\"y".into()]);
        assert_eq!(t.len(), 2);
        let text = t.to_string();
        assert!(text.contains("hello, world"));

        let dir = std::env::temp_dir().join(format!("rac-out-test-{}", std::process::id()));
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let csv = fs::read_to_string(&path).unwrap();
        assert_eq!(csv, t.render_csv(), "disk CSV must match the rendering");
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"x\"\"y\""));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        TextTable::new(&["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn chart_handles_empty_and_infinite() {
        assert_eq!(ascii_chart(&[], 5), "(no data)\n");
        let c = ascii_chart(&[("s", vec![1.0, f64::INFINITY, 3.0])], 5);
        assert!(c.contains('*'));
    }

    #[test]
    fn chart_plots_extremes() {
        let c = ascii_chart(&[("s", vec![0.0, 10.0])], 5);
        assert!(c.contains("10.0"));
        assert!(c.contains("0.0"));
    }
}
