//! The perf-trajectory suite behind `figures bench`.
//!
//! Measures the numbers every future PR is judged against —
//! events/sec through [`simkernel::EventQueue`], iterations/sec through
//! [`rac::Experiment::run_scenario`] on the bundled scenarios, Q-sweep
//! updates/sec through [`rl::batch_value_sweep_report`], and fleet
//! throughput (tenants/sec through [`fleet::FleetRun`] at a fixed
//! roster size), tournament throughput (generated scenarios/sec
//! through the three-arm line-up of [`crate::tournament`]), and daemon
//! crash-recovery throughput (recoveries/sec through the
//! snapshot-restore-replay path `racd` takes after a kill) — plus
//! in-file baselines (the retained [`simkernel::HeapQueue`] and a
//! replica of the pre-optimization sweep loop), so each
//! `BENCH_<n>.json` carries its own before/after comparison.
//!
//! Problem sizes are identical in quick and full mode; quick only
//! reduces the repeat count. Throughputs are therefore comparable
//! across modes, which is what lets CI run the quick suite and check it
//! against the committed full-mode `BENCH_9.json` with a generous
//! regression floor.

use std::time::Instant;

use rac::{
    train_initial_policy, Action, ConfigLattice, ConfigMdp, Experiment, OfflineSettings,
    PolicyLibrary, RacAgent, Runner, SimMeasurer, SlaReward,
};
use rl::{batch_value_sweep_report, Backup, Environment, QLearning, QTable};
use scenario::Scenario;
use simkernel::rng::Exponential;
use simkernel::{EventQueue, HeapQueue, Pcg64, SimDuration, SimTime};

use crate::{paper_system_spec, standard_settings, ONLINE_LEVELS, SLA_MS};

/// The perf-trajectory file this PR emits; the `<n>` tracks the PR
/// sequence (see DESIGN.md).
pub const BENCH_VERSION: u32 = 9;

/// Default output path, relative to the repository root.
pub const DEFAULT_OUTPUT: &str = "BENCH_9.json";

/// CI regression floor: a quick-mode median below `floor × committed
/// median` fails the build.
pub const REGRESSION_FLOOR: f64 = 0.5;

/// Pending events held in the event-queue benchmark (identical in quick
/// and full mode, so throughputs are comparable).
const QUEUE_HOLD_SIZE: usize = 1 << 22;
/// Hold-model operations (one pop + one schedule each) per sample.
const QUEUE_OPS: usize = 400_000;
/// Full-table passes per Q-sweep sample at `ONLINE_LEVELS`.
const SWEEP_PASSES: usize = 4;
/// Roster size of the fleet-throughput benchmark (identical in quick
/// and full mode).
const FLEET_TENANTS: usize = 8;
/// Timeline compression of the fleet benchmark's scenarios.
const FLEET_SCALE_DEN: u64 = 60;
/// Generated scenarios per tournament-throughput sample (one per
/// difficulty, quick-scaled — identical in quick and full mode).
const TOURNAMENT_SCENARIOS: usize = 3;
/// Lineup iterations completed before the daemon-recovery benchmark's
/// snapshot is taken — mid second tuner, so tuner restore, progress
/// decode, and prefix replay are all on the timed recovery path.
const RECOVERY_STOP_AFTER: usize = 8;
/// Recovery cycles per daemon-recovery sample (identical in quick and
/// full mode).
const RECOVERY_CYCLES: usize = 4;

/// One benchmark's samples plus its summary statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable identifier, e.g. `event_queue.events_per_sec`.
    pub name: String,
    /// Unit of every sample (throughputs: higher is better).
    pub unit: &'static str,
    /// Raw per-repeat measurements.
    pub samples: Vec<f64>,
}

impl BenchResult {
    fn sorted(&self) -> Vec<f64> {
        let mut s = self.samples.clone();
        s.sort_by(f64::total_cmp);
        s
    }

    /// Median of the samples (mean of the middle two for even counts).
    pub fn median(&self) -> f64 {
        let s = self.sorted();
        let mid = s.len() / 2;
        if s.len() % 2 == 1 {
            s[mid]
        } else {
            (s[mid - 1] + s[mid]) / 2.0
        }
    }

    /// `(p25, p75)` by nearest-rank on the sorted samples — the IQR
    /// endpoints reported in `BENCH_<n>.json`.
    pub fn iqr(&self) -> (f64, f64) {
        let s = self.sorted();
        let rank = |q: f64| s[(((s.len() - 1) as f64) * q).round() as usize];
        (rank(0.25), rank(0.75))
    }
}

/// Suite configuration.
#[derive(Debug, Clone, Copy)]
pub struct SuiteOptions {
    /// Reduce repeat counts (problem sizes stay identical).
    pub quick: bool,
}

impl SuiteOptions {
    fn queue_repeats(&self) -> usize {
        if self.quick {
            3
        } else {
            9
        }
    }
    fn sweep_repeats(&self) -> usize {
        if self.quick {
            3
        } else {
            7
        }
    }
    fn scenario_repeats(&self) -> usize {
        if self.quick {
            1
        } else {
            3
        }
    }
    fn fleet_repeats(&self) -> usize {
        if self.quick {
            1
        } else {
            3
        }
    }
    fn tournament_repeats(&self) -> usize {
        if self.quick {
            1
        } else {
            3
        }
    }
    fn daemon_repeats(&self) -> usize {
        if self.quick {
            1
        } else {
            3
        }
    }
}

/// Everything `figures bench` writes into `BENCH_<n>.json`.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// All benchmark results, in run order.
    pub results: Vec<BenchResult>,
    /// Whether the suite ran in quick mode.
    pub quick: bool,
}

// ---------------------------------------------------------------------------
// Event-queue benchmark (hold model)

/// The future-event-list API surface the hold model exercises, so the
/// calendar queue and the heap baseline run the identical workload.
trait Fel {
    fn schedule(&mut self, at: SimTime, ev: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl Fel for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, ev: u64) {
        EventQueue::schedule(self, at, ev);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

impl Fel for HeapQueue<u64> {
    fn schedule(&mut self, at: SimTime, ev: u64) {
        HeapQueue::schedule(self, at, ev);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapQueue::pop(self)
    }
}

/// Classic hold model: prefill `QUEUE_HOLD_SIZE` events with
/// exponentially distributed gaps (mean 500 µs — the simulator's
/// sub-millisecond service-time regime), then repeatedly pop the
/// earliest event and schedule a replacement one gap into the future.
/// Steady-state size stays constant, so the measurement isolates queue
/// operations at a fleet-representative backlog. Returns events/sec
/// (one pop + one schedule counted as one event).
fn hold_events_per_sec<Q: Fel>(q: &mut Q) -> f64 {
    let mut rng = Pcg64::seed_from_u64(0x5EED_BE7C);
    let gap = Exponential::with_mean(500.0); // mean gap in µs (sample_micros unit)
    let mut t = SimTime::ZERO;
    for i in 0..QUEUE_HOLD_SIZE as u64 {
        t += SimDuration::from_micros(gap.sample_micros(&mut rng));
        q.schedule(t, i);
    }
    let started = Instant::now();
    let mut checksum = 0u64;
    for i in 0..QUEUE_OPS as u64 {
        let (at, ev) = q.pop().expect("hold model never empties");
        checksum = checksum.wrapping_add(ev);
        let next = at + SimDuration::from_micros(gap.sample_micros(&mut rng));
        q.schedule(next, i);
    }
    let elapsed = started.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    QUEUE_OPS as f64 / elapsed
}

// ---------------------------------------------------------------------------
// Q-sweep benchmark

/// The paper-scale planning problem: the full `ONLINE_LEVELS` lattice
/// with a non-trivial performance map.
fn sweep_mdp() -> ConfigMdp {
    let lattice = ConfigLattice::new(ONLINE_LEVELS);
    let mut mdp = ConfigMdp::new(&lattice, SlaReward::new(SLA_MS));
    for s in 0..lattice.num_states() {
        mdp.set_perf(s, 100.0 + (s % 1_000) as f64);
    }
    mdp
}

fn qsweep_updates_per_sec(mdp: &ConfigMdp) -> f64 {
    let mut q = QTable::new(mdp.num_states(), Action::COUNT);
    let learner = QLearning::new(0.1, 0.9);
    let started = Instant::now();
    let report = batch_value_sweep_report(mdp, &mut q, &learner, Backup::Greedy, 0.0, SWEEP_PASSES);
    let elapsed = started.elapsed().as_secs_f64();
    std::hint::black_box(q.raw());
    report.updates as f64 / elapsed
}

/// Replica of the pre-optimization sweep loop (per-update model queries,
/// `max_q` rescans): the in-file baseline the optimized sweep's
/// trajectory is anchored to.
fn qsweep_baseline_updates_per_sec(mdp: &ConfigMdp) -> f64 {
    let mut q = QTable::new(mdp.num_states(), Action::COUNT);
    let learner = QLearning::new(0.1, 0.9);
    let started = Instant::now();
    let mut updates = 0u64;
    for _ in 0..SWEEP_PASSES {
        for s in 0..mdp.num_states() {
            for a in 0..mdp.num_actions() {
                let s2 = mdp.transition(s, a);
                let r = mdp.reward(s, a, s2);
                let next_value = q.max_q(s2);
                learner.update_toward(&mut q, s, a, r, next_value);
                updates += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    std::hint::black_box(q.raw());
    updates as f64 / elapsed
}

// ---------------------------------------------------------------------------
// Scenario benchmark

/// Trains the small deterministic policy library the scenario benchmark
/// seeds the RAC agent from (shopping @ Level-1, where every bundled
/// scenario starts) — offline training happens once, outside any timed
/// region.
fn bench_library() -> PolicyLibrary {
    let ctx = rac::paper_contexts()[0];
    let lattice = ConfigLattice::new(ONLINE_LEVELS);
    let spec = paper_system_spec().with_mix(ctx.mix).with_level(ctx.level);
    let measurer = SimMeasurer::on_runner(
        Runner::global(),
        spec,
        SimDuration::from_secs(60),
        SimDuration::from_secs(60),
    );
    let settings = OfflineSettings {
        group_levels: 2,
        ..OfflineSettings::default()
    };
    let policy = train_initial_policy(&lattice, SlaReward::new(SLA_MS), settings, measurer)
        .expect("offline landscape fits");
    let mut lib = PolicyLibrary::new();
    lib.insert(ctx, policy);
    lib
}

/// Times one full `Experiment::run_scenario` of the RAC agent through a
/// quick-scaled scenario (the same 1/3 reduction `figures scenario
/// --quick` applies — identical in quick and full bench mode), returning
/// tuning iterations/sec.
fn scenario_iterations_per_sec(scn: &Scenario, library: &PolicyLibrary) -> f64 {
    let exp = Experiment::for_scenario(paper_system_spec(), scn);
    let mut agent = RacAgent::with_policy_library(standard_settings(), library.clone());
    let started = Instant::now();
    let series = exp.run_scenario(scn, &mut agent);
    let elapsed = started.elapsed().as_secs_f64();
    series.len() as f64 / elapsed
}

// ---------------------------------------------------------------------------
// Fleet benchmark

/// Times a full fixed-size fleet — roster generation, every tenant's
/// experiment, and nearest-neighbor policy transfer — over the global
/// runner, returning tenants/sec. Matched controls are disabled: they
/// double warm-tenant cost without exercising any additional machinery,
/// and this benchmark tracks fleet *throughput*, not the transfer
/// headline.
fn fleet_tenants_per_sec() -> f64 {
    let config = fleet::FleetConfig {
        tenants: FLEET_TENANTS,
        seed: 42,
        cold: 2,
        chunk: 3,
        scale_den: FLEET_SCALE_DEN,
        online_levels: ONLINE_LEVELS,
        control: false,
        // Ungated so the warm-start path runs for every post-wave
        // tenant regardless of roster geometry.
        radius: 2.0,
    };
    let mut run = fleet::FleetRun::new(config).expect("bench fleet config is valid");
    let runner = Runner::global();
    let started = Instant::now();
    while !run.is_complete() {
        run.step(runner).expect("bench fleet step succeeds");
    }
    FLEET_TENANTS as f64 / started.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// Daemon-recovery benchmark

/// The small fixed scenario the recovery benchmark cycles through —
/// the same shape the daemon lifecycle tests drain, small enough that
/// one recovery is milliseconds, not seconds.
fn recovery_scenario() -> Scenario {
    Scenario::parse(
        "name recovery\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 5\n\
         at 60s intensity 1.4\nfault at 200s drop\n",
    )
    .expect("recovery benchmark scenario parses")
}

/// Runs the lineup to `RECOVERY_STOP_AFTER` iterations and returns the
/// committed snapshot bytes — the untimed setup for
/// [`daemon_recoveries_per_sec`], standing in for the checkpoint a
/// killed daemon leaves behind.
fn prepare_recovery_snapshot(scn: &Scenario, library: &PolicyLibrary) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("rac-bench-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("recovery scratch dir");
    let path = dir.join("seed.ckpt");
    let opts = crate::checkpoint::CheckpointOptions {
        path: path.clone(),
        every: 1,
        stop_after: Some(RECOVERY_STOP_AFTER),
    };
    let outcome = crate::checkpoint::run_tuners_checkpointed(scn, library, &opts, None)
        .expect("recovery snapshot run succeeds");
    assert!(
        matches!(
            outcome,
            crate::checkpoint::LineupOutcome::Interrupted { .. }
        ),
        "recovery snapshot run must stop mid-lineup"
    );
    let bytes = std::fs::read(&path).expect("recovery snapshot readable");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// Times `racd`'s crash-recovery path: parse the committed snapshot,
/// restore the active tuner and lineup cursor, replay the completed
/// prefix deterministically, and run to the first live boundary (the
/// point at which a restarted attempt is provably making progress
/// again). The timed loop aborts at that boundary — aborts never write,
/// so no disk I/O pollutes the measurement. Returns recoveries/sec.
fn daemon_recoveries_per_sec(scn: &Scenario, library: &PolicyLibrary, snapshot: &[u8]) -> f64 {
    let opts = crate::checkpoint::CheckpointOptions {
        // Never written: the schedule is disabled and the control
        // callback aborts before any flush.
        path: std::env::temp_dir().join("rac-bench-recovery-unused.ckpt"),
        every: 0,
        stop_after: None,
    };
    let started = Instant::now();
    for _ in 0..RECOVERY_CYCLES {
        let snap = ckpt::Snapshot::from_bytes(snapshot).expect("recovery snapshot parses");
        let outcome = crate::checkpoint::run_tuners_checkpointed_with(
            scn,
            library,
            &opts,
            Some(&snap),
            |_| crate::checkpoint::LineupCommand::Abort,
        )
        .expect("recovery replay succeeds");
        std::hint::black_box(&outcome);
    }
    RECOVERY_CYCLES as f64 / started.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// Tournament benchmark

/// Times a small tournament — scenario generation plus the full
/// three-arm line-up per scenario, sharded over the global runner —
/// returning scenarios/sec. Quick-scaled timelines keep one sample in
/// the seconds range; the problem size never varies with suite mode.
fn tournament_scenarios_per_sec() -> f64 {
    let opts = crate::tournament::TournamentOptions {
        scenarios: TOURNAMENT_SCENARIOS,
        seed: 42,
        quick: true,
        profile: None,
    };
    let started = Instant::now();
    let matchups = crate::tournament::run(&opts);
    let elapsed = started.elapsed().as_secs_f64();
    std::hint::black_box(matchups);
    TOURNAMENT_SCENARIOS as f64 / elapsed
}

// ---------------------------------------------------------------------------
// Suite driver

fn run_samples(repeats: usize, mut f: impl FnMut() -> f64) -> Vec<f64> {
    (0..repeats).map(|_| f()).collect()
}

/// Runs the whole suite, logging one line per benchmark to stderr.
pub fn run_suite(opts: &SuiteOptions) -> SuiteReport {
    let mut results = Vec::new();
    let mut push = |name: &str, unit: &'static str, samples: Vec<f64>| {
        let r = BenchResult {
            name: name.to_string(),
            unit,
            samples,
        };
        let (lo, hi) = r.iqr();
        eprintln!(
            "  [bench] {:<40} median {:>12.0} {} (IQR {:.0}..{:.0}, {} samples)",
            r.name,
            r.median(),
            r.unit,
            lo,
            hi,
            r.samples.len()
        );
        results.push(r);
    };

    push(
        "event_queue.events_per_sec",
        "events/sec",
        run_samples(opts.queue_repeats(), || {
            hold_events_per_sec(&mut EventQueue::new())
        }),
    );
    push(
        "event_queue_baseline.events_per_sec",
        "events/sec",
        run_samples(opts.queue_repeats(), || {
            hold_events_per_sec(&mut HeapQueue::new())
        }),
    );

    let mdp = sweep_mdp();
    push(
        "qsweep.updates_per_sec",
        "updates/sec",
        run_samples(opts.sweep_repeats(), || qsweep_updates_per_sec(&mdp)),
    );
    push(
        "qsweep_baseline.updates_per_sec",
        "updates/sec",
        run_samples(opts.sweep_repeats(), || {
            qsweep_baseline_updates_per_sec(&mdp)
        }),
    );

    eprintln!("  [bench] training policy library for scenario runs (untimed)");
    let library = bench_library();
    for name in crate::scenario::bundled_names() {
        let scn = crate::scenario::resolve(name)
            .expect("bundled scenario resolves")
            .scaled(1, 3);
        push(
            &format!("scenario_{}.iterations_per_sec", name.replace('-', "_")),
            "iterations/sec",
            run_samples(opts.scenario_repeats(), || {
                scenario_iterations_per_sec(&scn, &library)
            }),
        );
    }

    push(
        "fleet.tenants_per_sec",
        "tenants/sec",
        run_samples(opts.fleet_repeats(), fleet_tenants_per_sec),
    );

    push(
        "tournament.scenarios_per_sec",
        "scenarios/sec",
        run_samples(opts.tournament_repeats(), tournament_scenarios_per_sec),
    );

    eprintln!("  [bench] preparing daemon-recovery snapshot (untimed)");
    let recovery_scn = recovery_scenario();
    let recovery_snapshot = prepare_recovery_snapshot(&recovery_scn, &library);
    push(
        "daemon.recoveries_per_sec",
        "recoveries/sec",
        run_samples(opts.daemon_repeats(), || {
            daemon_recoveries_per_sec(&recovery_scn, &library, &recovery_snapshot)
        }),
    );

    SuiteReport {
        results,
        quick: opts.quick,
    }
}

impl SuiteReport {
    /// Median of a benchmark by name.
    pub fn median_of(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median())
    }

    /// Calendar-queue speedup over the retained heap baseline — the
    /// acceptance number for this PR's trajectory (≥ 3×).
    pub fn event_queue_speedup(&self) -> Option<f64> {
        let new = self.median_of("event_queue.events_per_sec")?;
        let old = self.median_of("event_queue_baseline.events_per_sec")?;
        (old > 0.0).then(|| new / old)
    }

    /// Optimized-sweep speedup over the pre-optimization loop replica.
    pub fn qsweep_speedup(&self) -> Option<f64> {
        let new = self.median_of("qsweep.updates_per_sec")?;
        let old = self.median_of("qsweep_baseline.updates_per_sec")?;
        (old > 0.0).then(|| new / old)
    }

    /// Serializes the report as the `BENCH_<n>.json` document. Emitted
    /// by hand (the build is dependency-free); floats use Rust's
    /// shortest round-trip `Display`, so `parse_medians` reads back the
    /// exact values.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {BENCH_VERSION},\n"));
        out.push_str("  \"generated_by\": \"figures bench\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"env\": {\n");
        out.push_str(&format!("    \"os\": \"{}\",\n", std::env::consts::OS));
        out.push_str(&format!("    \"arch\": \"{}\",\n", std::env::consts::ARCH));
        out.push_str(&format!(
            "    \"rac_threads\": \"{}\",\n",
            std::env::var("RAC_THREADS").unwrap_or_else(|_| "default".into())
        ));
        out.push_str(&format!(
            "    \"debug_assertions\": {},\n",
            cfg!(debug_assertions)
        ));
        out.push_str(&format!(
            "    \"pkg_version\": \"{}\",\n",
            env!("CARGO_PKG_VERSION")
        ));
        out.push_str(&format!("    \"queue_hold_size\": {QUEUE_HOLD_SIZE},\n"));
        out.push_str(&format!("    \"queue_ops\": {QUEUE_OPS},\n"));
        out.push_str(&format!("    \"sweep_passes\": {SWEEP_PASSES},\n"));
        out.push_str(&format!("    \"fleet_tenants\": {FLEET_TENANTS},\n"));
        out.push_str(&format!(
            "    \"tournament_scenarios\": {TOURNAMENT_SCENARIOS},\n"
        ));
        out.push_str(&format!(
            "    \"recovery_stop_after\": {RECOVERY_STOP_AFTER},\n"
        ));
        out.push_str(&format!("    \"recovery_cycles\": {RECOVERY_CYCLES}\n"));
        out.push_str("  },\n");
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let (lo, hi) = r.iqr();
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
            out.push_str(&format!("      \"unit\": \"{}\",\n", r.unit));
            out.push_str(&format!("      \"median\": {},\n", r.median()));
            out.push_str(&format!("      \"iqr_low\": {lo},\n"));
            out.push_str(&format!("      \"iqr_high\": {hi},\n"));
            let samples: Vec<String> = r.samples.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!("      \"samples\": [{}]\n", samples.join(", ")));
            out.push_str(if i + 1 == self.results.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"derived\": {\n");
        out.push_str(&format!(
            "    \"event_queue_speedup_vs_baseline\": {},\n",
            self.event_queue_speedup().unwrap_or(f64::NAN)
        ));
        out.push_str(&format!(
            "    \"qsweep_speedup_vs_baseline\": {}\n",
            self.qsweep_speedup().unwrap_or(f64::NAN)
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Extracts `(name, median)` pairs from a `BENCH_<n>.json` document.
///
/// A deliberately minimal scanner for the format [`SuiteReport::to_json`]
/// emits (the build has no JSON dependency): for each `"name"` key it
/// takes the following string, then the number after the next
/// `"median"` key.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn parse_medians(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let open = rest
            .find('"')
            .ok_or_else(|| "unterminated name".to_string())?;
        rest = &rest[open + 1..];
        let close = rest
            .find('"')
            .ok_or_else(|| "unterminated name".to_string())?;
        let name = rest[..close].to_string();
        rest = &rest[close + 1..];
        let mpos = rest
            .find("\"median\"")
            .ok_or_else(|| format!("{name}: no median"))?;
        rest = &rest[mpos + "\"median\"".len()..];
        let colon = rest.find(':').ok_or_else(|| format!("{name}: no ':'"))?;
        rest = &rest[colon + 1..];
        let end = rest
            .find([',', '\n', '}'])
            .ok_or_else(|| format!("{name}: unterminated median"))?;
        let value: f64 = rest[..end]
            .trim()
            .parse()
            .map_err(|e| format!("{name}: bad median ({e})"))?;
        out.push((name, value));
        rest = &rest[end..];
    }
    if out.is_empty() {
        return Err("no benchmarks found".to_string());
    }
    Ok(out)
}

/// Compares a fresh (quick) run against a committed `BENCH_<n>.json`.
/// Returns one message per benchmark whose current median fell below
/// `floor ×` the committed median; an empty vector means no regression.
/// Benchmarks present on only one side are skipped (the committed file
/// is the contract; new benchmarks land with the PR that adds them).
pub fn check_regressions(
    committed: &[(String, f64)],
    current: &SuiteReport,
    floor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, committed_median) in committed {
        let Some(current_median) = current.median_of(name) else {
            continue;
        };
        let threshold = committed_median * floor;
        if current_median < threshold {
            failures.push(format!(
                "{name}: current median {current_median:.0} < {floor}x committed {committed_median:.0} \
                 (threshold {threshold:.0})"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_of(entries: &[(&str, &[f64])]) -> SuiteReport {
        SuiteReport {
            results: entries
                .iter()
                .map(|(name, samples)| BenchResult {
                    name: name.to_string(),
                    unit: "events/sec",
                    samples: samples.to_vec(),
                })
                .collect(),
            quick: true,
        }
    }

    #[test]
    fn median_and_iqr() {
        let r = BenchResult {
            name: "x".into(),
            unit: "events/sec",
            samples: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(r.median(), 2.0);
        // Nearest-rank on 3 samples: ranks 0.5 and 1.5 both round away
        // from the median's own index only on the high side.
        assert_eq!(r.iqr(), (2.0, 3.0));
        let even = BenchResult {
            name: "y".into(),
            unit: "events/sec",
            samples: vec![4.0, 1.0, 3.0, 2.0],
        };
        assert_eq!(even.median(), 2.5);
    }

    #[test]
    fn json_round_trips_through_parse_medians() {
        let report = report_of(&[
            ("event_queue.events_per_sec", &[1.5e7, 1.6e7, 1.4e7]),
            ("qsweep.updates_per_sec", &[2e8]),
        ]);
        let json = report.to_json();
        let medians = parse_medians(&json).expect("self-emitted JSON parses");
        assert_eq!(medians.len(), 2);
        assert_eq!(medians[0].0, "event_queue.events_per_sec");
        assert_eq!(medians[0].1, report.results[0].median());
        assert_eq!(medians[1].1, 2e8);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_medians("{}").is_err());
        assert!(parse_medians("\"name\": \"x\", \"median\": oops,").is_err());
    }

    #[test]
    fn regression_check_flags_only_real_regressions() {
        let committed = vec![
            ("event_queue.events_per_sec".to_string(), 1000.0),
            ("qsweep.updates_per_sec".to_string(), 500.0),
            ("retired_benchmark".to_string(), 9.0),
        ];
        // Queue halved-minus-epsilon (fails at 0.5x floor), sweep fine,
        // retired benchmark skipped.
        let current = report_of(&[
            ("event_queue.events_per_sec", &[499.0]),
            ("qsweep.updates_per_sec", &[495.0]),
            ("brand_new_benchmark", &[1.0]),
        ]);
        let failures = check_regressions(&committed, &current, REGRESSION_FLOOR);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("event_queue.events_per_sec"));
    }

    #[test]
    fn speedup_reads_the_right_pair() {
        let report = report_of(&[
            ("event_queue.events_per_sec", &[3000.0]),
            ("event_queue_baseline.events_per_sec", &[1000.0]),
        ]);
        assert_eq!(report.event_queue_speedup(), Some(3.0));
        assert_eq!(report.qsweep_speedup(), None);
    }
}
